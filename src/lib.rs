//! # amped — analytical model for performance in distributed training of transformers
//!
//! This is the facade crate of the AMPeD workspace, a Rust reproduction of
//! *“AMPeD: An Analytical Model for Performance in Distributed Training of
//! Transformers”* (Moolchandani et al., ISPASS 2023). It re-exports the
//! subsystem crates under one roof:
//!
//! * [`core`] *(amped-core)* — the analytical model: Eq. 1–12, the
//!   estimator and its breakdown
//! * [`topo`] *(amped-topo)* — topologies, collective cost factors and
//!   transfer schedules
//! * [`sim`] *(amped-sim)* — the discrete-event training simulator used as
//!   the validation substrate
//! * [`memory`] *(amped-memory)* — per-device memory footprints, ZeRO and
//!   recompute
//! * [`energy`] *(amped-energy)* — first-order power/energy model
//! * [`search`] *(amped-search)* — parallelism design-space exploration
//! * [`configs`] *(amped-configs)* — presets for every model, accelerator,
//!   link and system in the paper
//! * [`report`] *(amped-report)* — tables, charts and experiment records
//!
//! # Quick start
//!
//! ```
//! use amped::prelude::*;
//!
//! # fn main() -> Result<(), amped::core::Error> {
//! // Predict Megatron-145B training time on 1024 A100s, TP inside nodes.
//! let model = amped::configs::models::megatron_145b();
//! let a100 = amped::configs::accelerators::a100();
//! let system = amped::configs::systems::a100_hdr_cluster(128, 8);
//! let mapping = Parallelism::builder().tp(8, 1).pp(1, 2).dp(1, 64).build()?;
//!
//! let estimate = Estimator::new(&model, &a100, &system, &mapping)
//!     .with_efficiency(amped::configs::efficiency::case_study())
//!     .estimate(&TrainingConfig::new(8192, 1)?)?;
//! println!("{estimate}");
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use amped_configs as configs;
pub use amped_core as core;
pub use amped_energy as energy;
pub use amped_memory as memory;
pub use amped_report as report;
pub use amped_search as search;
pub use amped_sim as sim;
pub use amped_topo as topo;

/// The most common imports: everything from `amped_core::prelude` plus the
/// simulator, search engine, memory and energy entry points.
pub mod prelude {
    pub use amped_core::prelude::*;
    pub use amped_core::{check_scenario, SensitivityAnalysis};
    pub use amped_energy::{CostModel, EnergyEstimate, PowerModel};
    pub use amped_memory::{MemoryModel, OptimizerSpec, RecomputePolicy};
    pub use amped_search::{
        enumerate_mappings, EnumerationOptions, Recommendation, SearchEngine, Sweep, SweepCell,
        SweepRow,
    };
    pub use amped_sim::{SimBackend, SimConfig};
}
