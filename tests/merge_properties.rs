//! Properties of the layered scenario-resolution pipeline.
//!
//! Three contracts guard the merge engine:
//!
//! 1. **Last wins**: when several overlays set the same field, the
//!    resolved document carries the value of the last one pushed.
//! 2. **Order-insensitivity within a layer**: overlays touching disjoint
//!    fields commute — pushing them in any order yields byte-identical
//!    resolved documents and provenance.
//! 3. **No dead fields**: every flag the schema declares either changes
//!    the resolved document (and is attributed to the flag layer in the
//!    provenance) or produces a typed error. A front-end field that is
//!    parsed but silently dropped by the merge cannot pass this audit.

use amped::configs::pipeline::{FlagReader, FlagSet, ScenarioDraft, Source};
use amped::configs::schema::{self, FieldType, SectionKind};
use proptest::prelude::*;

proptest! {
    #[test]
    fn later_overlays_win_per_field(values in prop::collection::vec(1u32..=4096, 1..6)) {
        let mut draft = ScenarioDraft::new();
        for v in &values {
            draft
                .push(
                    Source::File,
                    serde_json::json!({ "training": { "num_batches": i64::from(*v) } }),
                )
                .unwrap();
        }
        let r = draft.resolve().unwrap();
        let got = r
            .document
            .get("training")
            .and_then(|t| t.get("num_batches"))
            .and_then(serde_json::Value::as_i64)
            .unwrap();
        prop_assert_eq!(got, i64::from(*values.last().unwrap()));
        prop_assert_eq!(
            r.scenario.training.num_batches(),
            u64::from(*values.last().unwrap())
        );
    }

    #[test]
    fn disjoint_overlays_commute_within_a_layer(
        intra in 1u32..=100_000,
        batches in 1u32..=100_000,
        eff in 1u32..=99,
    ) {
        let a = serde_json::json!({ "system": { "intra_gbps": f64::from(intra) } });
        let b = serde_json::json!({ "training": { "num_batches": i64::from(batches) } });
        let c = serde_json::json!({ "efficiency": f64::from(eff) / 100.0 });
        let orders: [[&serde_json::Value; 3]; 3] =
            [[&a, &b, &c], [&c, &b, &a], [&b, &c, &a]];
        let mut dumps = Vec::new();
        for order in orders {
            let mut draft = ScenarioDraft::new();
            for overlay in order {
                draft.push(Source::File, (*overlay).clone()).unwrap();
            }
            // The dump covers both the canonical document and the
            // provenance, so a reordering that leaked into either fails.
            dumps.push(
                serde_json::to_string_pretty(&draft.resolve().unwrap().dump_value()).unwrap(),
            );
        }
        prop_assert_eq!(&dumps[0], &dumps[1]);
        prop_assert_eq!(&dumps[0], &dumps[2]);
    }
}

/// A [`FlagReader`] presenting exactly one flag.
struct OneFlag {
    key: &'static str,
    value: Option<String>,
    switch: bool,
}

impl FlagReader for OneFlag {
    fn value(&self, key: &str) -> Option<String> {
        if key == self.key {
            self.value.clone()
        } else {
            None
        }
    }

    fn switch(&self, key: &str) -> bool {
        self.switch && key == self.key
    }
}

/// A perturbed value for a flag that must differ from every built-in
/// default: presets by name, scalars by an off-default number.
fn probe(flag: &'static str, ty: FieldType) -> OneFlag {
    let (value, switch) = match flag {
        "model" => (Some("gpt2-xl".to_string()), false),
        "accel" => (Some("h100".to_string()), false),
        _ => match ty {
            FieldType::Boolean => (None, true),
            FieldType::Integer => (Some("3".to_string()), false),
            FieldType::Number => (Some("123.5".to_string()), false),
            FieldType::Pair => (Some("3,3".to_string()), false),
            _ => (Some("x".to_string()), false),
        },
    };
    OneFlag { key: flag, value, switch }
}

#[test]
fn shipped_scenario_files_validate_against_the_schema() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut paths = vec![root.join("examples/scenario.json")];
    for entry in std::fs::read_dir(root.join("tests/fixtures")).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("json") {
            paths.push(path);
        }
    }
    assert!(paths.len() >= 4, "expected the example plus fixtures: {paths:?}");
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        schema::validate_fragment(&doc)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn every_flagged_field_changes_the_resolution_or_errors() {
    let base = ScenarioDraft::new().resolve().unwrap();
    let mut probes: Vec<(&'static str, FieldType)> = Vec::new();
    for sec in schema::SECTIONS {
        match &sec.kind {
            SectionKind::Spec { .. } => {
                let flag = sec.flag.expect("spec sections are flag-settable");
                probes.push((flag, FieldType::Text));
            }
            SectionKind::Scalar(ty) => {
                let flag = sec.flag.expect("scalar sections are flag-settable");
                probes.push((flag, *ty));
            }
            SectionKind::Object(fields) => {
                for field in *fields {
                    if let Some(flag) = field.flag {
                        probes.push((flag, field.ty));
                    }
                }
            }
        }
    }
    assert!(probes.len() >= 15, "schema lost its flags: {probes:?}");

    // Every gated flag family on, so each probe reaches its section.
    let all_families = FlagSet {
        resilience: true,
        failure_domains: true,
        inference: true,
    };
    for (flag, ty) in probes {
        let mut draft = ScenarioDraft::new();
        let outcome = draft
            .flags(&probe(flag, ty), all_families)
            .map(|d| d.resolve());
        match outcome {
            // A typed rejection is a live field too (e.g. `--restart`
            // without an MTBF, or a value the model refuses).
            Err(_) | Ok(Err(_)) => {}
            Ok(Ok(r)) => {
                assert_ne!(
                    serde_json::to_string_pretty(&r.document).unwrap(),
                    serde_json::to_string_pretty(&base.document).unwrap(),
                    "--{flag} resolved without changing the scenario"
                );
                let label = format!("flags (--{flag})");
                assert!(
                    r.provenance.iter().any(|(_, src)| src == &label),
                    "--{flag} changed the document but no field is attributed to it: {:?}",
                    r.provenance
                );
            }
        }
    }
}
