//! Analytical-model ↔ simulator agreement: the reproduction's substitute
//! for the paper's hardware validation, as a property over random
//! DP × PP mappings with evenly divisible stacks.

use amped::configs::accelerators;
use amped::prelude::*;
use proptest::prelude::*;

fn v100_system(n: usize) -> SystemSpec {
    SystemSpec::new(1, n, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 1).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn model_matches_simulator_on_divisible_stacks(
        dp_pow in 0u32..=2,
        pp_pow in 0u32..=2,
        ub_per_stage in 1usize..=4,
        batch_mult in 1usize..=4,
    ) {
        let dp = 1usize << dp_pow;
        let pp = 1usize << pp_pow;
        // 16 layers, no head: every power-of-two pipeline depth divides it.
        let model = TransformerModel::builder("sim-agree")
            .layers(16).hidden_size(512).heads(8).seq_len(128).vocab_size(1000)
            .include_head(false)
            .build().expect("valid");
        let v100 = accelerators::v100();
        let system = v100_system(dp * pp);
        let n_ub = pp * ub_per_stage;
        let p = Parallelism::builder()
            .dp(dp, 1)
            .pp(pp, 1)
            .microbatches(MicrobatchPolicy::Explicit(n_ub))
            .build()
            .expect("valid");
        let batch = dp * n_ub * batch_mult;

        let eff = EfficiencyModel::saturating(0.6, 4.0, 0.05, 0.6);
        let predicted = Estimator::new(&model, &v100, &system, &p)
            .with_efficiency(eff.clone())
            .estimate(&TrainingConfig::single_batch(batch).expect("valid"))
            .expect("estimates")
            .time_per_iteration
            .get();
        let simulated = SimConfig::new(&model, &v100, &system, &p)
            .with_efficiency(eff)
            .simulate_iteration(batch)
            .expect("simulates")
            .iteration_time;

        let gap = (predicted - simulated).abs() / simulated;
        prop_assert!(
            gap < 0.12,
            "model {predicted:.5} vs sim {simulated:.5} (gap {:.1}%) at dp{dp} pp{pp} n_ub={n_ub} batch={batch}",
            gap * 100.0
        );
    }

    #[test]
    fn simulator_utilization_is_physical(
        dp_pow in 0u32..=2,
        pp_pow in 0u32..=2,
    ) {
        let dp = 1usize << dp_pow;
        let pp = 1usize << pp_pow;
        let model = TransformerModel::builder("sim-util")
            .layers(8).hidden_size(256).heads(8).seq_len(64).vocab_size(500)
            .include_head(false)
            .build().expect("valid");
        let v100 = accelerators::v100();
        let system = v100_system(dp * pp);
        let p = Parallelism::builder().dp(dp, 1).pp(pp, 1).build().expect("valid");
        let r = SimConfig::new(&model, &v100, &system, &p)
            .simulate_iteration(8 * dp * pp)
            .expect("simulates");
        prop_assert!(r.iteration_time > 0.0);
        prop_assert!(r.mean_utilization > 0.0 && r.mean_utilization <= 1.0 + 1e-9);
        for d in r.device_stats.iter() {
            prop_assert!(d.compute_busy_s <= r.iteration_time * (1.0 + 1e-9));
            prop_assert!(d.last_finish_s <= r.iteration_time * (1.0 + 1e-9));
        }
        // Pipelines idle; pure DP does not (up to sync tails).
        if pp > 1 {
            prop_assert!(r.mean_utilization < 1.0);
        }
    }
}

#[test]
fn one_f_one_b_uses_less_memory_time_equal_work() {
    // Deterministic cross-check: for equal work, 1F1B is never slower than
    // GPipe in the simulator, and the memory model says it holds fewer
    // microbatches in flight.
    use amped::memory::{MemoryModel, PipelineSchedule as MemSchedule};
    use amped::sim::PipelineSchedule;

    let model = TransformerModel::builder("sched")
        .layers(16)
        .hidden_size(512)
        .heads(8)
        .seq_len(128)
        .vocab_size(1000)
        .include_head(false)
        .build()
        .expect("valid");
    let v100 = accelerators::v100();
    let system = v100_system(4);
    let p = Parallelism::builder()
        .pp(4, 1)
        .microbatches(MicrobatchPolicy::Explicit(16))
        .build()
        .expect("valid");

    let run = |schedule| {
        SimConfig::new(&model, &v100, &system, &p)
            .with_schedule(schedule)
            .simulate_iteration(32)
            .expect("simulates")
            .iteration_time
    };
    let gpipe = run(PipelineSchedule::GPipe);
    let ofob = run(PipelineSchedule::OneFOneB);
    assert!(ofob <= gpipe * 1.001, "1F1B {ofob} vs GPipe {gpipe}");

    let mem_gpipe = MemoryModel::new(&model, &p)
        .with_schedule(MemSchedule::GPipe)
        .footprint(2.0, 16);
    let mem_ofob = MemoryModel::new(&model, &p)
        .with_schedule(MemSchedule::OneFOneB)
        .footprint(2.0, 16);
    assert!(mem_ofob.activations < mem_gpipe.activations);
}

#[test]
fn imbalance_correction_closes_the_gap() {
    // The ablation-5 regime: 13 stack entries through 8 stages. With the
    // stage-imbalance correction the analytical model recovers the
    // simulator's slowest-stage behaviour.
    use amped::configs::{accelerators, efficiency, models, systems};

    let model = models::mingpt_85m(); // 12 layers + head = 13 entries
    let v100 = accelerators::v100();
    let system = systems::hgx2(8);
    let p = Parallelism::builder()
        .pp(8, 1)
        .microbatches(MicrobatchPolicy::Explicit(16))
        .build()
        .expect("valid");
    let eff = efficiency::v100_mingpt();

    let run_model = |correct: bool| {
        Estimator::new(&model, &v100, &system, &p)
            .with_efficiency(eff.clone())
            .with_options(EngineOptions {
                stage_imbalance_correction: correct,
                ..Default::default()
            })
            .estimate(&TrainingConfig::single_batch(128).expect("valid"))
            .expect("estimates")
            .time_per_iteration
            .get()
    };
    let simulated = SimConfig::new(&model, &v100, &system, &p)
        .with_efficiency(eff.clone())
        .simulate_iteration(128)
        .expect("simulates")
        .iteration_time;

    let gap_plain = (run_model(false) - simulated).abs() / simulated;
    let gap_corrected = (run_model(true) - simulated).abs() / simulated;
    assert!(gap_plain > 0.3, "the uncorrected gap is large: {gap_plain:.2}");
    assert!(
        gap_corrected < 0.12,
        "corrected model must re-enter the validation band, gap {gap_corrected:.2}"
    );
}
