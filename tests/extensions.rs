//! Integration coverage of the beyond-the-paper extensions through the
//! facade: roofline-derived efficiency, heterogeneous pipelines, scenario
//! files, diagnostics, sensitivity and cost models working together.

use amped::configs::{accelerators, models, systems};
use amped::core::hetero::{HeteroPipeline, HeteroStage};
use amped::core::roofline::{efficiency_from_roofline, layer_efficiency};
use amped::core::{check_scenario, SensitivityAnalysis};
use amped::energy::{CostModel, EnergyEstimate, PowerModel};
use amped::prelude::*;

#[test]
fn roofline_efficiency_drives_the_estimator() {
    // Derive eff(ub) from the roofline and run a full estimate with it —
    // the paper's "predictive model for eff(ub)" future work, end to end.
    let model = models::gpt2_xl();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(1, 8);
    let derived = efficiency_from_roofline(&model, &a100, Precision::fp16(), 512)
        .expect("derives");
    let p = Parallelism::data_parallel_intra(8).expect("valid");
    let e = Estimator::new(&model, &a100, &system, &p)
        .with_efficiency(derived)
        .estimate(&TrainingConfig::new(256, 10).expect("valid"))
        .expect("estimates");
    assert!(e.efficiency > 0.5, "GPT-2-XL GEMMs are compute-bound: {}", e.efficiency);
    assert!(e.total_time.get() > 0.0);

    // The derivation responds to hardware balance: a memory-starved variant
    // of the same chip must show lower attainable efficiency on small
    // microbatches.
    let starved = AcceleratorSpec::builder("A100-starved")
        .frequency_hz(a100.frequency_hz())
        .cores(a100.num_cores())
        .mac_units(4, 512, 8)
        .nonlin_units(192, 4, 32)
        .memory(80e9, 2.0e11) // 10x less bandwidth
        .build()
        .expect("valid");
    let e_full = layer_efficiency(&model, &a100, Precision::fp16(), 1.0);
    let e_starved = layer_efficiency(&model, &starved, Precision::fp16(), 1.0);
    assert!(e_starved < e_full);
}

#[test]
fn hetero_pipeline_brackets_homogeneous_estimates() {
    // A pipeline of two identical A100 stages must agree with itself and
    // sit strictly between all-fast and all-slow configurations.
    let model = models::bert_large(); // 24 layers, no head: splits evenly
    let v100 = accelerators::v100();
    let a100 = accelerators::a100();
    let training = TrainingConfig::new(64, 1).expect("valid");
    let run = |first: &AcceleratorSpec, second: &AcceleratorSpec| {
        HeteroPipeline::new(
            &model,
            vec![
                HeteroStage {
                    accelerator: first.clone(),
                    num_layers: 12,
                },
                HeteroStage {
                    accelerator: second.clone(),
                    num_layers: 12,
                },
            ],
        )
        .expect("valid")
        .with_efficiency(EfficiencyModel::Constant(0.5))
        .estimate(&training, 16)
        .expect("estimates")
        .time_per_iteration
        .get()
    };
    let all_fast = run(&a100, &a100);
    let all_slow = run(&v100, &v100);
    let mixed = run(&v100, &a100);
    assert!(all_fast < mixed && mixed <= all_slow);
}

#[test]
fn scenario_file_to_energy_bill() {
    // JSON in, dollars out: the full adoption path.
    let json = r#"{
        "model": { "preset": "llama-65b" },
        "accelerator": { "preset": "a100" },
        "system": { "nodes": 32, "accels_per_node": 8,
                    "intra_gbps": 2400.0, "inter_gbps": 200.0, "nics_per_node": 8 },
        "parallelism": { "tp": [8, 1], "pp": [1, 4], "dp": [1, 8],
                         "microbatches": 16 },
        "training": { "global_batch": 1024, "num_batches": 1000 },
        "activation_recompute": true
    }"#;
    let s = amped::configs::scenario::ScenarioConfig::from_json(json)
        .and_then(|s| s.resolve())
        .expect("resolves");
    let estimate = Estimator::new(&s.model, &s.accelerator, &s.system, &s.parallelism)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .with_options(s.options)
        .estimate(&s.training)
        .expect("estimates");
    let energy = EnergyEstimate::from_estimate(
        &estimate,
        &PowerModel::from_accelerator(&s.accelerator),
        s.training.num_batches(),
    );
    let bill = CostModel::cloud_a100().usd(&energy, estimate.total_workers, estimate.total_time.get());
    assert!(bill > 0.0 && bill.is_finite());
    // Diagnostics agree the config is reasonable (no warnings).
    let findings = check_scenario(&s.model, &s.system, &s.parallelism, &s.training);
    assert!(
        findings.iter().all(|d| d.severity < amped::core::Severity::Warning),
        "{findings:?}"
    );
}

#[test]
fn sensitivity_and_diagnostics_tell_the_same_story() {
    // A TP-across-thin-links scenario: the linter flags it and the tornado
    // ranks inter-node bandwidth at the top.
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = SystemSpec::new(
        4,
        8,
        Link::new(5e-6, 2.4e12),
        Link::new(1e-5, 2e10),
        1,
    )
    .expect("valid");
    let p = Parallelism::builder().tp(8, 4).build().expect("valid");
    let training = TrainingConfig::new(1024, 1).expect("valid");

    let findings = check_scenario(&model, &system, &p, &training);
    assert!(findings.iter().any(|d| d.code == "tp-inter-slow-links"));

    let tornado = SensitivityAnalysis::new(&model, &a100, &system, &p)
        .with_efficiency(EfficiencyModel::Constant(0.5))
        .tornado(2.0, &training)
        .expect("analyzes");
    assert_eq!(tornado[0].knob, amped::core::Knob::InterBandwidth);
}
