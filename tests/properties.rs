//! Property-based tests over the whole stack: random models, systems and
//! mappings must uphold the estimator's physical invariants.

use amped::prelude::*;
use proptest::prelude::*;

/// A random but valid (model, system, parallelism, batch) quadruple.
fn scenario() -> impl Strategy<
    Value = (
        TransformerModel,
        AcceleratorSpec,
        SystemSpec,
        Parallelism,
        usize,
    ),
> {
    // Node shape: (tp_i, pp_i, dp_i) each 1..=2; inter: (tp_x, pp_x, dp_x).
    (
        1usize..=2,
        1usize..=2,
        1usize..=2,
        1usize..=2,
        1usize..=2,
        1usize..=4,
        1usize..=4, // layers multiplier
        1usize..=4, // hidden multiplier
        1usize..=8, // batch multiplier
    )
        .prop_map(
            |(tp_i, pp_i, dp_i, tp_x, pp_x, dp_x, lm, hm, bm)| {
                let model = TransformerModel::builder("prop")
                    .layers(4 * lm)
                    .hidden_size(256 * hm)
                    .heads(8)
                    .seq_len(128)
                    .vocab_size(1000)
                    .build()
                    .expect("valid model");
                let accel = AcceleratorSpec::builder("prop-accel")
                    .frequency_hz(1e9)
                    .cores(16)
                    .mac_units(4, 64, 8)
                    .nonlin_units(16, 8, 32)
                    .memory(16e9, 1e12)
                    .build()
                    .expect("valid accel");
                let system = SystemSpec::new(
                    tp_x * pp_x * dp_x,
                    tp_i * pp_i * dp_i,
                    Link::new(1e-6, 2.4e12),
                    Link::new(1e-5, 1e11),
                    tp_i * pp_i * dp_i,
                )
                .expect("valid system");
                let parallelism = Parallelism::builder()
                    .tp(tp_i, tp_x)
                    .pp(pp_i, pp_x)
                    .dp(dp_i, dp_x)
                    .build()
                    .expect("valid mapping");
                let batch = parallelism.total_workers() * bm;
                (model, accel, system, parallelism, batch)
            },
        )
}

fn estimate_of(
    model: &TransformerModel,
    accel: &AcceleratorSpec,
    system: &SystemSpec,
    p: &Parallelism,
    batch: usize,
) -> Estimate {
    Estimator::new(model, accel, system, p)
        .with_efficiency(EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9))
        .estimate(&TrainingConfig::new(batch, 3).expect("valid"))
        .expect("estimates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn breakdown_components_are_finite_and_nonnegative(
        (model, accel, system, p, batch) in scenario()
    ) {
        let e = estimate_of(&model, &accel, &system, &p, batch);
        for (name, v) in e.breakdown.components() {
            prop_assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
        }
        prop_assert!(e.tflops_per_gpu > 0.0);
        prop_assert!(e.efficiency > 0.0 && e.efficiency <= 1.0);
    }

    #[test]
    fn breakdown_sums_to_iteration_time(
        (model, accel, system, p, batch) in scenario()
    ) {
        let e = estimate_of(&model, &accel, &system, &p, batch);
        let total = e.breakdown.total();
        prop_assert!((total - e.time_per_iteration.get()).abs() <= 1e-12 * total.max(1.0));
        prop_assert!(
            (e.total_time.get() - 3.0 * e.time_per_iteration.get()).abs()
                <= 1e-9 * e.total_time.get()
        );
    }

    #[test]
    fn more_bandwidth_never_slows_training(
        (model, accel, system, p, batch) in scenario()
    ) {
        let fast_system = SystemSpec::new(
            system.num_nodes(),
            system.accels_per_node(),
            Link::new(system.intra().latency_s, system.intra().bandwidth_bits_per_sec * 4.0),
            Link::new(system.inter().latency_s, system.inter().bandwidth_bits_per_sec * 4.0),
            system.nics_per_node(),
        ).expect("valid");
        let slow = estimate_of(&model, &accel, &system, &p, batch);
        let fast = estimate_of(&model, &accel, &fast_system, &p, batch);
        prop_assert!(fast.time_per_iteration.get() <= slow.time_per_iteration.get() * (1.0 + 1e-9));
    }

    #[test]
    fn bigger_batches_amortize_fixed_costs(
        (model, accel, system, p, batch) in scenario()
    ) {
        // Per-sample time must not increase when the batch doubles (fixed
        // latencies amortize; efficiency is monotone in ub).
        let small = estimate_of(&model, &accel, &system, &p, batch);
        let large = estimate_of(&model, &accel, &system, &p, batch * 2);
        let per_sample_small = small.time_per_iteration.get() / batch as f64;
        let per_sample_large = large.time_per_iteration.get() / (2 * batch) as f64;
        prop_assert!(per_sample_large <= per_sample_small * (1.0 + 1e-9));
    }

    #[test]
    fn faster_clock_never_slows_training(
        (model, accel, system, p, batch) in scenario()
    ) {
        let fast_accel = AcceleratorSpec::builder(accel.name())
            .frequency_hz(accel.frequency_hz() * 2.0)
            .cores(accel.num_cores())
            .mac_units(accel.mac_units_per_core(), accel.mac_unit_width(), accel.mac_unit_bits())
            .nonlin_units(accel.nonlin_units(), accel.nonlin_unit_width(), accel.nonlin_unit_bits())
            .memory(accel.memory_bytes(), accel.memory_bandwidth_bytes_per_sec())
            .build()
            .expect("valid");
        let base = estimate_of(&model, &accel, &system, &p, batch);
        let fast = estimate_of(&model, &fast_accel, &system, &p, batch);
        prop_assert!(fast.breakdown.compute_total() < base.breakdown.compute_total());
        prop_assert!(fast.time_per_iteration.get() <= base.time_per_iteration.get() * (1.0 + 1e-9));
    }

    #[test]
    fn memory_footprint_monotone_in_microbatch(
        (model, _accel, _system, p, batch) in scenario()
    ) {
        use amped::memory::MemoryModel;
        let mem = MemoryModel::new(&model, &p);
        let n_ub = p.num_microbatches(batch);
        let small = mem.footprint(1.0, n_ub);
        let large = mem.footprint(4.0, n_ub);
        prop_assert!(large.activations >= small.activations);
        prop_assert!(large.total() >= small.total());
        prop_assert!(small.weights == large.weights);
    }

    #[test]
    fn energy_scales_linearly_with_workers(
        (model, accel, system, p, batch) in scenario()
    ) {
        use amped::energy::{EnergyEstimate, PowerModel};
        let e = estimate_of(&model, &accel, &system, &p, batch);
        let power = PowerModel::default();
        let one = EnergyEstimate::from_breakdown(&e.breakdown, 1, &power);
        let many = EnergyEstimate::from_breakdown(&e.breakdown, 10, &power);
        prop_assert!((many.total_joules() - 10.0 * one.total_joules()).abs()
            <= 1e-9 * many.total_joules().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn search_candidates_are_valid_factorizations(
        nodes in 1usize..=4,
        per_node in 1usize..=4,
    ) {
        use amped::search::{enumerate_mappings, EnumerationOptions};
        let model = TransformerModel::builder("m")
            .layers(16).hidden_size(512).heads(16).seq_len(128).vocab_size(1000)
            .build().expect("valid");
        let system = SystemSpec::new(
            nodes, per_node, Link::new(1e-6, 1e12), Link::new(1e-5, 1e11), per_node,
        ).expect("valid");
        let mappings = enumerate_mappings(&system, &model, &EnumerationOptions::default());
        prop_assert!(!mappings.is_empty());
        for p in &mappings {
            prop_assert_eq!(p.intra_workers(), per_node);
            prop_assert_eq!(p.inter_workers(), nodes);
            prop_assert!(p.validate_against(&system, &model).is_ok());
        }
        // No duplicates.
        for (i, a) in mappings.iter().enumerate() {
            for b in &mappings[i + 1..] {
                prop_assert!(a != b);
            }
        }
    }

    #[test]
    fn collective_schedules_move_expected_volume(
        n in 2usize..=16,
        kib in 1u64..=64,
    ) {
        use amped::topo::Schedule;
        let bytes = kib * 1024;
        let s = Schedule::ring_all_reduce(n, bytes);
        let per_rank = s.max_bytes_per_rank() as f64;
        let expect = 2.0 * (n as f64 - 1.0) / n as f64 * bytes as f64;
        // Shard rounding can only add up to 2(n-1) bytes.
        prop_assert!(per_rank >= expect - 1.0);
        prop_assert!(per_rank <= expect + 2.0 * n as f64);
        prop_assert!(amped::topo::verify::check_schedule(&s).is_empty());
    }
}
