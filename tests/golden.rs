//! Golden-value regression tests: pin the headline model outputs so that
//! accidental changes to the equations are caught immediately. A failing
//! golden test after a *deliberate* model change means: re-derive the
//! value, update it here, and record the change in EXPERIMENTS.md.

use amped::prelude::*;
use amped_bench::{fig2c_estimate, table2_estimate, tuned_case_study_estimate};

fn close(actual: f64, golden: f64) -> bool {
    (actual - golden).abs() <= 1e-4 * golden.abs()
}

#[test]
fn table2_predictions_are_pinned() {
    let golden = [
        ("145B", 148.169685),
        ("310B", 155.979016),
        ("530B", 155.414557),
        ("1T", 157.253515),
    ];
    for (row, (name, value)) in amped::configs::published::table2_rows()
        .iter()
        .zip(golden)
    {
        assert_eq!(row.model, name);
        let e = table2_estimate(row).expect("estimates");
        assert!(
            close(e.tflops_per_gpu, value),
            "{name}: {} vs golden {value}",
            e.tflops_per_gpu
        );
    }
}

#[test]
fn fig2c_predictions_are_pinned() {
    for (ub, value) in [(1.0, 31.017295), (12.0, 122.998133), (60.0, 156.819419)] {
        let e = fig2c_estimate(ub).expect("estimates");
        assert!(
            close(e.tflops_per_gpu, value),
            "ub={ub}: {} vs golden {value}",
            e.tflops_per_gpu
        );
    }
}

#[test]
fn case_study_headline_is_pinned() {
    let model = amped::configs::models::megatron_145b();
    let system = amped::configs::systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .tp(8, 1)
        .dp(1, 128)
        .build()
        .expect("valid");
    let e = tuned_case_study_estimate(&model, &system, &p, 16384).expect("estimates");
    assert!(close(e.days(), 19.607946), "days = {}", e.days());
}

#[test]
fn parameter_counts_are_pinned() {
    let close_rel = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b;
    assert!(close_rel(
        amped::configs::models::gpt3_175b().total_parameters(),
        175_244_992_512.0
    ));
    assert!(close_rel(
        amped::configs::models::glam_64e().total_parameters(),
        1_134_824_800_256.0
    ));
}
