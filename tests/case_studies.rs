//! The qualitative conclusions of the paper's three case studies, asserted
//! end-to-end through the public API.

use amped::configs::{accelerators, efficiency, models, optical, systems};
use amped::prelude::*;
use amped_bench::tuned_case_study_estimate;

fn days(tp: (usize, usize), pp: (usize, usize), dp: (usize, usize), batch: usize) -> f64 {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .tp(tp.0, tp.1)
        .pp(pp.0, pp.1)
        .dp(dp.0, dp.1)
        .build()
        .expect("valid mapping");
    tuned_case_study_estimate(&model, &system, &p, batch)
        .expect("estimates")
        .days()
}

/// Case study I, conclusion 2+3: TP belongs inside the node; DP and PP are
/// the better inter-node choices by about 2x.
#[test]
fn tp_inter_node_is_penalized() {
    let dp_inter = days((8, 1), (1, 1), (1, 128), 16384);
    let pp_inter = days((8, 1), (1, 64), (1, 2), 16384);
    let tp_inter = days((8, 8), (1, 1), (1, 16), 16384);
    assert!(dp_inter < pp_inter, "DP beats PP across nodes");
    assert!(pp_inter < tp_inter, "PP beats TP across nodes");
    assert!(
        tp_inter > 2.0 * dp_inter,
        "TP across nodes costs ~2x+: {tp_inter:.1} vs {dp_inter:.1} days"
    );
}

/// Case study I, §VI-D: DP-heavy intra-node mappings lose to TP-intra
/// because their microbatch efficiency collapses.
#[test]
fn dp_intra_efficiency_collapse() {
    let tp_intra = days((8, 1), (1, 1), (1, 128), 16384);
    let dp_intra = days((1, 1), (1, 1), (8, 128), 16384);
    assert!(
        dp_intra > 1.5 * tp_intra,
        "DP-intra {dp_intra:.1} d must be ~2x slower than TP-intra {tp_intra:.1} d"
    );
}

/// Case study II: the optimal inter-node strategy flips on low-end systems.
#[test]
fn low_end_crossover() {
    let model = models::megatron_145b();
    let advantage = |per_node: usize| {
        let system = systems::a100_edr_lowend(1024, per_node);
        let nodes = 1024 / per_node;
        let pp_x = nodes.min(64);
        let dp = Parallelism::builder()
            .tp(per_node, 1)
            .dp(1, nodes)
            .build()
            .expect("valid");
        let pp = Parallelism::builder()
            .tp(per_node, 1)
            .pp(1, pp_x)
            .dp(1, nodes / pp_x)
            .build()
            .expect("valid");
        let d_dp = tuned_case_study_estimate(&model, &system, &dp, 8192)
            .expect("estimates")
            .days();
        let d_pp = tuned_case_study_estimate(&model, &system, &pp, 8192)
            .expect("estimates")
            .days();
        d_dp / d_pp - 1.0
    };
    assert!(advantage(1) > 0.0, "PP wins at 1 accel+NIC per node");
    assert!(advantage(8) < 0.0, "DP wins at 8 accels+NICs per node");
}

/// Case study III: optical substrates speed up MoE training substantially
/// without changing peak compute.
#[test]
fn optical_substrates_multiply_performance() {
    let glam = models::glam_64e();
    let h100 = accelerators::h100();
    let run = |accel: &AcceleratorSpec, system: &SystemSpec| {
        let p = Parallelism::builder()
            .tp(system.accels_per_node(), 1)
            .dp(1, system.num_nodes())
            .build()
            .expect("valid");
        Estimator::new(&glam, accel, system, &p)
            .with_precision(Precision::int8())
            .with_efficiency(efficiency::case_study())
            .estimate(&TrainingConfig::single_batch(8192).expect("valid"))
            .expect("estimates")
    };
    let reference = run(&h100, &systems::h100_ndr_cluster(384, 8));
    let opt1 = run(&h100, &optical::optical_cluster(&h100, 3072, 4, 2));
    let fast = h100.with_offchip_bandwidth_scaled(4.0);
    let opt3 = run(&fast, &optical::optical_cluster(&fast, 3072, 6, 8));

    // Same peak compute...
    assert_eq!(h100.peak_macs_native(), fast.peak_macs_native());
    // ...big speedups from communication alone.
    let s1 = reference.time_per_iteration.get() / opt1.time_per_iteration.get();
    let s3 = reference.time_per_iteration.get() / opt3.time_per_iteration.get();
    assert!(s1 > 1.3, "Opt.1 speedup {s1:.2}");
    assert!(s3 > s1, "the full stack must beat Opt.1 alone");
    assert!(s3 > 2.0, "total speedup {s3:.2}");
    // MoE all-to-all relief is the driver of Opt.1.
    assert!(reference.breakdown.moe_comm > 5.0 * opt1.breakdown.moe_comm);
}

/// The search engine agrees with the case-study conclusion: on a high-end
/// cluster it never puts TP across nodes.
#[test]
fn search_never_chooses_tp_inter_on_fast_fabric() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let best = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .best(&TrainingConfig::new(2048, 1).expect("valid"))
        .expect("searches")
        .expect("found");
    assert_eq!(best.parallelism.tp_inter(), 1);
    assert!(best.parallelism.tp_intra() > 1, "and TP fills the node");
}
