//! Differential test: seeded domain-outage replays converge on the
//! correlated analytical expectation.
//!
//! The simulator replays a balanced DP × PP run with exponential rack
//! outages (and, in the elastic case, spot preemptions absorbed by
//! shrink/regrow) on top of independent device failures; the correlated
//! analytical model prices the same run from the tier rates, the
//! placement's blast radii and the measured checkpoint economics. The
//! mean simulated wall time over several seeds must land within 10% of
//! `CorrelatedResilience::expected_time_s` — the acceptance criterion for
//! the failure-domain subsystem.

use amped::core::{
    CorrelatedResilience, DomainPlacement, ElasticParams, FailureDomainTree, Link,
    MicrobatchPolicy, Parallelism, ResilienceParams, SystemSpec,
};
use amped::sim::{FaultPlan, SimConfig};

const GLOBAL_BATCH: usize = 64;
const NUM_BATCHES: u64 = 2000;
const SEEDS: [u64; 6] = [3, 17, 29, 41, 59, 71];

/// minGPT-85M spread over single-accelerator nodes, so devices and nodes
/// coincide: the sim's per-device fault clocks and the analytical model's
/// per-node tiers describe exactly the same hardware.
fn fixture(
    num_nodes: usize,
    dp: usize,
    pp: usize,
) -> (
    amped::core::TransformerModel,
    amped::core::AcceleratorSpec,
    SystemSpec,
    Parallelism,
) {
    let model = amped::configs::models::mingpt_85m();
    let accel = amped::configs::accelerators::v100();
    let system = SystemSpec::new(
        num_nodes,
        1,
        Link::new(5e-6, 2.4e12),
        Link::new(1e-5, 1e11),
        1,
    )
    .unwrap();
    let parallelism = Parallelism::builder()
        .pp(1, pp)
        .dp(1, dp)
        .microbatches(MicrobatchPolicy::Explicit(8))
        .build()
        .unwrap();
    (model, accel, system, parallelism)
}

/// Fatal rack outages: dp 4 × pp 2 on 8 nodes in racks of 2, replica-major,
/// no elastic recovery — every rack outage restarts from the checkpoint,
/// exactly like a device failure, and both fault classes must add up.
#[test]
fn seeded_rack_outages_converge_on_the_correlated_expectation() {
    let (model, accel, system, parallelism) = fixture(8, 4, 2);
    let sim = SimConfig::new(&model, &accel, &system, &parallelism);
    let healthy = sim.simulate_iteration(GLOBAL_BATCH).unwrap();
    let t_iter = healthy.iteration_time;
    assert!(t_iter > 0.0);

    // Calibrate both fault classes off the healthy run span: ~6 expected
    // device failures and ~6 expected rack outages per run, with MTBFs far
    // above the checkpoint interval (the renewal model's validity regime).
    let run_span = NUM_BATCHES as f64 * t_iter;
    let device_mtbf_s = 8.0 * run_span / 6.0;
    let num_racks = 4.0;
    let rack_mtbf_s = num_racks * run_span / 6.0;
    let restart_s = 2.0 * t_iter;

    let tree = FailureDomainTree::new(8, 2, 2)
        .unwrap()
        .with_rack_mtbf(rack_mtbf_s);

    let mut totals = Vec::new();
    let mut outages = 0u64;
    let mut reference = None;
    for seed in SEEDS {
        let plan = FaultPlan::seeded(seed)
            .with_device_mtbf(device_mtbf_s)
            .with_restart(restart_s)
            .with_ckpt_write_bw(1e10)
            .with_domain_tree(tree.clone());
        let run = sim.simulate_run(GLOBAL_BATCH, NUM_BATCHES, &plan).unwrap();
        assert!(run.total_time_s >= run.fault_free_time_s);
        assert_eq!(run.elastic_overhead_s, 0.0, "no regrow means no shrink");
        outages += run.num_domain_outages;
        totals.push(run.total_time_s);
        reference.get_or_insert(run);
    }
    assert!(
        outages >= 18,
        "fixture must actually exercise rack outages across seeds, saw {outages}"
    );

    // Feed the analytical model the measured checkpoint cost and the
    // realized (integer-iteration) interval, so both sides price the same
    // machine; the tree and placement supply the correlated tier.
    let run = reference.unwrap();
    let ckpt_cost_s = run.ckpt_iteration_time_s - run.iteration_time_s;
    assert!(ckpt_cost_s > 0.0);
    let interval_s = run.ckpt_interval_iters as f64 * run.iteration_time_s;
    let base = ResilienceParams::new(device_mtbf_s, 8)
        .unwrap()
        .with_checkpoint_cost(ckpt_cost_s)
        .with_restart(restart_s);
    let placement = DomainPlacement::replica_major(4, 2, 1, 1, &tree);
    // Each replica fills exactly one rack of the tree.
    assert_eq!(placement.replicas_per_rack, 1);
    let corr = CorrelatedResilience::new(base, tree, placement).unwrap();
    let expected_s = corr.expected_time_s(run.fault_free_time_s, interval_s);

    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    let relative_error = (mean - expected_s).abs() / expected_s;
    assert!(
        relative_error <= 0.10,
        "simulated mean {mean:.1}s vs correlated expectation {expected_s:.1}s \
         ({:.1}% off, >10%); per-seed totals: {totals:?}",
        100.0 * relative_error
    );
}

/// Elastic recovery: pure dp 8 on 8 single-node racks with spot
/// preemptions and rack outages, all survivable (blast radius 1 of 8
/// replicas) — the run shrinks and regrows instead of restarting, and the
/// shrink overhead must match the correlated model's elastic term.
#[test]
fn seeded_elastic_preemptions_converge_on_the_correlated_expectation() {
    let (model, accel, system, parallelism) = fixture(8, 8, 1);
    let sim = SimConfig::new(&model, &accel, &system, &parallelism);
    let healthy = sim.simulate_iteration(GLOBAL_BATCH).unwrap();
    let t_iter = healthy.iteration_time;
    assert!(t_iter > 0.0);

    let run_span = NUM_BATCHES as f64 * t_iter;
    let device_mtbf_s = 8.0 * run_span / 5.0;
    let num_racks = 8.0;
    let rack_mtbf_s = num_racks * run_span / 5.0;
    let preemption_mtbf_s = 8.0 * run_span / 5.0;
    let restart_s = 2.0 * t_iter;
    let regrow_delay_s = 12.0 * t_iter;

    let tree = FailureDomainTree::new(8, 1, 4)
        .unwrap()
        .with_rack_mtbf(rack_mtbf_s);

    let mut totals = Vec::new();
    let mut elastic_events = 0u64;
    let mut reference = None;
    for seed in SEEDS {
        let plan = FaultPlan::seeded(seed)
            .with_device_mtbf(device_mtbf_s)
            .with_restart(restart_s)
            .with_ckpt_write_bw(1e10)
            .with_domain_tree(tree.clone())
            .with_preemption(preemption_mtbf_s)
            .with_regrow(regrow_delay_s);
        let run = sim.simulate_run(GLOBAL_BATCH, NUM_BATCHES, &plan).unwrap();
        assert!(run.total_time_s >= run.fault_free_time_s);
        elastic_events += run.num_domain_outages + run.num_preemptions;
        if run.num_domain_outages + run.num_preemptions > 0 {
            assert!(
                run.elastic_overhead_s > 0.0,
                "survivable outages must shrink, not restart (seed {seed})"
            );
        }
        totals.push(run.total_time_s);
        reference.get_or_insert(run);
    }
    assert!(
        elastic_events >= 30,
        "fixture must actually exercise elastic events across seeds, saw {elastic_events}"
    );

    let run = reference.unwrap();
    let ckpt_cost_s = run.ckpt_iteration_time_s - run.iteration_time_s;
    assert!(ckpt_cost_s > 0.0);
    let interval_s = run.ckpt_interval_iters as f64 * run.iteration_time_s;
    let base = ResilienceParams::new(device_mtbf_s, 8)
        .unwrap()
        .with_checkpoint_cost(ckpt_cost_s)
        .with_restart(restart_s);
    let placement = DomainPlacement::replica_major(8, 1, 1, 1, &tree);
    assert_eq!(placement.replicas_per_rack, 1);
    assert_eq!(placement.replicas_per_node, 1);
    let corr = CorrelatedResilience::new(base, tree, placement)
        .unwrap()
        .with_elastic(
            ElasticParams::new(regrow_delay_s).with_preemption_mtbf(preemption_mtbf_s),
        );
    assert!(corr.elastic_rate_per_s() > 0.0);
    let expected_s = corr.expected_time_s(run.fault_free_time_s, interval_s);

    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    let relative_error = (mean - expected_s).abs() / expected_s;
    assert!(
        relative_error <= 0.10,
        "simulated mean {mean:.1}s vs correlated expectation {expected_s:.1}s \
         ({:.1}% off, >10%); per-seed totals: {totals:?}",
        100.0 * relative_error
    );
}
