//! Differential test: seeded fault-injection runs converge on the
//! analytical checkpoint/restart expectation.
//!
//! The simulator replays a measured iteration over a few hundred batches
//! with exponential failures and periodic checkpoint commits; the
//! analytical model predicts the same run's expected wall time from four
//! numbers (MTBF, checkpoint cost, restart cost, interval). On a balanced
//! DP×PP fixture the mean simulated time over several seeds must land
//! within 10% of the analytical expectation — the acceptance criterion for
//! the resilience subsystem.

use amped::configs::{accelerators, models, systems};
use amped::core::{MicrobatchPolicy, Parallelism, ResilienceParams};
use amped::sim::{FaultPlan, SimConfig};

const GLOBAL_BATCH: usize = 64;
const NUM_BATCHES: u64 = 2000;
const SEEDS: [u64; 6] = [11, 23, 37, 51, 68, 94];

/// minGPT-85M on one 8×V100 node, PP2 × DP4: every pipeline stage and
/// data-parallel replica carries the same slice, so the renewal model's
/// "one failure stops the whole system" assumption matches the simulator.
fn fixture() -> (
    amped::core::TransformerModel,
    amped::core::AcceleratorSpec,
    amped::core::SystemSpec,
    Parallelism,
) {
    let model = models::mingpt_85m();
    let accel = accelerators::v100();
    let system = systems::hgx2(8);
    let parallelism = Parallelism::builder()
        .pp(2, 1)
        .dp(4, 1)
        .microbatches(MicrobatchPolicy::Explicit(8))
        .build()
        .unwrap();
    (model, accel, system, parallelism)
}

#[test]
fn seeded_fault_runs_converge_on_the_analytical_expectation() {
    let (model, accel, system, parallelism) = fixture();
    let sim = SimConfig::new(&model, &accel, &system, &parallelism);

    // Calibrate the failure rate off the healthy iteration time so the run
    // sees a meaningful number of failures (~8 expected) regardless of what
    // the fixture's absolute speed is — while keeping the system MTBF far
    // above the checkpoint interval, where the first-order renewal model is
    // actually valid.
    let healthy = sim.simulate_iteration(GLOBAL_BATCH).unwrap();
    let t_iter = healthy.iteration_time;
    assert!(t_iter > 0.0);
    let n_devices = 8.0;
    let run_span = NUM_BATCHES as f64 * t_iter;
    let device_mtbf_s = n_devices * run_span / 8.0;
    let restart_s = 2.0 * t_iter;

    let mut totals = Vec::new();
    let mut failures = 0u64;
    let mut reference = None;
    for seed in SEEDS {
        let plan = FaultPlan::seeded(seed)
            .with_device_mtbf(device_mtbf_s)
            .with_restart(restart_s)
            // Fast writes keep the checkpoint cost well below the interval
            // (the model's `C ≪ τ` validity condition) but still nonzero.
            .with_ckpt_write_bw(1e10);
        let run = sim.simulate_run(GLOBAL_BATCH, NUM_BATCHES, &plan).unwrap();
        assert!(
            run.total_time_s >= run.fault_free_time_s,
            "faults can only add time: {} < {}",
            run.total_time_s,
            run.fault_free_time_s
        );
        failures += run.num_failures;
        totals.push(run.total_time_s);
        reference.get_or_insert(run);
    }
    assert!(
        failures >= 24,
        "fixture must actually exercise failures across seeds, saw {failures}"
    );

    // Feed the analytical model the quantities the simulator *measured* —
    // the checkpoint makespan delta and the realized (integer-iteration)
    // interval — so both sides describe the same machine.
    let run = reference.unwrap();
    let ckpt_cost_s = run.ckpt_iteration_time_s - run.iteration_time_s;
    assert!(ckpt_cost_s > 0.0, "checkpoint writes must cost something");
    let interval_s = run.ckpt_interval_iters as f64 * run.iteration_time_s;
    let params = ResilienceParams::new(device_mtbf_s, 8)
        .unwrap()
        .with_checkpoint_cost(ckpt_cost_s)
        .with_restart(restart_s);
    let expected_s = params.expected_time_s(run.fault_free_time_s, interval_s);

    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    let relative_error = (mean - expected_s).abs() / expected_s;
    assert!(
        relative_error <= 0.10,
        "simulated mean {mean:.1}s vs analytical expectation {expected_s:.1}s \
         ({:.1}% off, >10%); per-seed totals: {totals:?}",
        100.0 * relative_error
    );
}

#[test]
fn fault_free_run_matches_the_iteration_product_exactly() {
    let (model, accel, system, parallelism) = fixture();
    let sim = SimConfig::new(&model, &accel, &system, &parallelism);
    let healthy = sim.simulate_iteration(GLOBAL_BATCH).unwrap();
    let run = sim
        .simulate_run(GLOBAL_BATCH, NUM_BATCHES, &FaultPlan::none())
        .unwrap();
    assert_eq!(
        run.total_time_s.to_bits(),
        (healthy.iteration_time * NUM_BATCHES as f64).to_bits()
    );
    assert_eq!(run.num_failures, 0);
    assert_eq!(run.checkpoint_time_s, 0.0);
    assert_eq!(run.goodput().to_bits(), 1.0f64.to_bits());
}
