//! No-fault outputs must stay bit-identical to the pre-resilience code.
//!
//! The resilience subsystem threads fault hooks through the discrete-event
//! executor and the `SimBackend`, so these tests pin the exact f64 bit
//! patterns both produced *before* faults existed (captured on the
//! megatron-145b case-study fixture). Any drift — even in the last ulp —
//! means the no-fault path is no longer the path it claims to be.

use amped::configs::{efficiency, models, systems};
use amped::core::{
    CostBackend, EngineOptions, MicrobatchPolicy, Parallelism, Scenario, TrainingConfig,
};
use amped::sim::{FaultPlan, PipelineSchedule, SimBackend, SimConfig};

fn parallelism(policy: MicrobatchPolicy) -> Parallelism {
    Parallelism::builder()
        .tp(8, 1)
        .pp(1, 8)
        .dp(1, 2)
        .microbatches(policy)
        .build()
        .unwrap()
}

/// Raw simulator pin: `SimConfig::simulate_iteration` on megatron-145b,
/// 16×8 A100 HDR cluster, TP8 × PP8 × DP2, 64 microbatches, GPipe.
/// Captured before the fault hooks were added.
const RAW_ITERATION_BITS: u64 = 0x405c_cfe8_2e61_5a3a;

/// `SimBackend::evaluate` pin on the same fixture under 1F1B + activation
/// recomputation, `TrainingConfig::new(512, 3)`. Captured before
/// `SimBackend` learned about fault plans.
const BACKEND_TOTAL_BITS: u64 = 0x407b_9f3e_79e4_a3b4;

#[test]
fn raw_simulator_is_bit_identical_to_pre_resilience_pin() {
    let model = models::megatron_145b();
    let accel = amped::configs::accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let p = parallelism(MicrobatchPolicy::Explicit(64));
    let r = SimConfig::new(&model, &accel, &system, &p)
        .with_efficiency(efficiency::case_study())
        .simulate_iteration(512)
        .unwrap();
    assert_eq!(
        r.iteration_time.to_bits(),
        RAW_ITERATION_BITS,
        "no-fault simulate_iteration drifted: {} vs pinned {}",
        r.iteration_time,
        f64::from_bits(RAW_ITERATION_BITS)
    );
}

fn backend_scenario() -> Scenario {
    Scenario::new(
        models::megatron_145b(),
        amped::configs::accelerators::a100(),
        systems::a100_hdr_cluster(16, 8),
        parallelism(MicrobatchPolicy::Explicit(64)),
    )
    .with_efficiency(efficiency::case_study())
    .with_options(EngineOptions {
        activation_recompute: true,
        ..EngineOptions::default()
    })
}

#[test]
fn sim_backend_is_bit_identical_to_pre_resilience_pin() {
    let training = TrainingConfig::new(512, 3).unwrap();
    let est = SimBackend::new()
        .with_schedule(PipelineSchedule::OneFOneB)
        .evaluate(&backend_scenario(), &training)
        .unwrap();
    assert_eq!(
        est.total_time.get().to_bits(),
        BACKEND_TOTAL_BITS,
        "no-fault SimBackend drifted: {} vs pinned {}",
        est.total_time.get(),
        f64::from_bits(BACKEND_TOTAL_BITS)
    );
}

#[test]
fn inert_fault_plan_matches_the_pin_too() {
    // seed = None disables injection entirely: the backend must produce the
    // exact pre-resilience bits even with a (seedless) plan attached.
    let training = TrainingConfig::new(512, 3).unwrap();
    let est = SimBackend::new()
        .with_schedule(PipelineSchedule::OneFOneB)
        .with_fault_plan(
            FaultPlan::none()
                .with_random_stragglers(4, 2.0)
                .with_device_mtbf(3600.0),
        )
        .evaluate(&backend_scenario(), &training)
        .unwrap();
    assert_eq!(est.total_time.get().to_bits(), BACKEND_TOTAL_BITS);
}

#[test]
fn analytical_backend_is_bit_identical_to_its_own_rerun() {
    // The analytical path takes no fault input at all; its output must be a
    // pure function of the scenario.
    let training = TrainingConfig::new(512, 3).unwrap();
    let backend = amped::core::AnalyticalBackend;
    let a = backend.evaluate(&backend_scenario(), &training).unwrap();
    let b = backend.evaluate(&backend_scenario(), &training).unwrap();
    assert_eq!(a.total_time.get().to_bits(), b.total_time.get().to_bits());
    assert!(a.total_time.get() > 0.0);
}
