//! Cross-crate integration: presets × estimator × memory × energy × search
//! × report working together, plus serde round-trips of the public types.

use amped::configs::{accelerators, efficiency, models, registry, systems};
use amped::prelude::*;
use amped::report::{ExperimentRecord, Table};

#[test]
fn every_model_preset_estimates_on_a_default_cluster() {
    let a100 = accelerators::a100();
    for name in registry::model_names() {
        let model = registry::model(name).expect("listed");
        let workers = 8.min(model.num_heads());
        let system = systems::a100_hdr_cluster(1, workers);
        let p = Parallelism::builder().tp(workers, 1).build().expect("valid");
        let e = Estimator::new(&model, &a100, &system, &p)
            .with_efficiency(efficiency::case_study())
            .estimate(&TrainingConfig::new(64, 10).expect("valid"))
            .expect("estimates");
        assert!(
            e.total_time.get() > 0.0 && e.tflops_per_gpu > 0.0,
            "{name} failed to estimate"
        );
    }
}

#[test]
fn estimate_survives_json_roundtrip() {
    let model = models::mingpt_85m();
    let v100 = accelerators::v100();
    let system = systems::hgx2(8);
    let p = Parallelism::data_parallel_intra(8).expect("valid");
    let e = Estimator::new(&model, &v100, &system, &p)
        .estimate(&TrainingConfig::new(64, 5).expect("valid"))
        .expect("estimates");
    let json = serde_json::to_string(&e).expect("serializes");
    let back: Estimate = serde_json::from_str(&json).expect("deserializes");
    // JSON decimal round-trips can lose the last bit of a float; compare
    // with a tight tolerance instead of bitwise equality.
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(1.0);
    assert!(close(back.time_per_iteration.get(), e.time_per_iteration.get()));
    assert!(close(back.total_time.get(), e.total_time.get()));
    assert!(close(back.breakdown.total(), e.breakdown.total()));
    assert_eq!(back.num_microbatches, e.num_microbatches);
    assert_eq!(back.total_workers, e.total_workers);
}

#[test]
fn all_spec_types_roundtrip_json() {
    let model = models::glam_64e();
    let accel = accelerators::h100();
    let system = systems::h100_ndr_cluster(4, 8);
    let p = Parallelism::builder()
        .tp(8, 1)
        .dp(1, 4)
        .zero(ZeroConfig::stage(ZeroStage::Gradients, 0.1))
        .build()
        .expect("valid");
    macro_rules! roundtrip {
        ($v:expr, $t:ty) => {{
            let json = serde_json::to_string(&$v).expect("serializes");
            let back: $t = serde_json::from_str(&json).expect("deserializes");
            assert_eq!($v, back);
        }};
    }
    roundtrip!(model, TransformerModel);
    roundtrip!(accel, AcceleratorSpec);
    roundtrip!(system, SystemSpec);
    roundtrip!(p, Parallelism);
    roundtrip!(Precision::int8(), Precision);
    roundtrip!(EngineOptions::default(), EngineOptions);
}

#[test]
fn search_memory_energy_agree_with_direct_estimation() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(8, 8);
    let training = TrainingConfig::new(1024, 100).expect("valid");
    let results = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .search(&training)
        .expect("searches");
    assert!(!results.is_empty());

    // Re-estimate the winner directly. The search evaluates through the
    // memoized path, which must match exactly even from a cold cache; the
    // uncached reference path sums in a different association and agrees to
    // float associativity.
    let best = &results[0];
    let estimator = Estimator::new(&model, &a100, &system, &best.parallelism)
        .with_efficiency(efficiency::case_study());
    let direct = estimator
        .estimate_cached(&mut EstimateCache::new(), &training)
        .expect("estimates");
    assert_eq!(best.estimate.time_per_iteration, direct.time_per_iteration);
    let plain = estimator.estimate(&training).expect("estimates");
    let (a, b) = (
        best.estimate.time_per_iteration.get(),
        plain.time_per_iteration.get(),
    );
    assert!((a - b).abs() <= 1e-9 * b, "memoized {a} vs plain {b}");

    // Memory and energy are attached and consistent.
    assert!(best.memory.total() > 0.0);
    assert!(best.energy.total_joules() > 0.0);
    let per_iter = amped::energy::EnergyEstimate::from_breakdown(
        &direct.breakdown,
        direct.total_workers,
        &amped::energy::PowerModel::from_accelerator(&a100),
    );
    let expect = per_iter.total_joules() * training.num_batches() as f64;
    assert!((best.energy.total_joules() - expect).abs() / expect < 1e-9);
}

#[test]
fn memory_model_gates_what_the_accelerator_can_hold() {
    use amped::memory::{MemoryModel, OptimizerSpec};
    let model = models::gpt3_175b();
    let a100 = accelerators::a100();
    // 175B parameters on a single device can never fit.
    let single = Parallelism::single();
    let mem = MemoryModel::new(&model, &single).with_optimizer(OptimizerSpec::sgd());
    assert!(!mem.fits(1.0, 1, a100.memory_bytes()));
    // Sharded 8x8x recomputed, each device holds ~2.7B params: plausible.
    let sharded = Parallelism::builder().tp(8, 1).pp(8, 1).build().expect("valid");
    let mem = MemoryModel::new(&model, &sharded)
        .with_optimizer(OptimizerSpec::sgd())
        .with_activation_recompute(true);
    assert!(mem.fits(1.0, 8, a100.memory_bytes()));
}

#[test]
fn report_types_render_experiment_summaries() {
    let mut record = ExperimentRecord::new("IT", "integration check");
    record.compare("speedup", 2.0, 1.9);
    assert!(record.within(0.06));
    let table = record.to_table();
    assert_eq!(table.num_rows(), 1);
    let md = record.to_markdown();
    assert!(md.contains("| speedup |"));

    let mut t = Table::new(["a", "b"]);
    t.row(["1", "2"]);
    assert!(t.to_csv().ends_with("1,2"));
}

#[test]
fn optical_cluster_systems_compose_with_all_crates() {
    use amped::configs::optical;
    let h100 = accelerators::h100();
    let system = optical::optical_cluster(&h100, 64, 4, 2);
    assert_eq!(system.total_accelerators(), 64);
    let model = TransformerModel::builder("small-moe")
        .layers(8)
        .hidden_size(1024)
        .heads(16)
        .seq_len(256)
        .vocab_size(8000)
        .moe(MoeConfig::glam(8))
        .build()
        .expect("valid");
    let p = Parallelism::builder().tp(8, 1).dp(1, 8).build().expect("valid");
    let e = Estimator::new(&model, &h100, &system, &p)
        .with_precision(Precision::int8())
        .estimate(&TrainingConfig::new(64, 1).expect("valid"))
        .expect("estimates");
    assert!(e.breakdown.moe_comm > 0.0, "MoE traffic must be modeled");
}
