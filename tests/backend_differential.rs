//! Differential test between the two [`CostBackend`] implementations: the
//! analytical model and the discrete-event simulator must agree tightly on
//! balanced DP×PP stacks — the ablation-5 comparison, pinned as a
//! regression band instead of living only in a report binary.
//!
//! The fixture is the paper's HGX-2 validation substrate (minGPT with a
//! 16-layer stack so every pipeline depth divides it evenly). On balanced
//! stacks the documented agreement band is ≤ 0.25 % (measured max ≈ 0.21 %
//! on the deepest pipeline, where bubble accounting differs most); the
//! paper's own validation bound against real hardware is 12 %.

use amped::configs::{accelerators, efficiency, models, systems};
use amped::prelude::*;

fn scenario(dp: usize, pp: usize) -> Scenario {
    let p = Parallelism::builder()
        .dp(dp, 1)
        .pp(pp, 1)
        .microbatches(MicrobatchPolicy::Explicit(16))
        .build()
        .expect("valid mapping");
    Scenario::new(
        models::mingpt_pp(),
        accelerators::v100(),
        systems::hgx2(8),
        p,
    )
    .with_efficiency(efficiency::v100_mingpt())
}

#[test]
fn analytical_and_sim_backends_agree_on_balanced_stacks() {
    let analytical: &dyn CostBackend = &AnalyticalBackend;
    let sim: &dyn CostBackend = &SimBackend::new();
    assert_eq!(analytical.breakdown_fidelity(), BreakdownFidelity::Exact);
    assert_eq!(sim.breakdown_fidelity(), BreakdownFidelity::Approximate);

    let training = TrainingConfig::single_batch(128).expect("valid");
    let mut max_gap: f64 = 0.0;
    for (dp, pp) in [(8usize, 1usize), (4, 2), (2, 4), (1, 8)] {
        let s = scenario(dp, pp);
        let a = analytical.evaluate(&s, &training).expect("analytical");
        let m = sim.evaluate(&s, &training).expect("sim");
        let gap = (a.time_per_iteration.get() - m.time_per_iteration.get()).abs()
            / m.time_per_iteration.get();
        max_gap = max_gap.max(gap);
        assert!(
            gap <= 0.0025,
            "DP{dp}xPP{pp}: analytical {} vs sim {} — gap {:.3}% exceeds the \
             0.25% balanced-stack band",
            a.time_per_iteration.get(),
            m.time_per_iteration.get(),
            gap * 100.0
        );
        // Both backends describe the same run shape.
        assert_eq!(a.total_workers, m.total_workers);
        assert_eq!(a.num_microbatches, m.num_microbatches);
        // The simulator's breakdown reconstructs its own makespan.
        let total = m.breakdown.total();
        assert!(
            (total - m.time_per_iteration.get()).abs() <= 1e-9 * m.time_per_iteration.get(),
            "sim breakdown total {total} vs makespan {}",
            m.time_per_iteration.get()
        );
    }
    assert!(max_gap > 0.0, "backends are distinct implementations");
}

#[test]
fn both_backends_are_deterministic_through_the_trait() {
    let training = TrainingConfig::single_batch(128).expect("valid");
    for backend in [&AnalyticalBackend as &dyn CostBackend, &SimBackend::new()] {
        let s = scenario(2, 4);
        let a = backend.evaluate(&s, &training).expect("evaluates");
        let b = backend.evaluate(&s, &training).expect("evaluates");
        assert_eq!(
            a.time_per_iteration.get().to_bits(),
            b.time_per_iteration.get().to_bits(),
            "{} backend drifted between evaluations",
            backend.name()
        );
    }
}
