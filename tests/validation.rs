//! The paper's validation section as a test suite: every published number
//! AMPeD was compared against must be reproduced within the paper's 12 %
//! error bound (and our calibration is usually tighter).

use amped::configs::published::{self, MAX_VALIDATION_ERROR};
use amped_bench::{fig2c_estimate, table2_estimate};

#[test]
fn table2_within_published_bound() {
    for row in published::table2_rows() {
        let e = table2_estimate(&row).expect("estimates");
        let err = published::relative_error(e.tflops_per_gpu, row.published_tflops);
        assert!(
            err <= MAX_VALIDATION_ERROR,
            "{}: predicted {:.1} vs published {:.1} ({:.1}% > 12%)",
            row.model,
            e.tflops_per_gpu,
            row.published_tflops,
            err * 100.0
        );
    }
}

#[test]
fn table2_error_grows_with_pipeline_depth() {
    // The paper attributes its growing error to R = 1 (no bubble overlap)
    // while the published runs used interleaved pipelining: with deeper
    // pipelines, predictions fall further below the published numbers.
    let rows = published::table2_rows();
    let signed_err = |row: &published::TableTwoRow| {
        let e = table2_estimate(row).expect("estimates");
        (e.tflops_per_gpu - row.published_tflops) / row.published_tflops
    };
    let shallow = signed_err(&rows[0]); // PP = 8
    let deep = signed_err(&rows[3]); // PP = 64
    assert!(
        deep < shallow + 0.02,
        "deep-pipeline predictions must not drift above shallow ones (R = 1)"
    );
}

#[test]
fn fig2c_saturation_and_convergence() {
    // Paper: ~11% error at microbatch 12, converging to ~2% at 60.
    let published_points = published::fig2c_published();
    let err_at = |ub: f64| {
        let e = fig2c_estimate(ub).expect("estimates");
        let p = published_points
            .iter()
            .find(|p| p.0 == ub)
            .expect("published point");
        ((e.tflops_per_gpu - p.1) / p.1).abs()
    };
    assert!(err_at(12.0) < 0.15, "ub=12 error regime");
    assert!(err_at(60.0) < 0.05, "ub=60 convergence");
    assert!(err_at(60.0) < err_at(12.0), "errors must shrink with ub");
}

#[test]
fn fig2c_is_monotone_saturating() {
    let mut prev = 0.0;
    let mut gains = Vec::new();
    for ub in [1.0, 2.0, 4.0, 8.0, 12.0, 24.0, 36.0, 48.0, 60.0] {
        let tflops = fig2c_estimate(ub).expect("estimates").tflops_per_gpu;
        assert!(tflops > prev, "throughput must grow with microbatch size");
        gains.push(tflops - prev);
        prev = tflops;
    }
    assert!(
        gains.last().unwrap() < &(gains[1] / 4.0),
        "the curve must flatten"
    );
}

#[test]
fn table3_gpipe_speedups() {
    use amped::configs::{accelerators, efficiency, models, systems};
    use amped::prelude::*;

    let p100 = accelerators::p100();
    let model = models::gpipe_transformer_24l();
    let rate = |gpus: usize| {
        let system = systems::p100_pcie_node(gpus);
        let p = Parallelism::builder()
            .pp(gpus, 1)
            .microbatches(MicrobatchPolicy::Explicit(32))
            .build()
            .expect("valid");
        let e = Estimator::new(&model, &p100, &system, &p)
            .with_efficiency(efficiency::p100_gpipe())
            .estimate(&TrainingConfig::single_batch(64).expect("valid"))
            .expect("estimates");
        64.0 / e.time_per_iteration.get()
    };
    let base = rate(2);
    for (gpus, published_speedup, _paper_pred) in published::table3_rows() {
        let ours = rate(gpus) / base;
        let err = published::relative_error(ours, published_speedup);
        assert!(
            err <= MAX_VALIDATION_ERROR,
            "{gpus} GPUs: speedup {ours:.2} vs published {published_speedup:.2}"
        );
    }
}

#[test]
fn published_reference_data_is_self_consistent() {
    // The paper's own predictions must respect its claimed 12% bound.
    for row in published::table2_rows() {
        assert!(
            published::relative_error(row.amped_tflops, row.published_tflops)
                <= MAX_VALIDATION_ERROR
        );
    }
    for (_, published_speedup, paper_pred) in published::table3_rows() {
        assert!(published::relative_error(paper_pred, published_speedup) <= MAX_VALIDATION_ERROR);
    }
}
