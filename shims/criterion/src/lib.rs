//! Offline stand-in for `criterion`.
//!
//! Keeps the macro surface (`criterion_group!`, `criterion_main!`,
//! `Criterion::bench_function`, `Bencher::iter`) so the workspace's benches
//! compile and run without the real crate. Measurement is a simple
//! warmup + timed-batch loop reporting mean/min wall-clock time — adequate
//! for the before/after comparisons recorded in `BENCH_search.json`, not a
//! statistical engine.
//!
//! `--test` (as passed by `cargo bench -- --test`) runs every benchmark
//! body exactly once with no measurement, which is what the bench smoke
//! test in `amped-bench` relies on. Unknown CLI arguments (e.g. the bench
//! name filter cargo forwards) select benchmarks by substring, matching
//! criterion's behaviour loosely.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness entry point, one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Read `--test` and an optional name filter from the process args.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                // Flags criterion/cargo-bench pass that we accept and ignore.
                "--bench" | "--quiet" | "-q" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // Value-carrying unknown flags: skip their value too.
                    if matches!(args.peek(), Some(v) if !v.starts_with('-')) {
                        args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Run (or smoke-run) one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { test_mode: self.test_mode, samples: Vec::new() };
        f(&mut b);
        if self.test_mode {
            println!("{id}: test passed (single iteration)");
        } else if !b.samples.is_empty() {
            let n = b.samples.len() as f64;
            let mean = b.samples.iter().copied().sum::<f64>() / n;
            let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
            println!("{id}  time: [min {} mean {}]  ({} samples)", fmt_s(min), fmt_s(mean), n);
        }
        self
    }
}

fn fmt_s(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    test_mode: bool,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`. In `--test` mode it runs once, unmeasured.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm up and estimate per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(200) {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 10_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Aim for ~1s of measurement split into up to 20 samples.
        let samples = 20usize;
        let iters_per_sample = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
