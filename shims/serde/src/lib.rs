//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace cannot fetch the real `serde`. This shim keeps the public
//! surface the AMPeD crates actually use — `#[derive(Serialize,
//! Deserialize)]`, `#[serde(default)]`, `#[serde(default = "path")]`,
//! `#[serde(untagged)]` — on top of a single dynamic [`Value`] data model
//! instead of serde's visitor machinery. `serde_json` (also shimmed) renders
//! and parses that `Value`.
//!
//! Design notes:
//! * Serialization is `T -> Value`; deserialization is `&Value -> T`.
//! * Externally tagged enums follow serde's JSON conventions: unit variants
//!   serialize as strings, data variants as single-entry objects.
//! * Untagged enums try each variant in declaration order.
//! * `Option<T>` fields tolerate both `null` and a missing key, matching
//!   serde's implicit-`None` behaviour.

pub use serde_derive::{Deserialize, Serialize};

/// Dynamic JSON-like value — the interchange type of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral JSON number.
    Int(i64),
    /// Non-integral (or out-of-`i64`-range) JSON number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly enough for test use).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.22e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view (entry list).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Free-form error.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }

    /// A required field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(ty: &str, tag: &str) -> Self {
        Error(format!("unknown variant `{tag}` for enum {ty}"))
    }

    /// The value had the wrong JSON type.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Error(format!("invalid type: expected {expected}, got {}", got.type_name()))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// `T -> Value` half of the facade.
pub trait Serialize {
    /// Convert `self` into the dynamic value model.
    fn to_value(&self) -> Value;
}

/// `&Value -> T` half of the facade.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the dynamic value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::invalid_type("bool", v))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(*self as f64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::invalid_type("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg(format!(
                    "integer {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::invalid_type("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::invalid_type("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for &'static str {
    /// Leaks the string: only static-labelled fields (e.g. timeline entry
    /// labels) use this, and only in tests/tools, never on a hot path.
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::invalid_type("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::invalid_type("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of {N} elements, got {len}")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::invalid_type("tuple array", v))?;
                let expect = [$($idx),+].len();
                if arr.len() != expect {
                    return Err(Error::msg(format!(
                        "expected tuple of {expect} elements, got {}", arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Helpers referenced by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Error, Value};

    pub fn as_object<'a>(v: &'a Value, ty: &str) -> Result<&'a Vec<(String, Value)>, Error> {
        v.as_object()
            .ok_or_else(|| Error::msg(format!("expected object for {ty}, got {v:?}")))
    }

    pub fn as_array<'a>(v: &'a Value, ty: &str) -> Result<&'a Vec<Value>, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array for {ty}, got {v:?}")))
    }

    pub fn get_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    pub fn check_len(arr: &[Value], expect: usize, ty: &str) -> Result<(), Error> {
        if arr.len() == expect {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {expect} elements for {ty}, got {}",
                arr.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_index_and_eq() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            ("b".into(), Value::Str("x".into())),
        ]);
        assert_eq!(v["a"], 3i64);
        assert_eq!(v["b"], "x");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn primitive_roundtrip() {
        let v = 42usize.to_value();
        assert_eq!(usize::from_value(&v).unwrap(), 42);
        let v = (1.5f64, 2usize).to_value();
        assert_eq!(<(f64, usize)>::from_value(&v).unwrap(), (1.5, 2));
        let v = Some(3i64).to_value();
        assert_eq!(Option::<i64>::from_value(&v).unwrap(), Some(3));
        assert_eq!(Option::<i64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn array_roundtrip() {
        let v = [3usize, 4].to_value();
        assert_eq!(<[usize; 2]>::from_value(&v).unwrap(), [3, 4]);
        assert!(<[usize; 3]>::from_value(&v).is_err());
    }
}
