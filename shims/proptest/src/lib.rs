//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace uses: the `proptest!` macro (with
//! optional `#![proptest_config(...)]`), `prop_assert!`/`prop_assert_eq!`,
//! integer/float range strategies, tuple strategies, `prop_map`,
//! `prop::collection::vec`, `prop::option::of`, and a mini regex string
//! strategy (`"[class]{m,n}"` sequences).
//!
//! Generation is deterministic: a fixed xorshift seed per case index, so
//! failures reproduce exactly across runs and machines. There is no
//! shrinking — the failing inputs are printed instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic split-mix / xorshift generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed for one test case. Case indices map to well-separated streams.
    pub fn for_case(case: u64) -> Self {
        // splitmix64 of the case index gives uncorrelated starting states.
        let mut z = case.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng { state: (z ^ (z >> 31)) | 1 }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates values of an output type from the deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (mirrors proptest's `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}

signed_range_strategies!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

// ------------------------------------------------------------- mini regex

/// One `atom{m,n}` unit of the pattern.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                let mut set = Vec::new();
                let mut j = 0;
                while j < class.len() {
                    // `a-z` range unless the dash is first/last (then literal).
                    if j + 2 < class.len() && class[j + 1] == '-' {
                        let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(class[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                atoms.push(Atom { chars: set, min: 1, max: 1 });
                i = close + 1;
            }
            '{' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                    None => {
                        let n = body.trim().parse().unwrap();
                        (n, n)
                    }
                };
                let atom = atoms
                    .last_mut()
                    .unwrap_or_else(|| panic!("quantifier without atom in {pattern:?}"));
                atom.min = min;
                atom.max = max;
                i = close + 1;
            }
            c => {
                atoms.push(Atom { chars: vec![c], min: 1, max: 1 });
                i += 1;
            }
        }
    }
    atoms
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ------------------------------------------------------------ collections

/// `prop::collection` namespace.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bound accepted by [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min
                + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::option` namespace.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (`None` one case in four).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Construct a config overriding the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};

    /// The `prop` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the enclosing proptest case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the enclosing proptest case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
}

/// Declares deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]` that
/// draws `cases` inputs (from `#![proptest_config(...)]` or the default) and
/// runs the body per draw; `prop_assert*` failures report the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategy = ($($strat,)+);
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    let ($($pat,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "proptest case {}/{} for `{}` failed:\n{}",
                            __case + 1, __config.cases, stringify!($name), __msg
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case(7);
        for _ in 0..1000 {
            let x = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1u64..=5).generate(&mut rng);
            assert!((1..=5).contains(&y));
            let f = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn determinism_across_rng_restarts() {
        let strat = (1usize..100, "[a-z]{1,8}");
        let a = strat.generate(&mut TestRng::for_case(3));
        let b = strat.generate(&mut TestRng::for_case(3));
        assert_eq!(a, b);
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = TestRng::for_case(11);
        for _ in 0..200 {
            let s = "[-a-z0-9,.]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c == '-' || c == ',' || c == '.' || c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(
            (a, b) in (1usize..10, 1usize..10),
            v in prop::collection::vec(0u32..5, 0..6),
        ) {
            prop_assert!(a * b < 100);
            prop_assert_eq!(v.len(), v.iter().copied().filter(|x| *x < 5).count());
        }
    }
}
