//! Offline stand-in for `serde_json`, built on the shimmed `serde::Value`.
//!
//! Provides the subset the workspace uses: `to_string`, `to_string_pretty`,
//! `from_str`, `from_value`, `to_value`, the `json!` macro, and `Value`
//! itself (re-exported from the `serde` shim so derive output and JSON agree
//! on one data model).

pub use serde::{Error, Value};

/// Serialize any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserialize a `T` out of a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Render compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Render human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
            write_value(&items[i], out, indent, level + 1);
        }),
        Value::Object(entries) => write_seq(out, indent, level, entries.len(), '{', '}', |out, i| {
            let (k, val) = &entries[i];
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(val, out, indent, level + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        // Real serde_json refuses non-finite floats; nothing in the
        // workspace serializes them, so degrade to null instead of erroring.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fractional marker so the value re-parses as a float-typed
        // number rather than an integer (mirrors serde_json's "1.0").
        out.push_str(&format!("{f:.1}"));
    } else {
        // Rust's shortest-roundtrip Display preserves the exact bits.
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any fixture.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Recover full UTF-8 sequences: back up and take the char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------- json!

/// Construct a [`Value`] from JSON-like syntax (subset of serde_json's
/// macro: object/array literals, `null`/`true`/`false`, and arbitrary
/// serializable expressions as values).
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Array munching: accumulate completed element expressions in [..].
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Object munching: ($key tokens) (remaining tokens) (copy for errors).
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.push((::std::string::String::from($($key)+), $value));
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.push((::std::string::String::from($($key)+), $value));
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // Terminals.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec::Vec::new())
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object(::std::vec::Vec::new())
    };
    ({ $($tt:tt)+ }) => {{
        let mut object: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::from([]);
        $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "a": 1,
            "b": [1.5, null, true],
            "c": {"nested": "x\"y"},
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_numbers() {
        let v: Value = from_str("[1, -2, 3.25, 1e3]").unwrap();
        assert_eq!(v[0], 1i64);
        assert_eq!(v[1], -2i64);
        assert_eq!(v[2], 3.25f64);
        assert_eq!(v[3].as_f64().unwrap(), 1000.0);
    }

    #[test]
    fn multi_token_exprs_in_json_macro() {
        let x = vec![1usize, 2, 3];
        let v = json!({
            "len": x.len(),
            "pair": [x.len(), x.capacity() >= x.len()],
        });
        assert_eq!(v["len"], 3i64);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = json!({"k": [1, {"m": 2.0}]});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_display_roundtrips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-30, 123456.789, f64::MAX] {
            let s = to_string(&Value::Float(f)).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "{s}");
        }
    }
}
