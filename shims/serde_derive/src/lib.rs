//! Offline stand-in for `serde_derive`.
//!
//! Parses the item's `TokenStream` by hand (no `syn`/`quote` — the container
//! cannot fetch them) and emits `impl serde::Serialize` / `serde::Deserialize`
//! blocks against the shim's `Value`-based traits.
//!
//! Supported shapes: non-generic structs (named, tuple, newtype, unit) and
//! enums (unit, newtype, tuple, struct variants). Supported attributes:
//! `#[serde(default)]`, `#[serde(default = "path")]` on fields and
//! `#[serde(untagged)]` on enums. Everything else the workspace does not use
//! and is rejected loudly rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

struct Container {
    name: String,
    untagged: bool,
    kind: Kind,
}

enum Kind {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `Default::default()`;
    /// `Some(Some(path))` = call `path()`.
    default: Option<Option<String>>,
    /// Type spelled `Option<...>`: serde implicitly treats missing as `None`.
    is_option: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Default)]
struct Attrs {
    untagged: bool,
    default: Option<Option<String>>,
}

/// Derive `serde::Serialize` via the shim's `to_value` facade.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c)
        .parse()
        .expect("serde shim: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` via the shim's `from_value` facade.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c)
        .parse()
        .expect("serde shim: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_container(input: TokenStream) -> Container {
    let mut it = input.into_iter().peekable();
    let attrs = take_attrs(&mut it);
    skip_visibility(&mut it);
    let kw = expect_ident(&mut it, "struct/enum keyword");
    let name = expect_ident(&mut it, "type name");
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic type `{name}` is not supported");
    }
    let kind = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Kind::Newtype,
                    n => Kind::Tuple(n),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            other => panic!("serde shim: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    Container {
        name,
        untagged: attrs.untagged,
        kind,
    }
}

/// Consume any number of leading `#[...]` attributes, interpreting
/// `#[serde(...)]` and skipping everything else (docs, `#[default]`,
/// `#[non_exhaustive]`, ...).
fn take_attrs(it: &mut TokenIter) -> Attrs {
    let mut attrs = Attrs::default();
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let group = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde shim: malformed attribute: {other:?}"),
        };
        let mut inner = group.stream().into_iter().peekable();
        let head = match inner.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            _ => continue,
        };
        if head != "serde" {
            continue;
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde shim: malformed #[serde(...)]: {other:?}"),
        };
        let mut args = args.stream().into_iter().peekable();
        while let Some(tok) = args.next() {
            let item = match tok {
                TokenTree::Ident(i) => i.to_string(),
                TokenTree::Punct(p) if p.as_char() == ',' => continue,
                other => panic!("serde shim: unsupported #[serde] token: {other:?}"),
            };
            match item.as_str() {
                "untagged" => attrs.untagged = true,
                "default" => {
                    if matches!(args.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        args.next();
                        let lit = match args.next() {
                            Some(TokenTree::Literal(l)) => l.to_string(),
                            other => panic!("serde shim: expected string after default =: {other:?}"),
                        };
                        attrs.default = Some(Some(strip_quotes(&lit)));
                    } else {
                        attrs.default = Some(None);
                    }
                }
                other => panic!("serde shim: unsupported serde attribute `{other}`"),
            }
        }
    }
    attrs
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde shim: expected {what}, got {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let attrs = take_attrs(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_visibility(&mut it);
        let name = expect_ident(&mut it, "field name");
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim: expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type, tracking angle-bracket depth so commas inside
        // generic arguments don't end the field. Parenthesized types arrive
        // as single groups, so tuple-type commas are already contained.
        // (`fn(..) -> T` types would confuse the depth tracking; none exist
        // in this workspace's serialized types.)
        let mut depth = 0i32;
        let mut first_type_ident: Option<String> = None;
        while let Some(tok) = it.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    it.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Ident(i) if first_type_ident.is_none() => {
                    first_type_ident = Some(i.to_string());
                }
                _ => {}
            }
            it.next();
        }
        let is_option = first_type_ident.as_deref() == Some("Option");
        fields.push(Field {
            name,
            default: attrs.default,
            is_option,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut n = 0usize;
    let mut segment_has_tokens = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    n += 1;
                    segment_has_tokens = false;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                segment_has_tokens = true;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        n += 1;
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        let _attrs = take_attrs(&mut it); // skips #[default], doc comments
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it, "variant name");
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                if n == 1 {
                    Shape::Newtype
                } else {
                    Shape::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        match it.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("serde shim: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
        }
        Kind::Named(fields) => object_literal_from_fields(fields, "self.", ""),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&gen_serialize_variant(name, v, c.untagged));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Build `Value::Object(vec![("f", to_value(<prefix>f<suffix>)), ...])`.
/// `prefix`/`suffix` turn field names into access expressions: `self.` for
/// struct fields, nothing for match-bound names.
fn object_literal_from_fields(fields: &[Field], prefix: &str, suffix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value(&{prefix}{n}{suffix}))",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize_variant(ty: &str, v: &Variant, untagged: bool) -> String {
    let vn = &v.name;
    let tag_wrap = |payload: &str| {
        if untagged {
            payload.to_string()
        } else {
            format!(
                "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), {payload})])"
            )
        }
    };
    match &v.shape {
        Shape::Unit => {
            let val = if untagged {
                "::serde::Value::Null".to_string()
            } else {
                format!("::serde::Value::Str(::std::string::String::from(\"{vn}\"))")
            };
            format!("{ty}::{vn} => {val},\n")
        }
        Shape::Newtype => {
            let val = tag_wrap("::serde::Serialize::to_value(__f0)");
            format!("{ty}::{vn}(__f0) => {val},\n")
        }
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let elems: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            let val = tag_wrap(&format!(
                "::serde::Value::Array(::std::vec![{}])",
                elems.join(", ")
            ));
            format!("{ty}::{vn}({}) => {val},\n", binds.join(", "))
        }
        Shape::Named(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let val = tag_wrap(&object_literal_from_fields(fields, "", ""));
            format!("{ty}::{vn} {{ {} }} => {val},\n", binds.join(", "))
        }
    }
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::Tuple(n) => gen_deserialize_tuple(name, name, *n, "__v"),
        Kind::Named(fields) => gen_deserialize_named(name, name, fields, "__v"),
        Kind::Enum(variants) => {
            if c.untagged {
                gen_deserialize_untagged(name, variants)
            } else {
                gen_deserialize_tagged(name, variants)
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

/// `ctor` is the expression head (`Foo` or `Foo::Bar`); `ctx` names the type
/// in error messages; `src` is the expression holding `&Value`.
fn gen_deserialize_named(ctor: &str, ctx: &str, fields: &[Field], src: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let n = &f.name;
        let missing = match (&f.default, f.is_option) {
            (Some(None), _) => "::std::default::Default::default()".to_string(),
            (Some(Some(path)), _) => format!("{path}()"),
            (None, true) => "::std::option::Option::None".to_string(),
            (None, false) => format!(
                "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ctx}\", \"{n}\"))"
            ),
        };
        inits.push_str(&format!(
            "{n}: match ::serde::__private::get_field(__fields, \"{n}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n"
        ));
    }
    format!(
        "{{ let __fields = ::serde::__private::as_object({src}, \"{ctx}\")?;\n\
         ::std::result::Result::Ok({ctor} {{ {inits} }}) }}"
    )
}

fn gen_deserialize_tuple(ctor: &str, ctx: &str, n: usize, src: &str) -> String {
    let elems: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
        .collect();
    format!(
        "{{ let __arr = ::serde::__private::as_array({src}, \"{ctx}\")?;\n\
         ::serde::__private::check_len(__arr, {n}, \"{ctx}\")?;\n\
         ::std::result::Result::Ok({ctor}({})) }}",
        elems.join(", ")
    )
}

fn gen_deserialize_tagged(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            Shape::Newtype => tagged_arms.push_str(&format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__pv)?)),\n"
            )),
            Shape::Tuple(n) => {
                let body = gen_deserialize_tuple(&format!("{name}::{vn}"), &format!("{name}::{vn}"), *n, "__pv");
                tagged_arms.push_str(&format!("\"{vn}\" => {body},\n"));
            }
            Shape::Named(fields) => {
                let body = gen_deserialize_named(
                    &format!("{name}::{vn}"),
                    &format!("{name}::{vn}"),
                    fields,
                    "__pv",
                );
                tagged_arms.push_str(&format!("\"{vn}\" => {body},\n"));
            }
        }
    }
    format!(
        "match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", __other)),\n\
         }},\n\
         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __pv) = &__entries[0];\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", __other)),\n\
         }}\n\
         }},\n\
         __other => ::std::result::Result::Err(::serde::Error::invalid_type(\"{name} variant\", __other)),\n\
         }}"
    )
}

fn gen_deserialize_untagged(name: &str, variants: &[Variant]) -> String {
    let mut attempts = String::new();
    for v in variants {
        let vn = &v.name;
        let attempt_body = match &v.shape {
            Shape::Unit => format!(
                "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}::{vn}), \
                 __o => ::std::result::Result::Err(::serde::Error::invalid_type(\"null\", __o)) }}"
            ),
            Shape::Newtype => format!(
                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__v)?))"
            ),
            Shape::Tuple(n) => {
                gen_deserialize_tuple(&format!("{name}::{vn}"), &format!("{name}::{vn}"), *n, "__v")
            }
            Shape::Named(fields) => gen_deserialize_named(
                &format!("{name}::{vn}"),
                &format!("{name}::{vn}"),
                fields,
                "__v",
            ),
        };
        attempts.push_str(&format!(
            "{{ let __attempt = (|| -> ::std::result::Result<{name}, ::serde::Error> {{ {attempt_body} }})();\n\
             if let ::std::result::Result::Ok(__x) = __attempt {{ return ::std::result::Result::Ok(__x); }} }}\n"
        ));
    }
    format!(
        "{attempts}\
         ::std::result::Result::Err(::serde::Error::msg(\
         \"data did not match any untagged variant of {name}\"))"
    )
}
