#!/usr/bin/env bash
# Full verification flow, in the order a reviewer should trust it:
# release build, lint wall, then the whole test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> fault-injection smoke (seeded failures must not beat the fault-free time)"
# A seeded replay with stragglers + a tiny MTBF: it must inject real
# failures, and the wall time must never undercut the fault-free run.
smoke=$(./target/release/amped simulate --model mingpt-85m --accel v100 \
    --per-node 8 --pp 2 --dp 4 --batch 64 --batches 2000 \
    --seed 7 --stragglers 2x1.8 --mtbf 0.05)
total=$(printf '%s\n' "$smoke" | sed -n 's/^fault-injected run (seed 7): \([0-9.]*\) s.*/\1/p')
fault_free=$(printf '%s\n' "$smoke" | sed -n 's/.*fault-free: \([0-9.]*\) s.*/\1/p')
failures=$(printf '%s\n' "$smoke" | sed -n 's/.*failures: \([0-9]*\).*/\1/p')
awk -v t="$total" -v f="$fault_free" -v n="$failures" 'BEGIN {
    if (t == "" || f == "" || n + 0 < 1 || t + 0 < f + 0) {
        printf "sim smoke failed: total=%s fault_free=%s failures=%s\n", t, f, n; exit 1
    }
    printf "sim smoke ok: %d failures, %.1fs >= fault-free %.1fs\n", n, t, f
}'

# The analytical expectation obeys the same law.
report=$(./target/release/amped resilience --model mingpt-85m --accel v100 \
    --per-node 8 --pp 2 --dp 4 --batch 64 --batches 2000 --mtbf 100 --json)
fault_free=$(printf '%s' "$report" | tr ',{' '\n\n' | sed -n 's/.*"fault_free_s": *\([0-9.eE+-]*\).*/\1/p' | head -1)
expected=$(printf '%s' "$report" | tr ',{' '\n\n' | sed -n 's/.*"expected_s": *\([0-9.eE+-]*\).*/\1/p' | head -1)
awk -v e="$expected" -v f="$fault_free" 'BEGIN {
    if (e == "" || f == "" || e + 0 < f + 0) {
        printf "resilience smoke failed: expected_s=%s fault_free_s=%s\n", e, f; exit 1
    }
    printf "resilience smoke ok: expected %.1fs >= fault-free %.1fs\n", e, f
}'

echo "==> observability smoke (metrics + trace JSON must parse and reconcile)"
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./target/release/amped search --model mingpt-85m --accel v100 \
    --nodes 2 --per-node 4 --batch 64 --top 3 --jobs 2 \
    --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.json" > /dev/null
cargo run -q --release --example validate_metrics -- \
    "$obs_dir/metrics.json" "$obs_dir/trace.json"

echo "==> batched-vs-scalar smoke (--no-batch --json must be byte-identical)"
# The batched evaluate_many fast path and the one-candidate-at-a-time
# scalar path must render the exact same bytes, at any worker count.
./target/release/amped search --model mingpt-85m --accel v100 \
    --nodes 2 --per-node 4 --batch 64 --top 5 --jobs 4 --memory-filter \
    --json > "$obs_dir/search_batched.json"
./target/release/amped search --model mingpt-85m --accel v100 \
    --nodes 2 --per-node 4 --batch 64 --top 5 --jobs 4 --memory-filter \
    --json --no-batch > "$obs_dir/search_scalar.json"
cmp "$obs_dir/search_batched.json" "$obs_dir/search_scalar.json" \
    || { echo "batched smoke failed: --no-batch output differs"; exit 1; }
echo "batched smoke ok: outputs byte-identical"

echo "==> serve smoke (daemon on an ephemeral port, one request per endpoint)"
# Start the daemon on port 0, parse the listening line for the real port,
# drive every endpoint through the raw-socket example client (no curl),
# re-parse each JSON response, then take it down with SIGINT and require a
# clean exit.
cargo build -q --release --example serve_client
serve_dir=$(mktemp -d)
cat > "$serve_dir/scenario.json" <<'EOF'
{
  "model": { "preset": "mingpt-85m" },
  "accelerator": { "preset": "v100" },
  "system": { "nodes": 2, "accels_per_node": 4,
              "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
  "parallelism": { "dp": [4, 2] },
  "training": { "global_batch": 64, "num_batches": 10 },
  "resilience": { "node_mtbf_hours": 1000.0 }
}
EOF
./target/release/amped serve --port 0 --jobs 2 \
    --access-log "$serve_dir/access.log" > "$serve_dir/serve.log" &
serve_pid=$!
trap 'rm -rf "$obs_dir" "$serve_dir"; kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^amped-serve listening on \(.*\)$/\1/p' "$serve_dir/serve.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
[ -n "$addr" ] || { echo "serve smoke failed: no listening line"; exit 1; }

client=./target/release/examples/serve_client
scenario="$serve_dir/scenario.json"
$client "$addr" GET  /v1/health                > "$serve_dir/health.json"
$client "$addr" POST /v1/estimate  "$scenario" > "$serve_dir/estimate.json"
$client "$addr" POST "/v1/search?top=3&jobs=2" "$scenario" > "$serve_dir/search.json"
$client "$addr" POST /v1/recommend "$scenario" > "$serve_dir/recommend.json"
$client "$addr" POST "/v1/sweep?jobs=2" "$scenario" > "$serve_dir/sweep.csv"
$client "$addr" POST /v1/resilience "$scenario" > "$serve_dir/resilience.json"
$client "$addr" GET  /v1/metrics               > "$serve_dir/metrics.json"
$client "$addr" GET  /v1/schema                > "$serve_dir/schema.json"

echo "==> chaos smoke (correlated-outage scenario: CLI and daemon answer identical bytes)"
# The spot-elastic fixture carries a failure_domains section (rack tree,
# preemption, elastic regrow); the versioned resilience artifact must come
# out of `amped resilience --json` and POST /v1/resilience byte-identical.
chaos=tests/fixtures/spot-elastic.json
chaos_cli=$(./target/release/amped resilience --json --config "$chaos")
chaos_serve=$($client "$addr" POST /v1/resilience "$chaos")
[ "$chaos_cli" = "$chaos_serve" ] \
    || { echo "chaos smoke failed: CLI and serve artifacts differ"; \
         printf '%s\n' "$chaos_cli" > "$serve_dir/chaos_cli.json"; \
         printf '%s\n' "$chaos_serve" > "$serve_dir/chaos_serve.json"; \
         diff "$serve_dir/chaos_cli.json" "$serve_dir/chaos_serve.json" | head -20; exit 1; }
printf '%s' "$chaos_serve" | grep -q '"correlated"' \
    || { echo "chaos smoke failed: no correlated section in the artifact"; exit 1; }
printf '%s\n' "$chaos_serve" | head -2 | grep -q '"schema_version"' \
    || { echo "chaos smoke failed: artifact does not lead with schema_version"; exit 1; }
echo "chaos smoke ok: correlated artifact byte-identical across front-ends"

echo "==> infer smoke (serving fixture: CLI and daemon answer identical bytes)"
# Both shipped inference fixtures must price through `amped infer --json`
# and POST /v1/infer byte-identically, lead with schema_version, and keep
# the serving-mapping search bit-identical across worker counts and with
# pruning on or off.
for fixture in tests/fixtures/infer-dev-small.json tests/fixtures/infer-llama-serve.json; do
    infer_cli=$(./target/release/amped infer --json --config "$fixture")
    infer_serve=$($client "$addr" POST /v1/infer "$fixture")
    [ "$infer_cli" = "$infer_serve" ] \
        || { echo "infer smoke failed: CLI and serve artifacts differ for $fixture"; \
             printf '%s\n' "$infer_cli" > "$serve_dir/infer_cli.json"; \
             printf '%s\n' "$infer_serve" > "$serve_dir/infer_serve.json"; \
             diff "$serve_dir/infer_cli.json" "$serve_dir/infer_serve.json" | head -20; exit 1; }
    printf '%s\n' "$infer_serve" | head -2 | grep -q '"schema_version"' \
        || { echo "infer smoke failed: artifact does not lead with schema_version"; exit 1; }
    printf '%s' "$infer_serve" | grep -q '"kv_cache_bytes"' \
        || { echo "infer smoke failed: no KV-cache accounting in the artifact"; exit 1; }
done
serve_fixture=tests/fixtures/infer-llama-serve.json
./target/release/amped search --workload infer --json --top 5 --jobs 1 \
    --config "$serve_fixture" > "$serve_dir/serving_j1.json"
./target/release/amped search --workload infer --json --top 5 --jobs 4 --prune \
    --config "$serve_fixture" > "$serve_dir/serving_j4.json"
cmp "$serve_dir/serving_j1.json" "$serve_dir/serving_j4.json" \
    || { echo "infer smoke failed: serving search depends on jobs/pruning"; exit 1; }
serving_serve=$($client "$addr" POST "/v1/search?workload=infer&top=5&jobs=4&prune=true" "$serve_fixture")
[ "$serving_serve" = "$(cat "$serve_dir/serving_j4.json")" ] \
    || { echo "infer smoke failed: serving search differs across front-ends"; exit 1; }
echo "infer smoke ok: serving artifacts byte-identical across front-ends, jobs, and pruning"

# Every JSON response must re-parse; the sweep is CSV with a winners line.
python3 - "$serve_dir" <<'EOF'
import json, sys, pathlib
d = pathlib.Path(sys.argv[1])
for name in ["health", "estimate", "search", "recommend", "resilience", "metrics"]:
    doc = json.loads((d / f"{name}.json").read_text())
    assert doc, f"{name}: empty document"
assert json.loads((d / "health.json").read_text())["status"] == "ok"
search = json.loads((d / "search.json").read_text())
assert "days" in search["rows"][0]
assert set(search["memory_rejected"]) == {
    "total", "weights", "gradients", "optimizer", "activations"
}, search["memory_rejected"]
counters = json.loads((d / "metrics.json").read_text())["counters"]
assert counters["serve.requests.received"] >= 5, counters
sweep = (d / "sweep.csv").read_text()
assert sweep.startswith("batch,") and "winners:" in sweep, sweep
print("serve smoke responses ok")
EOF

echo "==> schema smoke (every shipped scenario file validates against /v1/schema)"
# The live daemon's schema document must accept every scenario JSON the
# repo ships: the example scenario and every test fixture. The validator
# below is deliberately independent of the Rust one — same tables, second
# implementation — so a schema/validator drift fails CI from either side.
python3 - "$serve_dir/schema.json" examples/scenario.json tests/fixtures/*.json <<'EOF'
import json, sys

schema = json.load(open(sys.argv[1]))
assert schema["schema_version"], "schema has no version"
sections = schema["scenario"]

CHECKS = {
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 0,
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "string": lambda v: isinstance(v, str),
    "pair": lambda v: isinstance(v, list) and len(v) == 2,
    "object": lambda v: isinstance(v, dict),
}

def check_fields(path, body, fields):
    specs = {f["name"]: f for f in fields}
    for key, value in body.items():
        spec = specs.get(key)
        assert spec is not None, f"{path}.{key}: unknown field"
        if value is None:
            assert spec["nullable"], f"{path}.{key}: not nullable"
            continue
        if spec["type"] == "object" and "fields" in spec:
            assert isinstance(value, dict), f"{path}.{key}: expected object"
            check_fields(f"{path}.{key}", value, spec["fields"])
        else:
            assert CHECKS[spec["type"]](value), f"{path}.{key}: bad {spec['type']}: {value!r}"

for path in sys.argv[2:]:
    doc = json.load(open(path))
    assert isinstance(doc, dict), f"{path}: root must be an object"
    for name, body in doc.items():
        spec = sections.get(name)
        assert spec is not None, f"{path}: unknown section `{name}`"
        if body is None:
            assert not spec["required"], f"{path}.{name}: required section is null"
            continue
        if "type" in spec:  # scalar section
            assert CHECKS[spec["type"]](body), f"{path}.{name}: bad {spec['type']}: {body!r}"
        elif isinstance(body, dict) and set(body) == {"preset"}:
            assert body["preset"] in spec.get("presets", []), \
                f"{path}.{name}: unknown preset {body['preset']!r}"
        else:
            assert isinstance(body, dict), f"{path}.{name}: expected object"
            check_fields(f"{path}.{name}", body, spec["fields"])
print(f"schema smoke ok: {len(sys.argv) - 2} scenario file(s) validate")
EOF

echo "==> telemetry smoke (loadtest report, Prometheus exposition, access log)"
# A small load test against the live daemon must produce a valid
# BENCH_serve.json (schema_version stamped first, per-endpoint p50/p99,
# request rate, cache hit rate from real counter deltas).
./target/release/amped loadtest --addr "$addr" --clients 3 --requests 4 \
    --out "$serve_dir/BENCH_serve.json" > "$serve_dir/loadtest.log"
grep -q 'serve.loadtest' "$serve_dir/BENCH_serve.json" \
    || { echo "telemetry smoke failed: no loadtest report"; exit 1; }
python3 - "$serve_dir/BENCH_serve.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert list(doc)[0] == "schema_version", "schema_version must be the first key"
assert doc["benchmark"] == "serve.loadtest", doc["benchmark"]
assert doc["requests"] == doc["clients"] * doc["requests_per_client"] == 12, doc
assert doc["req_per_sec"] > 0 and doc["duration_s"] > 0, doc
assert doc["error_rate"] == 0.0, f"loadtest saw errors: {doc['status']}"
assert 0.0 <= doc["cache"]["hit_rate"] <= 1.0, doc["cache"]
endpoints = doc["endpoints"]
assert set(endpoints) == {"estimate", "search", "sweep", "resilience"}, set(endpoints)
for name, h in endpoints.items():
    assert h["count"] == 3, f"{name}: {h}"
    assert h["min"] <= h["p50"] <= h["p99"] <= h["max"], f"{name}: {h}"
    assert h["sum"] >= h["count"] * h["min"], f"{name}: {h}"
print("telemetry smoke: BENCH_serve.json ok "
      f"({doc['req_per_sec']:.1f} req/s, cache hit rate {doc['cache']['hit_rate']:.2f})")
EOF

# The Prometheus exposition must satisfy the text-format contract. The
# checker below is deliberately independent of the Rust renderer: names,
# TYPE lines, and for every histogram le-monotonicity, cumulative
# non-decreasing counts, and +Inf == _count.
$client "$addr" GET "/v1/metrics?format=prometheus" > "$serve_dir/metrics.prom"
python3 - "$serve_dir/metrics.prom" <<'EOF'
import re, sys
NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LINE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (\S+)$')
types, samples, buckets = {}, [], {}
for line in open(sys.argv[1]).read().splitlines():
    if not line:
        continue
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ")
        assert NAME.match(name), f"bad metric name: {name}"
        assert kind in {"counter", "gauge", "histogram"}, line
        assert name not in types, f"duplicate TYPE for {name}"
        types[name] = kind
        continue
    assert not line.startswith("#"), f"unexpected comment: {line}"
    m = LINE.match(line)
    assert m, f"unparseable sample line: {line!r}"
    name, _, le, value = m.groups()
    value = float(value)
    samples.append(name)
    if le is not None:
        assert name.endswith("_bucket"), line
        buckets.setdefault(name[: -len("_bucket")], []).append((le, value))
for base, rows in buckets.items():
    assert types.get(base) == "histogram", f"{base}: buckets without histogram TYPE"
    les = [le for le, _ in rows]
    assert les[-1] == "+Inf", f"{base}: last bucket must be +Inf"
    bounds = [float(le) for le in les[:-1]]
    assert bounds == sorted(bounds), f"{base}: le bounds not sorted"
    counts = [v for _, v in rows]
    assert counts == sorted(counts), f"{base}: cumulative counts decrease"
for base, kind in types.items():
    if kind != "histogram":
        continue
    assert base in buckets, f"{base}: histogram with no buckets"
    assert f"{base}_sum" in samples and f"{base}_count" in samples, base
hist = [b for b, k in types.items() if k == "histogram"]
assert any(b.startswith("serve_http_") for b in hist), hist
print(f"telemetry smoke: prometheus ok ({len(types)} series, {len(hist)} histograms)")
EOF

# +Inf == _count cross-check needs the actual values; do it with a second
# pass keyed on names.
python3 - "$serve_dir/metrics.prom" <<'EOF'
import sys
values = {}
inf = {}
for line in open(sys.argv[1]).read().splitlines():
    if not line or line.startswith("#"):
        continue
    name, value = line.rsplit(" ", 1)
    if 'le="+Inf"' in name:
        inf[name.split("{")[0][: -len("_bucket")]] = float(value)
    elif "{" not in name:
        values[name] = float(value)
for base, total in inf.items():
    assert values.get(f"{base}_count") == total, \
        f"{base}: +Inf bucket {total} != _count {values.get(base + '_count')}"
print(f"telemetry smoke: +Inf == _count for {len(inf)} histograms")
EOF

# Every access-log line is one JSON object naming the request.
python3 - "$serve_dir/access.log" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l]
assert len(lines) >= 12, f"expected at least the loadtest's requests, got {len(lines)}"
for line in lines:
    entry = json.loads(line)
    assert set(entry) == {"method", "endpoint", "status", "bytes",
                          "queue_us", "handler_us"}, entry
    assert entry["status"] in range(100, 600), entry
print(f"telemetry smoke: access log ok ({len(lines)} entries)")
EOF

kill -INT "$serve_pid"
wait "$serve_pid" || { echo "serve smoke failed: non-zero exit on SIGINT"; exit 1; }
grep -q 'amped-serve: served' "$serve_dir/serve.log" \
    || { echo "serve smoke failed: no shutdown summary"; cat "$serve_dir/serve.log"; exit 1; }
echo "serve smoke ok: $(sed -n 's/^amped-serve: //p' "$serve_dir/serve.log")"

echo "ci: all green"
