#!/usr/bin/env bash
# Full verification flow, in the order a reviewer should trust it:
# release build, lint wall, then the whole test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> fault-injection smoke (seeded failures must not beat the fault-free time)"
# A seeded replay with stragglers + a tiny MTBF: it must inject real
# failures, and the wall time must never undercut the fault-free run.
smoke=$(./target/release/amped simulate --model mingpt-85m --accel v100 \
    --per-node 8 --pp 2 --dp 4 --batch 64 --batches 2000 \
    --seed 7 --stragglers 2x1.8 --mtbf 0.05)
total=$(printf '%s\n' "$smoke" | sed -n 's/^fault-injected run (seed 7): \([0-9.]*\) s.*/\1/p')
fault_free=$(printf '%s\n' "$smoke" | sed -n 's/.*fault-free: \([0-9.]*\) s.*/\1/p')
failures=$(printf '%s\n' "$smoke" | sed -n 's/.*failures: \([0-9]*\).*/\1/p')
awk -v t="$total" -v f="$fault_free" -v n="$failures" 'BEGIN {
    if (t == "" || f == "" || n + 0 < 1 || t + 0 < f + 0) {
        printf "sim smoke failed: total=%s fault_free=%s failures=%s\n", t, f, n; exit 1
    }
    printf "sim smoke ok: %d failures, %.1fs >= fault-free %.1fs\n", n, t, f
}'

# The analytical expectation obeys the same law.
report=$(./target/release/amped resilience --model mingpt-85m --accel v100 \
    --per-node 8 --pp 2 --dp 4 --batch 64 --batches 2000 --mtbf 100 --json)
fault_free=$(printf '%s' "$report" | tr ',{' '\n\n' | sed -n 's/.*"fault_free_s": *\([0-9.eE+-]*\).*/\1/p' | head -1)
expected=$(printf '%s' "$report" | tr ',{' '\n\n' | sed -n 's/.*"expected_s": *\([0-9.eE+-]*\).*/\1/p' | head -1)
awk -v e="$expected" -v f="$fault_free" 'BEGIN {
    if (e == "" || f == "" || e + 0 < f + 0) {
        printf "resilience smoke failed: expected_s=%s fault_free_s=%s\n", e, f; exit 1
    }
    printf "resilience smoke ok: expected %.1fs >= fault-free %.1fs\n", e, f
}'

echo "==> observability smoke (metrics + trace JSON must parse and reconcile)"
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./target/release/amped search --model mingpt-85m --accel v100 \
    --nodes 2 --per-node 4 --batch 64 --top 3 --jobs 2 \
    --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.json" > /dev/null
cargo run -q --release --example validate_metrics -- \
    "$obs_dir/metrics.json" "$obs_dir/trace.json"

echo "ci: all green"
