#!/usr/bin/env bash
# Full verification flow, in the order a reviewer should trust it:
# release build, lint wall, then the whole test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "ci: all green"
