#!/usr/bin/env bash
# Full verification flow, in the order a reviewer should trust it:
# release build, lint wall, then the whole test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test -q --workspace

echo "==> fault-injection smoke (seeded failures must not beat the fault-free time)"
# A seeded replay with stragglers + a tiny MTBF: it must inject real
# failures, and the wall time must never undercut the fault-free run.
smoke=$(./target/release/amped simulate --model mingpt-85m --accel v100 \
    --per-node 8 --pp 2 --dp 4 --batch 64 --batches 2000 \
    --seed 7 --stragglers 2x1.8 --mtbf 0.05)
total=$(printf '%s\n' "$smoke" | sed -n 's/^fault-injected run (seed 7): \([0-9.]*\) s.*/\1/p')
fault_free=$(printf '%s\n' "$smoke" | sed -n 's/.*fault-free: \([0-9.]*\) s.*/\1/p')
failures=$(printf '%s\n' "$smoke" | sed -n 's/.*failures: \([0-9]*\).*/\1/p')
awk -v t="$total" -v f="$fault_free" -v n="$failures" 'BEGIN {
    if (t == "" || f == "" || n + 0 < 1 || t + 0 < f + 0) {
        printf "sim smoke failed: total=%s fault_free=%s failures=%s\n", t, f, n; exit 1
    }
    printf "sim smoke ok: %d failures, %.1fs >= fault-free %.1fs\n", n, t, f
}'

# The analytical expectation obeys the same law.
report=$(./target/release/amped resilience --model mingpt-85m --accel v100 \
    --per-node 8 --pp 2 --dp 4 --batch 64 --batches 2000 --mtbf 100 --json)
fault_free=$(printf '%s' "$report" | tr ',{' '\n\n' | sed -n 's/.*"fault_free_s": *\([0-9.eE+-]*\).*/\1/p' | head -1)
expected=$(printf '%s' "$report" | tr ',{' '\n\n' | sed -n 's/.*"expected_s": *\([0-9.eE+-]*\).*/\1/p' | head -1)
awk -v e="$expected" -v f="$fault_free" 'BEGIN {
    if (e == "" || f == "" || e + 0 < f + 0) {
        printf "resilience smoke failed: expected_s=%s fault_free_s=%s\n", e, f; exit 1
    }
    printf "resilience smoke ok: expected %.1fs >= fault-free %.1fs\n", e, f
}'

echo "==> observability smoke (metrics + trace JSON must parse and reconcile)"
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
./target/release/amped search --model mingpt-85m --accel v100 \
    --nodes 2 --per-node 4 --batch 64 --top 3 --jobs 2 \
    --trace-out "$obs_dir/trace.json" --metrics-out "$obs_dir/metrics.json" > /dev/null
cargo run -q --release --example validate_metrics -- \
    "$obs_dir/metrics.json" "$obs_dir/trace.json"

echo "==> batched-vs-scalar smoke (--no-batch --json must be byte-identical)"
# The batched evaluate_many fast path and the one-candidate-at-a-time
# scalar path must render the exact same bytes, at any worker count.
./target/release/amped search --model mingpt-85m --accel v100 \
    --nodes 2 --per-node 4 --batch 64 --top 5 --jobs 4 --memory-filter \
    --json > "$obs_dir/search_batched.json"
./target/release/amped search --model mingpt-85m --accel v100 \
    --nodes 2 --per-node 4 --batch 64 --top 5 --jobs 4 --memory-filter \
    --json --no-batch > "$obs_dir/search_scalar.json"
cmp "$obs_dir/search_batched.json" "$obs_dir/search_scalar.json" \
    || { echo "batched smoke failed: --no-batch output differs"; exit 1; }
echo "batched smoke ok: outputs byte-identical"

echo "==> serve smoke (daemon on an ephemeral port, one request per endpoint)"
# Start the daemon on port 0, parse the listening line for the real port,
# drive every endpoint through the raw-socket example client (no curl),
# re-parse each JSON response, then take it down with SIGINT and require a
# clean exit.
cargo build -q --release --example serve_client
serve_dir=$(mktemp -d)
cat > "$serve_dir/scenario.json" <<'EOF'
{
  "model": { "preset": "mingpt-85m" },
  "accelerator": { "preset": "v100" },
  "system": { "nodes": 2, "accels_per_node": 4,
              "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
  "parallelism": { "dp": [4, 2] },
  "training": { "global_batch": 64, "num_batches": 10 },
  "resilience": { "node_mtbf_hours": 1000.0 }
}
EOF
./target/release/amped serve --port 0 --jobs 2 > "$serve_dir/serve.log" &
serve_pid=$!
trap 'rm -rf "$obs_dir" "$serve_dir"; kill "$serve_pid" 2>/dev/null || true' EXIT
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^amped-serve listening on \(.*\)$/\1/p' "$serve_dir/serve.log")
    [ -n "$addr" ] && break
    sleep 0.05
done
[ -n "$addr" ] || { echo "serve smoke failed: no listening line"; exit 1; }

client=./target/release/examples/serve_client
scenario="$serve_dir/scenario.json"
$client "$addr" GET  /v1/health                > "$serve_dir/health.json"
$client "$addr" POST /v1/estimate  "$scenario" > "$serve_dir/estimate.json"
$client "$addr" POST "/v1/search?top=3&jobs=2" "$scenario" > "$serve_dir/search.json"
$client "$addr" POST /v1/recommend "$scenario" > "$serve_dir/recommend.json"
$client "$addr" POST "/v1/sweep?jobs=2" "$scenario" > "$serve_dir/sweep.csv"
$client "$addr" POST /v1/resilience "$scenario" > "$serve_dir/resilience.json"
$client "$addr" GET  /v1/metrics               > "$serve_dir/metrics.json"

# Every JSON response must re-parse; the sweep is CSV with a winners line.
python3 - "$serve_dir" <<'EOF'
import json, sys, pathlib
d = pathlib.Path(sys.argv[1])
for name in ["health", "estimate", "search", "recommend", "resilience", "metrics"]:
    doc = json.loads((d / f"{name}.json").read_text())
    assert doc, f"{name}: empty document"
assert json.loads((d / "health.json").read_text())["status"] == "ok"
search = json.loads((d / "search.json").read_text())
assert "days" in search["rows"][0]
assert set(search["memory_rejected"]) == {
    "total", "weights", "gradients", "optimizer", "activations"
}, search["memory_rejected"]
counters = json.loads((d / "metrics.json").read_text())["counters"]
assert counters["serve.requests.received"] >= 5, counters
sweep = (d / "sweep.csv").read_text()
assert sweep.startswith("batch,") and "winners:" in sweep, sweep
print("serve smoke responses ok")
EOF

kill -INT "$serve_pid"
wait "$serve_pid" || { echo "serve smoke failed: non-zero exit on SIGINT"; exit 1; }
grep -q 'amped-serve: served' "$serve_dir/serve.log" \
    || { echo "serve smoke failed: no shutdown summary"; cat "$serve_dir/serve.log"; exit 1; }
echo "serve smoke ok: $(sed -n 's/^amped-serve: //p' "$serve_dir/serve.log")"

echo "ci: all green"
