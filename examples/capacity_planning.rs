//! Capacity planning: how many GPUs does a training deadline require, and
//! what does the run cost in energy? Sweeps cluster sizes, picks the best
//! mapping at each, and finds the smallest cluster that meets the deadline.
//!
//! Run with: `cargo run --example capacity_planning`

use amped::configs::{accelerators, efficiency, systems};
use amped::prelude::*;

const DEADLINE_DAYS: f64 = 30.0;
const TOKENS: f64 = 300e9;

fn main() -> Result<(), amped::core::Error> {
    let model = TransformerModel::builder("gpt-30b")
        .layers(48)
        .hidden_size(7168)
        .heads(56)
        .seq_len(2048)
        .vocab_size(50257)
        .build()?;
    let a100 = accelerators::a100();
    println!(
        "planning: train {} ({:.0}B params) on {} tokens within {DEADLINE_DAYS} days\n",
        model.name(),
        model.total_parameters() / 1e9,
        amped::core::units::format_count(TOKENS)
    );

    println!(
        "{:>6} {:>10} {:>22} {:>9} {:>10}",
        "GPUs", "days", "best mapping", "TFLOP/s", "MWh"
    );
    let mut chosen = None;
    for nodes in [4usize, 8, 16, 32, 64] {
        let system = systems::a100_hdr_cluster(nodes, 8);
        let batch = 32 * nodes; // keep the per-replica batch healthy
        let training = TrainingConfig::from_tokens(batch, model.seq_len(), TOKENS)?;
        let best = SearchEngine::new(&model, &a100, &system)
            .with_efficiency(efficiency::case_study())
            .with_engine_options(EngineOptions {
                activation_recompute: true,
                ..Default::default()
            })
            // ZeRO-1 shards the Adam states across DP ranks, which is what
            // makes a 30B model fit mid-sized clusters at all.
            .with_enumeration(EnumerationOptions {
                zero: ZeroConfig::stage(ZeroStage::OptimizerStates, 0.0),
                ..Default::default()
            })
            .with_memory_filter(true)
            .best(&training)?
            .expect("at least one feasible mapping");
        let p = &best.parallelism;
        println!(
            "{:>6} {:>10.1} {:>22} {:>9.1} {:>10.1}",
            system.total_accelerators(),
            best.estimate.days(),
            format!("tp{} pp{} dp{}", p.tp(), p.pp(), p.dp()),
            best.estimate.tflops_per_gpu,
            best.energy.megawatt_hours(),
        );
        if best.estimate.days() <= DEADLINE_DAYS && chosen.is_none() {
            chosen = Some((system.total_accelerators(), best));
        }
    }

    match chosen {
        Some((gpus, best)) => {
            println!(
                "\nanswer: {gpus} A100s meet the {DEADLINE_DAYS}-day deadline \
                 ({:.1} days, {:.1} MWh, tp{} pp{} dp{})",
                best.estimate.days(),
                best.energy.megawatt_hours(),
                best.parallelism.tp(),
                best.parallelism.pp(),
                best.parallelism.dp(),
            );
        }
        None => println!("\nno swept cluster size meets the deadline — scale further out"),
    }
    Ok(())
}
