//! A raw-socket client for the `amped serve` daemon — plain `std`, no curl.
//!
//! ```text
//! amped serve --port 8750 &
//! cargo run --example serve_client -- 127.0.0.1:8750 GET /v1/health
//! cargo run --example serve_client -- 127.0.0.1:8750 POST /v1/estimate examples/scenario.json
//! cargo run --example serve_client -- 127.0.0.1:8750 POST "/v1/search?top=5" examples/scenario.json
//! ```
//!
//! Prints the response body to stdout; exits nonzero on any non-200
//! status (the status line goes to stderr). The CI smoke test drives one
//! request per endpoint through this exact binary.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, method, target, body_file) = match args.as_slice() {
        [addr, method, target] => (addr, method, target, None),
        [addr, method, target, body] => (addr, method, target, Some(body)),
        _ => {
            eprintln!("usage: serve_client ADDR METHOD PATH[?QUERY] [BODY_FILE]");
            return ExitCode::from(2);
        }
    };
    let body = match body_file {
        None => String::new(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if let Err(e) = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
    {
        eprintln!("error: write failed: {e}");
        return ExitCode::FAILURE;
    }

    let mut raw = String::new();
    if let Err(e) = stream.read_to_string(&mut raw) {
        eprintln!("error: read failed: {e}");
        return ExitCode::FAILURE;
    }
    let Some((header_block, payload)) = raw.split_once("\r\n\r\n") else {
        eprintln!("error: malformed response: {raw}");
        return ExitCode::FAILURE;
    };
    let status_line = header_block.lines().next().unwrap_or_default();
    eprintln!("{status_line}");
    println!("{payload}");
    if status_line.split_whitespace().nth(1) == Some("200") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
