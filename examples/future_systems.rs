//! Explore a future system before it exists: what would an optical
//! communication substrate do for a mixture-of-experts model? (The paper's
//! case study III, as a reusable workflow.)
//!
//! Run with: `cargo run --example future_systems`

use amped::configs::{accelerators, efficiency, models, optical, systems};
use amped::prelude::*;

fn estimate(
    model: &TransformerModel,
    accel: &AcceleratorSpec,
    system: &amped::core::SystemSpec,
) -> Result<Estimate, amped::core::Error> {
    let mapping = Parallelism::builder()
        .tp(system.accels_per_node(), 1)
        .dp(1, system.num_nodes())
        .build()?;
    Estimator::new(model, accel, system, &mapping)
        .with_precision(Precision::int8())
        .with_efficiency(efficiency::case_study())
        .estimate(&TrainingConfig::single_batch(8192)?)
}

fn main() -> Result<(), amped::core::Error> {
    let glam = models::glam_64e();
    let h100 = accelerators::h100();
    println!(
        "model: {} ({:.2}T total / {:.0}B activated parameters)\n",
        glam.name(),
        glam.total_parameters() / 1e12,
        glam.activated_parameters() / 1e9
    );

    // Today: 8 H100s per node, NDR InfiniBand between nodes.
    let today = systems::h100_ndr_cluster(384, 8);
    let e_today = estimate(&glam, &h100, &today)?;
    println!(
        "today  (8/node, NDR):      {:.3} s/iter, MoE all-to-all {:.0}% of time",
        e_today.time_per_iteration.get(),
        e_today.breakdown.moe_comm / e_today.breakdown.total() * 100.0
    );

    // Tomorrow: the same silicon on a 4x4 optical substrate.
    let tomorrow = optical::optical_cluster(&h100, 3072, 4, 4);
    let e_tomorrow = estimate(&glam, &h100, &tomorrow)?;
    println!(
        "optical (4x4 substrate):   {:.3} s/iter  ({:.2}x)",
        e_tomorrow.time_per_iteration.get(),
        e_today.time_per_iteration.get() / e_tomorrow.time_per_iteration.get()
    );

    // The day after: accelerators designed for the substrate, with 4x the
    // off-chip bandwidth.
    let future_accel = h100.with_offchip_bandwidth_scaled(4.0);
    let future = optical::optical_cluster(&future_accel, 3072, 4, 4);
    let e_future = estimate(&glam, &future_accel, &future)?;
    println!(
        "optical + 4x off-chip:     {:.3} s/iter  ({:.2}x)",
        e_future.time_per_iteration.get(),
        e_today.time_per_iteration.get() / e_future.time_per_iteration.get()
    );

    println!(
        "\nsame peak compute, {:.1}x faster training — communication, not FLOPs, is the wall",
        e_today.time_per_iteration.get() / e_future.time_per_iteration.get()
    );
    Ok(())
}
