//! Mixing GPU generations in one pipeline — the extension the paper's
//! conclusion names. Shows why layer placement, not just hardware count,
//! decides throughput when stages differ.
//!
//! Run with: `cargo run --example heterogeneous_pipeline`

use amped::configs::accelerators;
use amped::core::hetero::{HeteroPipeline, HeteroStage};
use amped::prelude::*;

fn main() -> Result<(), amped::core::Error> {
    // A 48-layer model across one V100 stage and one A100 stage.
    let model = TransformerModel::builder("gpt-6b")
        .layers(48)
        .hidden_size(4096)
        .heads(32)
        .seq_len(1024)
        .vocab_size(50257)
        .include_head(false)
        .build()?;
    let v100 = accelerators::v100();
    let a100 = accelerators::a100();
    let training = TrainingConfig::new(128, 1)?;

    println!("splitting {} layers between a V100 and an A100 stage:\n", model.num_layers());
    println!("{:>14} {:>12} {:>12} {:>10}", "V100 layers", "iter (s)", "bottleneck", "bubble");
    let mut best: Option<(usize, f64)> = None;
    for v100_layers in [8usize, 12, 16, 24, 32] {
        let pipeline = HeteroPipeline::new(
            &model,
            vec![
                HeteroStage {
                    accelerator: v100.clone(),
                    num_layers: v100_layers,
                },
                HeteroStage {
                    accelerator: a100.clone(),
                    num_layers: model.num_layers() - v100_layers,
                },
            ],
        )?
        .with_efficiency(EfficiencyModel::Constant(0.5));
        let e = pipeline.estimate(&training, 16)?;
        println!(
            "{:>14} {:>12.3} {:>12} {:>9.0}%",
            v100_layers,
            e.time_per_iteration.get(),
            if e.bottleneck_stage == 0 { "V100" } else { "A100" },
            e.bubble_fraction * 100.0
        );
        if best.map(|(_, t)| e.time_per_iteration.get() < t).unwrap_or(true) {
            best = Some((v100_layers, e.time_per_iteration.get()));
        }
    }

    let (layers, secs) = best.expect("evaluated");
    println!(
        "\nbest split: {layers} layers on the V100 ({secs:.3} s/iter) — \
         balance the *time*, not the layer count"
    );
    Ok(())
}
