//! Quickstart: predict the training time of a GPT-style model on a GPU
//! cluster and print the full per-component breakdown.
//!
//! Run with: `cargo run --example quickstart`

use amped::configs::{accelerators, efficiency, systems};
use amped::prelude::*;

fn main() -> Result<(), amped::core::Error> {
    // 1. Describe the model: a 13B-parameter GPT.
    let model = TransformerModel::builder("gpt-13b")
        .layers(40)
        .hidden_size(5120)
        .heads(40)
        .seq_len(2048)
        .vocab_size(50257)
        .build()?;
    println!(
        "model: {} ({:.1}B parameters)",
        model.name(),
        model.total_parameters() / 1e9
    );

    // 2. Pick hardware from the preset catalog: 16 nodes x 8 A100s on
    //    NVLink + HDR InfiniBand.
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    println!(
        "system: {} x {} = {} accelerators",
        system.num_nodes(),
        system.accels_per_node(),
        system.total_accelerators()
    );

    // 3. Choose the parallelism mapping: tensor parallelism inside each
    //    node, data parallelism across nodes.
    let mapping = Parallelism::builder().tp(8, 1).dp(1, 16).build()?;

    // 4. Ask AMPeD for the training time of 300B tokens at batch 1024.
    let training = TrainingConfig::from_tokens(1024, model.seq_len(), 300e9)?;
    let estimate = Estimator::new(&model, &a100, &system, &mapping)
        .with_efficiency(efficiency::case_study())
        .with_options(EngineOptions {
            activation_recompute: true,
            ..Default::default()
        })
        .estimate(&training)?;

    println!("\n{estimate}\n");
    println!(
        "verdict: {:.1} days of training at {:.0} TFLOP/s per GPU",
        estimate.days(),
        estimate.tflops_per_gpu
    );

    // 5. Check it fits in memory.
    let footprint = MemoryModel::new(&model, &mapping)
        .with_activation_recompute(true)
        .footprint(estimate.microbatch_size, estimate.num_microbatches);
    println!("per-device memory: {footprint}");

    // 6. And what the power bill looks like.
    let energy = EnergyEstimate::from_estimate(
        &estimate,
        &PowerModel::from_accelerator(&a100),
        training.num_batches(),
    );
    println!("energy: {energy}");
    Ok(())
}
