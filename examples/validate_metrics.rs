//! CI validator for the CLI's observability artifacts.
//!
//! Parses a `--metrics-out` run report and a `--trace-out` Chrome trace
//! back through the workspace `serde_json` shim (keeping the hand-rolled
//! writers in `amped-obs` honest), checks the required counter keys are
//! present, and verifies the search accounting identities hold exactly.
//!
//! Run with:
//! `cargo run --example validate_metrics -- metrics.json trace.json`

use serde_json::Value;

/// Counters every instrumented `search` run must report.
const REQUIRED_COUNTERS: &[&str] = &[
    "search.candidates.generated",
    "search.candidates.pruned",
    "search.candidates.evaluated",
    "search.candidates.kept",
    "search.candidates.memory_rejected",
    "search.cache.lookups",
    "search.cache.hits",
    "search.cache.misses",
];

fn fail(msg: &str) -> ! {
    eprintln!("validate_metrics: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(metrics_path), Some(trace_path)) = (args.next(), args.next()) else {
        fail("usage: validate_metrics <metrics.json> <trace.json>");
    };

    // ---- metrics: required keys and accounting identities ----
    let text = std::fs::read_to_string(&metrics_path)
        .unwrap_or_else(|e| fail(&format!("read {metrics_path}: {e}")));
    let metrics: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("{metrics_path} is not valid JSON: {e:?}")));

    let counters = metrics
        .get("counters")
        .and_then(Value::as_object)
        .unwrap_or_else(|| fail("metrics JSON has no \"counters\" object"));
    let counter = |key: &str| -> u64 {
        counters
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_u64())
            .unwrap_or_else(|| fail(&format!("missing required counter {key}")))
    };
    for key in REQUIRED_COUNTERS {
        let _ = counter(key);
    }
    let generated = counter("search.candidates.generated");
    let pruned = counter("search.candidates.pruned");
    let evaluated = counter("search.candidates.evaluated");
    let kept = counter("search.candidates.kept");
    let rejected = counter("search.candidates.memory_rejected");
    let lookups = counter("search.cache.lookups");
    let hits = counter("search.cache.hits");
    let misses = counter("search.cache.misses");
    if generated != pruned + evaluated {
        fail(&format!(
            "identity violated: generated {generated} != pruned {pruned} + evaluated {evaluated}"
        ));
    }
    if evaluated != kept + rejected {
        fail(&format!(
            "identity violated: evaluated {evaluated} != kept {kept} + memory_rejected {rejected}"
        ));
    }
    if lookups != hits + misses {
        fail(&format!(
            "identity violated: lookups {lookups} != hits {hits} + misses {misses}"
        ));
    }
    if generated == 0 {
        fail("search generated zero candidates; instrumentation is not wired");
    }
    if metrics.get("phases").and_then(Value::as_array).is_none() {
        fail("metrics JSON has no \"phases\" array");
    }

    // ---- trace: a non-empty array of complete events ----
    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| fail(&format!("read {trace_path}: {e}")));
    let trace: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("{trace_path} is not valid JSON: {e:?}")));
    let events = trace
        .as_array()
        .unwrap_or_else(|| fail("trace JSON is not an array"));
    if events.is_empty() {
        fail("trace JSON has no events");
    }
    for (i, e) in events.iter().enumerate() {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            fail(&format!("trace event {i} is not a complete (ph=X) event"));
        }
        for field in ["name", "cat", "ts", "dur", "pid", "tid"] {
            if e.get(field).is_none() {
                fail(&format!("trace event {i} is missing \"{field}\""));
            }
        }
    }

    println!(
        "validate_metrics ok: {} counters ({generated} candidates, {lookups} cache lookups), {} trace events",
        counters.len(),
        events.len()
    );
}
