//! Preflight a launch configuration: lint it for footguns, attribute the
//! predicted time to layers, and rank which hardware knob would help most —
//! the co-design loop AMPeD exists for, in one pass.
//!
//! Run with: `cargo run --example preflight`

use amped::configs::{accelerators, efficiency, systems};
use amped::core::{check_scenario, SensitivityAnalysis};
use amped::prelude::*;

fn main() -> Result<(), amped::core::Error> {
    let model = amped::configs::models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(32, 8);
    // A deliberately questionable mapping: TP spilling across nodes.
    let mapping = Parallelism::builder().tp(8, 2).dp(1, 16).build()?;
    let training = TrainingConfig::new(4096, 1)?;

    // 1. Lint.
    println!("== preflight checks ==");
    let findings = check_scenario(&model, &system, &mapping, &training);
    if findings.is_empty() {
        println!("no findings");
    }
    for d in &findings {
        println!("{d}");
    }

    // 2. Attribute the time.
    let detailed = Estimator::new(&model, &a100, &system, &mapping)
        .with_efficiency(efficiency::case_study())
        .estimate_detailed(&training)?;
    println!("\n== where the time goes ==");
    println!(
        "iteration {:.2} s at {:.0} TFLOP/s/GPU",
        detailed.estimate.time_per_iteration.get(),
        detailed.estimate.tflops_per_gpu
    );
    for l in detailed.hottest_layers(3) {
        println!(
            "  layer {:>2}: {:.3} s ({:.1}% — {:.0}% of it communication)",
            l.index,
            l.total(),
            l.total() / detailed.estimate.time_per_iteration.get() * 100.0,
            (l.tp_comm + l.moe_comm + l.dp_comm) / l.total() * 100.0
        );
    }

    // 3. Which knob pays?
    println!("\n== sensitivity (every knob 2x better) ==");
    let tornado = SensitivityAnalysis::new(&model, &a100, &system, &mapping)
        .with_efficiency(efficiency::case_study())
        .tornado(2.0, &training)?;
    for r in &tornado {
        println!("  {:<24} {:+.1}%", r.knob.name(), r.speedup() * 100.0);
    }
    println!(
        "\nverdict: spend on `{}` first",
        tornado[0].knob.name()
    );
    Ok(())
}
