//! Find the best parallelism mapping for a model on a given cluster — the
//! paper's core use case: pick the launch configuration *before* burning
//! GPU-hours.
//!
//! Run with: `cargo run --example optimize_cluster`

use amped::configs::{accelerators, efficiency, models, systems};
use amped::prelude::*;
use amped::search::pareto_front;

fn main() -> Result<(), amped::core::Error> {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(32, 8);
    let training = TrainingConfig::from_tokens(4096, model.seq_len(), 300e9)?;

    println!(
        "searching mappings of {} onto {} accelerators...\n",
        model.name(),
        system.total_accelerators()
    );

    // Activation recomputation is how 145B-class models actually fit; the
    // search engine threads it through both the time and the memory model.
    let engine = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .with_engine_options(EngineOptions {
            activation_recompute: true,
            ..Default::default()
        })
        .with_memory_filter(true);
    let candidates = engine.search(&training)?;
    println!("{} memory-feasible mappings found; top 5:", candidates.len());
    println!(
        "{:<22} {:>9} {:>14} {:>12} {:>10}",
        "mapping (txp/pxp/dxd)", "days", "TFLOP/s/GPU", "mem/device", "MWh"
    );
    for c in candidates.iter().take(5) {
        let p = &c.parallelism;
        println!(
            "{:<22} {:>9.1} {:>14.1} {:>12} {:>10.1}",
            format!(
                "tp{}x{} pp{}x{} dp{}x{}",
                p.tp_intra(),
                p.tp_inter(),
                p.pp_intra(),
                p.pp_inter(),
                p.dp_intra(),
                p.dp_inter()
            ),
            c.estimate.days(),
            c.estimate.tflops_per_gpu,
            amped::core::units::format_bytes(c.memory.total()),
            c.energy.megawatt_hours(),
        );
    }

    // The best mapping is not always best on every axis: show the
    // time x energy x memory Pareto front.
    let front = pareto_front(&candidates);
    println!("\n{} Pareto-optimal mappings (time x energy x memory):", front.len());
    for &i in front.iter().take(5) {
        let c = &candidates[i];
        println!(
            "  rank {:>3}: {:.1} d, {:.1} MWh, {} per device",
            i + 1,
            c.estimate.days(),
            c.energy.megawatt_hours(),
            amped::core::units::format_bytes(c.memory.total())
        );
    }

    let best = &candidates[0];
    println!(
        "\nrecommendation: TP {} inside nodes, PP {}, DP {} across — {:.1} days",
        best.parallelism.tp(),
        best.parallelism.pp(),
        best.parallelism.dp(),
        best.estimate.days()
    );
    Ok(())
}
