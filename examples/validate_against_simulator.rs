//! Cross-check the analytical model against the discrete-event simulator —
//! the workflow behind the paper's Fig. 2 validation, runnable on a laptop
//! instead of an HGX-2.
//!
//! Run with: `cargo run --example validate_against_simulator`

use amped::configs::{accelerators, efficiency, models, systems};
use amped::prelude::*;

fn main() -> Result<(), amped::core::Error> {
    let model = models::mingpt_pp();
    let v100 = accelerators::v100();
    let eff = efficiency::v100_mingpt();

    println!("minGPT-PP on a simulated HGX-2: analytical model vs discrete-event simulator\n");
    println!(
        "{:<18} {:>12} {:>12} {:>8}",
        "mapping", "model", "simulator", "gap"
    );

    let mut worst: f64 = 0.0;
    for (label, dp, pp, n_ub) in [
        ("DP x8", 8, 1, 1),
        ("PP x8, 8 ub", 1, 8, 8),
        ("PP x8, 32 ub", 1, 8, 32),
        ("DP x2 / PP x4", 2, 4, 16),
    ] {
        let system = systems::hgx2(8);
        let mapping = Parallelism::builder()
            .dp(dp, 1)
            .pp(pp, 1)
            .microbatches(MicrobatchPolicy::Explicit(n_ub))
            .build()?;
        let batch = 128;

        let predicted = Estimator::new(&model, &v100, &system, &mapping)
            .with_efficiency(eff.clone())
            .estimate(&TrainingConfig::single_batch(batch)?)?
            .time_per_iteration
            .get();
        let simulated = SimConfig::new(&model, &v100, &system, &mapping)
            .with_efficiency(eff.clone())
            .simulate_iteration(batch)?
            .iteration_time;

        let gap = (predicted - simulated).abs() / simulated;
        worst = worst.max(gap);
        println!(
            "{label:<18} {predicted:>10.4} s {simulated:>10.4} s {:>7.1}%",
            gap * 100.0
        );
    }

    println!(
        "\nworst disagreement: {:.1}% — inside the paper's 12% validation band",
        worst * 100.0
    );
    assert!(worst < 0.12);
    Ok(())
}
