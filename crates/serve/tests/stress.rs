//! Concurrent stress and lifecycle tests against an in-process server.
//!
//! Pins the service's concurrency contract: many clients hammering mixed
//! endpoints never deadlock, a saturated queue visibly refuses work with
//! 429, identical queries answer byte-identically regardless of which
//! worker (and how warm a cache) served them, and after a graceful drain
//! the metrics counters balance exactly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use amped_serve::{ServeConfig, Server, ServerHandle};

const SCENARIO: &str = r#"{
    "model": { "preset": "mingpt-85m" },
    "accelerator": { "preset": "v100" },
    "system": { "nodes": 2, "accels_per_node": 4,
                "intra_gbps": 2400.0, "inter_gbps": 100.0, "nics_per_node": 1 },
    "parallelism": { "dp": [4, 2] },
    "training": { "global_batch": 64, "num_batches": 10 }
}"#;

/// A running in-process server plus everything a test needs to talk to it
/// and take it down.
struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<amped_core::Result<amped_serve::ServeSummary>>,
}

fn start(jobs: usize, queue_depth: usize, timeout_ms: u64) -> TestServer {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        queue_depth,
        timeout_ms,
        handle_sigint: false,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer {
        addr,
        handle,
        thread,
    }
}

impl TestServer {
    fn stop(self) -> amped_serve::ServeSummary {
        self.handle.shutdown();
        self.thread
            .join()
            .expect("server thread joins")
            .expect("server run succeeds")
    }
}

/// One raw HTTP exchange: returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, payload)
}

#[test]
fn mixed_concurrent_load_is_deadlock_free_and_consistent() {
    let server = start(2, 64, 30_000);
    let addr = server.addr;

    let threads = 4;
    let per_thread = 4;
    let barrier = Arc::new(Barrier::new(threads));
    let estimate_bodies: Arc<std::sync::Mutex<Vec<String>>> =
        Arc::new(std::sync::Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            let bodies = Arc::clone(&estimate_bodies);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    let (target, expect_json) = if (t + i) % 2 == 0 {
                        ("/v1/estimate", true)
                    } else {
                        ("/v1/search?top=3&jobs=1", true)
                    };
                    let (status, body) = request(addr, "POST", target, SCENARIO);
                    assert_eq!(status, 200, "{target}: {body}");
                    if expect_json {
                        serde_json::from_str::<serde_json::Value>(&body)
                            .unwrap_or_else(|e| panic!("{target} returned invalid JSON: {e}"));
                    }
                    if target == "/v1/estimate" {
                        bodies.lock().unwrap().push(body);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }

    // Identical queries answer identically — any worker, any cache warmth.
    let bodies = estimate_bodies.lock().unwrap();
    assert!(bodies.len() > 1);
    assert!(
        bodies.iter().all(|b| b == &bodies[0]),
        "estimate responses diverged under concurrency"
    );

    // Liveness endpoints answer inline even while computing.
    let (status, body) = request(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    let (status, metrics) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let report: serde_json::Value = serde_json::from_str(&metrics).expect("metrics JSON");
    let counters = &report["counters"];
    let n = |key: &str| counters.get(key).and_then(serde_json::Value::as_u64).unwrap_or(0);
    // The shared pool was exercised and its books balance.
    assert_eq!(
        n("serve.cache.lookups"),
        n("serve.cache.hits") + n("serve.cache.misses"),
        "{counters:?}"
    );
    assert_eq!(
        n("search.cache.lookups"),
        n("search.cache.hits") + n("search.cache.misses"),
        "{counters:?}"
    );
    assert!(n("serve.cache.lookups") > 0, "{counters:?}");
    assert!(n("search.cache.lookups") > 0, "{counters:?}");
    // Repeat identical estimates hit the warm pool.
    assert!(n("serve.cache.hits") > 0, "{counters:?}");

    // The per-endpoint latency telemetry balances exactly: for each
    // compute endpoint the whole-request timer histogram, the queue-wait
    // histogram and the handler histogram all saw every request the
    // legacy `.count` counter did — no request gained or lost a sample
    // anywhere in the split, at any worker count.
    let histograms = &report["histograms"];
    let hcount = |name: &str| {
        histograms
            .get(name)
            .and_then(|h| h.get("count"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or_else(|| panic!("histogram `{name}` missing: {histograms:?}"))
    };
    let mut handled = 0;
    for endpoint in ["estimate", "search"] {
        let requests = n(&format!("serve.http.{endpoint}.count"));
        assert!(requests > 0, "{counters:?}");
        assert_eq!(hcount(&format!("serve.http.{endpoint}.us")), requests);
        assert_eq!(hcount(&format!("serve.http.{endpoint}.queue_us")), requests);
        assert_eq!(hcount(&format!("serve.http.{endpoint}.handler_us")), requests);
        handled += requests;
    }
    assert_eq!(handled, (threads * per_thread) as u64);
    // Every handled request also landed in exactly one status class
    // (+1 for the health probe answered above; the metrics response
    // itself is counted only after this report rendered).
    assert_eq!(n("serve.http.status.2xx"), handled + 1, "{counters:?}");

    let summary = server.stop();
    assert_eq!(summary.received, summary.completed + summary.rejected + summary.timeouts);
    assert_eq!(summary.received, (threads * per_thread) as u64);
    assert_eq!(summary.rejected, 0, "queue depth 64 never saturates here");
}

#[test]
fn saturated_queue_engages_backpressure() {
    // One worker, a one-slot queue: a burst must overflow.
    let server = start(1, 1, 30_000);
    let addr = server.addr;

    let mut rejected = 0usize;
    let mut completed = 0usize;
    for _round in 0..20 {
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let rejections = Arc::new(AtomicUsize::new(0));
        let successes = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let rejections = Arc::clone(&rejections);
                let successes = Arc::clone(&successes);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (status, body) =
                        request(addr, "POST", "/v1/search?top=3&jobs=1", SCENARIO);
                    match status {
                        200 => {
                            successes.fetch_add(1, Ordering::SeqCst);
                        }
                        429 => {
                            // The backpressure contract: a JSON error body
                            // and a Retry-After hint.
                            assert!(body.contains("queue full"), "{body}");
                            rejections.fetch_add(1, Ordering::SeqCst);
                        }
                        other => panic!("unexpected status {other}: {body}"),
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client thread");
        }
        rejected += rejections.load(Ordering::SeqCst);
        completed += successes.load(Ordering::SeqCst);
        if rejected > 0 {
            break;
        }
    }
    assert!(rejected > 0, "burst of 8 on a 1-slot queue never overflowed");
    assert!(completed > 0, "saturation must not starve everyone");

    let summary = server.stop();
    assert_eq!(summary.rejected, rejected as u64, "{summary}");
    assert_eq!(summary.received, summary.completed + summary.rejected + summary.timeouts);
}

#[test]
fn malformed_and_unknown_requests_get_typed_errors() {
    let server = start(1, 8, 30_000);
    let addr = server.addr;

    // Unknown path.
    let (status, body) = request(addr, "POST", "/v1/frobnicate", SCENARIO);
    assert_eq!(status, 404, "{body}");

    // Known path, wrong method.
    let (status, body) = request(addr, "GET", "/v1/estimate", "");
    assert_eq!(status, 405, "{body}");

    // Empty body.
    let (status, body) = request(addr, "POST", "/v1/estimate", "");
    assert_eq!(status, 400);
    assert!(body.contains("scenario JSON document"), "{body}");

    // Malformed JSON: the configs-layer message names the problem.
    let (status, body) = request(addr, "POST", "/v1/estimate", "{ not json");
    assert_eq!(status, 400);
    assert!(body.contains("malformed"), "{body}");

    // Unknown section.
    let bad = SCENARIO.replacen("\"model\"", "\"modell\"", 1);
    let (status, body) = request(addr, "POST", "/v1/estimate", &bad);
    assert_eq!(status, 400);
    assert!(body.contains("unknown section `modell`"), "{body}");

    // Bad query parameter.
    let (status, body) = request(addr, "POST", "/v1/search?top=lots", SCENARIO);
    assert_eq!(status, 400);
    assert!(body.contains("query parameter `top`"), "{body}");

    // Bad backend.
    let (status, body) = request(addr, "POST", "/v1/estimate?backend=bogus", SCENARIO);
    assert_eq!(status, 400);
    assert!(body.contains("unknown backend `bogus`"), "{body}");

    // Errors are not compute failures: nothing counts as completed work
    // beyond what actually priced.
    let summary = server.stop();
    assert_eq!(summary.received, summary.completed + summary.rejected + summary.timeouts);
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let server = start(1, 8, 30_000);
    let addr = server.addr;

    let (status, body) = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"), "{body}");

    let summary = server
        .thread
        .join()
        .expect("server thread joins")
        .expect("server run succeeds");
    assert_eq!(summary.received, 0);
}

#[test]
fn tiny_timeout_answers_504_without_wedging() {
    // A deadline the pricing of a search cannot meet: the client gets 504,
    // the server stays healthy and drains cleanly. The scalar path
    // (`no-batch`) and a deep microbatch ladder keep the pricing safely
    // over the 1 ms deadline regardless of how fast the batched fast
    // path gets.
    let server = start(1, 8, 1);
    let addr = server.addr;
    let heavy = SCENARIO.replace("\"global_batch\": 64", "\"global_batch\": 65536");
    let mut saw_timeout = false;
    for _ in 0..10 {
        let (status, _body) = request(addr, "POST", "/v1/search?jobs=1&no-batch=1", &heavy);
        assert!(status == 200 || status == 504, "unexpected status {status}");
        if status == 504 {
            saw_timeout = true;
            break;
        }
    }
    assert!(saw_timeout, "a 1 ms deadline never expired");
    let (status, _) = request(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200, "server must stay live after timeouts");
    let summary = server.stop();
    assert!(summary.timeouts > 0, "{summary}");
    assert_eq!(summary.received, summary.completed + summary.rejected + summary.timeouts);
}
