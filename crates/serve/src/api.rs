//! The query API: pure request → response handlers.
//!
//! Each handler resolves its scenario through the same layered pipeline
//! as the CLI ([`amped_configs::pipeline`]): built-in defaults, then a
//! `?preset=` scenario preset, then the JSON body (the scenario-file
//! layer), then scenario query parameters under the CLI's flag names
//! (`?model=`, `?nodes=`, `?tp=`, ...). The resolved scenario is priced
//! and rendered as the *same* artifact the CLI's `--json` path produces
//! for the equivalent invocation — both front-ends go through
//! [`amped_report::artifacts`], and the CLI's differential test pins the
//! byte-identity (of resolved scenarios, artifacts, and error messages).
//! Execution query parameters keep the CLI's flag names too (`top`,
//! `jobs`, `prune`, `refine-sim`, `memory-filter`, `backend`), and
//! `?resolved=true` returns the provenance-annotated resolved scenario
//! instead of pricing it — the CLI's `--dump-resolved`.
//!
//! Handlers are deliberately free of transport and threading concerns:
//! they take a parsed [`Request`] and return a [`Response`], so they are
//! directly testable and the server's worker pool stays a thin shell.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use amped_configs::pipeline::{FlagReader, FlagSet, Resolution, ScenarioDraft, Source};
use amped_configs::scenario::{FailureDomainsSection, ResilienceSection, ResolvedScenario};
use amped_core::{
    AnalyticalBackend, CachePool, CorrelatedReport, CorrelatedResilience, CostBackend, Error,
    ResilienceReport, Result, DEFAULT_NODE_MTBF_HOURS,
};
use amped_memory::{MemoryModel, OptimizerSpec};
use amped_obs::Observer;
use amped_infer::{AnalyticalInferBackend, InferBackend};
use amped_search::{
    placement_for, DomainGoodput, EnumerationOptions, GoodputOptions, PlacementChoice,
    SearchEngine, ServingSearch, ServingSweepOptions, Sweep,
};
use amped_sim::SimBackend;

use crate::http::{Request, Response};

/// Shared immutable state every request handler sees.
#[derive(Debug)]
pub struct ServiceState {
    /// The process-wide estimate-cache pool: repeated and overlapping
    /// queries over the same scenario context reuse memoized sub-results.
    pub pool: Arc<CachePool>,
    /// The process-wide observer behind `/v1/metrics`. Per-request
    /// observers are folded into it (counters add, gauges max, histogram
    /// buckets add) so the process keeps no unbounded per-request records.
    pub observer: Arc<Observer>,
    /// Requests currently inside the server (parsed and not yet
    /// answered), behind the `serve.http.in_flight` gauge.
    pub in_flight: AtomicU64,
}

impl ServiceState {
    /// Fresh state with an empty pool and observer.
    #[must_use]
    pub fn new() -> Self {
        ServiceState {
            pool: Arc::new(CachePool::new()),
            observer: Arc::new(Observer::new()),
            in_flight: AtomicU64::new(0),
        }
    }
}

impl Default for ServiceState {
    fn default() -> Self {
        Self::new()
    }
}

/// The queued (compute-bearing) endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/estimate`
    Estimate,
    /// `POST /v1/infer`
    Infer,
    /// `POST /v1/search`
    Search,
    /// `POST /v1/sweep`
    Sweep,
    /// `POST /v1/resilience`
    Resilience,
    /// `POST /v1/recommend`
    Recommend,
}

impl Endpoint {
    /// The endpoint for a request path, if it is a compute endpoint.
    #[must_use]
    pub fn from_path(path: &str) -> Option<Endpoint> {
        match path {
            "/v1/estimate" => Some(Endpoint::Estimate),
            "/v1/infer" => Some(Endpoint::Infer),
            "/v1/search" => Some(Endpoint::Search),
            "/v1/sweep" => Some(Endpoint::Sweep),
            "/v1/resilience" => Some(Endpoint::Resilience),
            "/v1/recommend" => Some(Endpoint::Recommend),
            _ => None,
        }
    }

    /// The short name used in metrics series (`serve.http.<name>.*`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Estimate => "estimate",
            Endpoint::Infer => "infer",
            Endpoint::Search => "search",
            Endpoint::Sweep => "sweep",
            Endpoint::Resilience => "resilience",
            Endpoint::Recommend => "recommend",
        }
    }
}

/// Handle one compute request: parse, price, render. Never panics on bad
/// input — every typed error becomes the HTTP status of its kind with the
/// exact message the CLI would print.
pub fn handle(state: &ServiceState, endpoint: Endpoint, req: &Request) -> Response {
    let outcome = match endpoint {
        Endpoint::Estimate => estimate(state, req),
        Endpoint::Infer => infer(state, req),
        Endpoint::Search => search(state, req),
        Endpoint::Sweep => sweep(state, req),
        Endpoint::Resilience => resilience(state, req),
        Endpoint::Recommend => recommend(state, req),
    };
    match outcome {
        Ok(response) => response,
        Err(e) => Response::error(status_for(&e), &e.to_string()),
    }
}

/// The HTTP status for a typed error: bad input is the client's fault
/// (400, mirroring the CLI's exit code 2 for usage errors), I/O is ours.
fn status_for(e: &Error) -> u16 {
    match e {
        Error::Io { .. } => 500,
        _ => 400,
    }
}

/// Scenario query parameters read through the same [`FlagReader`] seam
/// as the CLI's flags, so `?nodes=4` and `--nodes 4` take one code path.
struct QueryReader<'a>(&'a Request);

impl FlagReader for QueryReader<'_> {
    fn value(&self, key: &str) -> Option<String> {
        self.0.query_param(key).map(String::from)
    }

    fn switch(&self, key: &str) -> bool {
        param_switch(self.0, key)
    }
}

/// Resolve this request's scenario through the layered pipeline:
/// built-in defaults < `base` overlay < `?preset=` < JSON body < scenario
/// query parameters. The body is required (it may be `{}` when the
/// scenario comes entirely from presets and parameters) so that an empty
/// POST stays an explicit, early error.
fn resolution(
    req: &Request,
    set: FlagSet,
    base: Option<serde_json::Value>,
) -> Result<Resolution> {
    if req.body.trim().is_empty() {
        return Err(Error::usage(
            "request body must be a scenario JSON document",
        ));
    }
    let mut draft = ScenarioDraft::new();
    if let Some(doc) = base {
        draft.push(Source::Defaults, doc)?;
    }
    if let Some(name) = req.query_param("preset") {
        draft.preset(name)?;
    }
    draft.push_json(Source::File, &req.body)?;
    draft.flags(&QueryReader(req), set)?;
    draft.resolve()
}

/// The `?resolved=true` response: the provenance-annotated resolved
/// scenario instead of a priced artifact (the CLI's `--dump-resolved`).
fn dump_resolved(req: &Request, r: &Resolution) -> Option<Result<Response>> {
    param_switch(req, "resolved").then(|| Ok(Response::json(to_json(&r.dump_value())?)))
}

/// Parse query parameter `key` as `T`, or `default` when absent —
/// `Args::parse_or` for the query string.
fn param_or<T: std::str::FromStr>(req: &Request, key: &str, default: T) -> Result<T> {
    match req.query_param(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| {
            Error::usage(format!("invalid value for query parameter `{key}`: {v}"))
        }),
    }
}

/// Whether boolean query parameter `key` is set (`?prune`, `?prune=true`).
fn param_switch(req: &Request, key: &str) -> bool {
    match req.query_param(key) {
        None => false,
        Some(v) => !matches!(v, "false" | "0"),
    }
}

/// The cost backend selected by the `backend` query parameter
/// (analytical when absent) — the CLI's `--backend`.
fn backend_for(req: &Request) -> Result<Box<dyn CostBackend>> {
    match req.query_param("backend").unwrap_or("analytical") {
        "analytical" => Ok(Box::new(AnalyticalBackend)),
        "sim" => Ok(Box::new(SimBackend::new())),
        other => Err(Error::usage(format!(
            "unknown backend `{other}`; use analytical|sim"
        ))),
    }
}

/// The bytes each device writes per checkpoint: its weight + optimizer
/// shard under this scenario's mapping (the CLI's `per_device_ckpt_bytes`).
fn per_device_ckpt_bytes(s: &ResolvedScenario) -> f64 {
    let ub = s.parallelism.microbatch_size(s.training.global_batch());
    let n_ub = s.parallelism.num_microbatches(s.training.global_batch());
    MemoryModel::new(&s.model, &s.parallelism)
        .with_precision(s.precision)
        .with_optimizer(OptimizerSpec::adam_mixed_precision())
        .footprint(ub, n_ub)
        .checkpoint_bytes()
}

/// The checkpoint/restart expected-time report for a run whose fault-free
/// duration is `fault_free_s`.
fn expected_time_report(
    s: &ResolvedScenario,
    section: &ResilienceSection,
    fault_free_s: f64,
) -> Result<ResilienceReport> {
    section
        .params(s.system.num_nodes(), per_device_ckpt_bytes(s))?
        .report(fault_free_s)
}

/// The parsed `placement` spelling of a `failure_domains` section (the
/// CLI's `placement_choice`, byte-identical error included).
fn placement_choice(fd: &FailureDomainsSection) -> Result<PlacementChoice> {
    PlacementChoice::parse(&fd.placement).ok_or_else(|| {
        Error::usage(format!(
            "unknown layout `{}`; use auto, replica-major or stage-major",
            fd.placement
        ))
    })
}

/// The correlated expected-time report when the scenario carries a
/// `failure_domains` section — the CLI's `correlated_report`, so both
/// front-ends price the same tree, placement and elastic recovery.
fn correlated_report(
    s: &ResolvedScenario,
    section: &ResilienceSection,
    fault_free_s: f64,
) -> Result<Option<CorrelatedReport>> {
    let Some(fd) = &s.failure_domains else {
        return Ok(None);
    };
    let tree = fd.tree(s.system.num_nodes())?;
    let placement = placement_for(&s.parallelism, &s.system, &tree, placement_choice(fd)?);
    let base = section.params(s.system.num_nodes(), per_device_ckpt_bytes(s))?;
    let params = CorrelatedResilience::new(base, tree, placement)?.with_elastic(fd.elastic()?);
    Ok(Some(params.report(fault_free_s)?))
}

/// The `?goodput=` MTBF in hours: the parameter's value when it carries
/// one, the six-month default when it is bare (`?goodput` / `?goodput=true`,
/// the CLI's valueless `--goodput`).
fn goodput_mtbf_hours(req: &Request) -> Result<f64> {
    match req.query_param("goodput") {
        None | Some("") | Some("true") => Ok(DEFAULT_NODE_MTBF_HOURS),
        Some(v) => v.parse().map_err(|_| {
            Error::usage(format!("invalid value for query parameter `goodput`: {v}"))
        }),
    }
}

/// The `?goodput=` expected-time options for search/recommend — the CLI's
/// `goodput_options` over query parameters, including the scenario's
/// `failure_domains` section when one resolved.
fn goodput_options(req: &Request, s: &ResolvedScenario) -> Result<GoodputOptions> {
    let mut opts = GoodputOptions::new(goodput_mtbf_hours(req)? * 3600.0);
    opts.restart_s = param_or(req, "restart", opts.restart_s)?;
    let gbps: f64 = param_or(req, "ckpt-gbps", 16.0)?;
    opts.ckpt_write_bytes_per_s = gbps * 1e9 / 8.0;
    if let Some(v) = req.query_param("ckpt-interval") {
        opts.interval_s = Some(v.parse().map_err(|_| {
            Error::usage(format!("invalid value for query parameter `ckpt-interval`: {v}"))
        })?);
    }
    if let Some(fd) = &s.failure_domains {
        opts = opts.with_failure_domains(DomainGoodput {
            tree: fd.tree(s.system.num_nodes())?,
            elastic: Some(fd.elastic()?),
            placement: placement_choice(fd)?,
        });
    }
    Ok(opts)
}

/// Price the scenario through the selected backend. The analytical path
/// evaluates against a pool lease — bit-identical to a fresh cache (the
/// memoized sub-results are exact), which is what lets the pool make
/// repeat queries cheap without perturbing any response byte.
fn evaluate(state: &ServiceState, req: &Request, s: &ResolvedScenario) -> Result<amped_core::Estimate> {
    let scenario = s.to_scenario();
    match req.query_param("backend").unwrap_or("analytical") {
        "analytical" => {
            let mut lease = state.pool.checkout(scenario.cache_context_key());
            let estimate = AnalyticalBackend.evaluate_with_cache(&mut lease, &scenario, &s.training);
            let (hits, misses) = lease.stats_delta();
            state.observer.add("serve.cache.hits", hits);
            state.observer.add("serve.cache.misses", misses);
            state.observer.add("serve.cache.lookups", hits + misses);
            estimate
        }
        _ => backend_for(req)?.evaluate(&scenario, &s.training),
    }
}

fn estimate(state: &ServiceState, req: &Request) -> Result<Response> {
    let r = resolution(req, FlagSet::with_resilience(), None)?;
    if let Some(dump) = dump_resolved(req, &r) {
        return dump;
    }
    let s = &r.scenario;
    let estimate = evaluate(state, req, s)?;
    // A resilience section in the scenario layers the analytical
    // checkpoint/restart model on top of the fault-free estimate, exactly
    // as the CLI's `estimate` path does.
    let report = match &s.resilience {
        Some(section) => Some(expected_time_report(s, section, estimate.total_time.get())?),
        None => None,
    };
    let value = amped_report::artifacts::estimate_value(&estimate, report.as_ref());
    Ok(Response::json(to_json(&value)?))
}

fn infer(_state: &ServiceState, req: &Request) -> Result<Response> {
    // Same empty-section base as the CLI's `infer` command: the serde
    // defaults apply identically, so the two front-ends price the same
    // request byte for byte.
    let base = serde_json::json!({ "inference": {} });
    let r = resolution(req, FlagSet::with_inference(), Some(base))?;
    if let Some(dump) = dump_resolved(req, &r) {
        return dump;
    }
    let s = &r.scenario;
    let section = s
        .inference
        .ok_or_else(|| Error::usage("infer needs an inference section"))?;
    let config = section.params()?;
    let estimate = AnalyticalInferBackend.evaluate(&s.to_scenario(), &config)?;
    let value = amped_report::artifacts::infer_value(&estimate);
    Ok(Response::json(to_json(&value)?))
}

/// `?workload=infer` on `/v1/search`: the serving-mapping sweep, the
/// CLI's `search --workload infer`.
fn search_infer(state: &ServiceState, req: &Request) -> Result<Response> {
    let base = serde_json::json!({ "inference": {} });
    let r = resolution(req, FlagSet::with_inference(), Some(base))?;
    if let Some(dump) = dump_resolved(req, &r) {
        return dump;
    }
    let s = &r.scenario;
    let section = s
        .inference
        .ok_or_else(|| Error::usage("search --workload infer needs an inference section"))?;
    let request = section.params()?;
    let observer = Arc::new(Observer::new());
    let engine = ServingSearch::new(&s.model, &s.accelerator, &s.system)
        .with_precision(s.precision)
        .with_sweep(ServingSweepOptions {
            max_batch: param_or(req, "max-serve-batch", 64)?,
            ..ServingSweepOptions::default()
        })
        .with_parallelism(param_or(req, "jobs", 0)?)
        .with_pruning(param_switch(req, "prune"))
        .with_observer(Arc::clone(&observer));
    let (results, stats) = engine.search_with_stats(&request)?;
    state.observer.absorb(&observer);
    let top: usize = param_or(req, "top", 10)?;
    let value = amped_report::artifacts::serving_search_value(&results, top, &stats);
    Ok(Response::json(to_json(&value)?))
}

fn resilience(state: &ServiceState, req: &Request) -> Result<Response> {
    // Same default-MTBF overlay as the CLI's resilience command: it sits
    // just above the built-in defaults, so presets, the body, and query
    // parameters all override it through the normal layering.
    let base = serde_json::json!({
        "resilience": { "node_mtbf_hours": DEFAULT_NODE_MTBF_HOURS }
    });
    let r = resolution(req, FlagSet::with_failure_domains(), Some(base))?;
    if let Some(dump) = dump_resolved(req, &r) {
        return dump;
    }
    let s = &r.scenario;
    let estimate = evaluate(state, req, s)?;
    let section = s
        .resilience
        .ok_or_else(|| Error::usage("resilience needs an MTBF"))?;
    // A `failure_domains` section layers correlated rack/pod outages and
    // elastic recovery on the flat model, exactly as the CLI does.
    let correlated = correlated_report(s, &section, estimate.total_time.get())?;
    let report = match &correlated {
        Some(c) => c.flat_report(),
        None => expected_time_report(s, &section, estimate.total_time.get())?,
    };
    let value =
        amped_report::artifacts::resilience_value(&estimate, &report, correlated.as_ref());
    Ok(Response::json(to_json(&value)?))
}

/// The search engine for one request, configured exactly as the CLI's
/// `search` command configures it from flags, plus the shared cache pool
/// and a per-request observer (both passive: rankings are bit-identical
/// with or without them, at any worker count).
fn engine_for<'a>(
    state: &ServiceState,
    req: &Request,
    s: &'a ResolvedScenario,
    observer: &Arc<Observer>,
) -> Result<SearchEngine<'a>> {
    Ok(SearchEngine::new(&s.model, &s.accelerator, &s.system)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .with_engine_options(s.options)
        .with_enumeration(EnumerationOptions::default())
        .with_parallelism(param_or(req, "jobs", 0)?)
        .with_pruning(param_switch(req, "prune"))
        .with_batching(!param_switch(req, "no-batch"))
        .with_memory_filter(param_switch(req, "memory-filter"))
        .with_refine_sim(param_or(req, "refine-sim", 0)?)
        .with_cache_pool(Arc::clone(&state.pool))
        .with_observer(Arc::clone(observer)))
}

fn search(state: &ServiceState, req: &Request) -> Result<Response> {
    // `?workload=infer` switches to the serving-mapping sweep — the
    // CLI's `--workload infer`, byte-identical error message included.
    match req.query_param("workload").unwrap_or("train") {
        "train" => {}
        "infer" => return search_infer(state, req),
        other => {
            return Err(Error::usage(format!(
                "unknown workload `{other}`; use train|infer"
            )))
        }
    }
    // `?goodput[=HOURS]` ranks by expected time under failures — the
    // CLI's `--goodput`. With it on, the failure-domain query parameters
    // are live and a default-MTBF resilience base satisfies the domain
    // section's prerequisite through the normal layering.
    let goodput_on = req.query_param("goodput").is_some();
    let mtbf_hours = goodput_mtbf_hours(req)?;
    let set = FlagSet {
        failure_domains: goodput_on,
        ..FlagSet::default()
    };
    let base = goodput_on.then(|| {
        serde_json::json!({
            "resilience": { "node_mtbf_hours": mtbf_hours }
        })
    });
    let r = resolution(req, set, base)?;
    if let Some(dump) = dump_resolved(req, &r) {
        return dump;
    }
    let s = &r.scenario;
    let observer = Arc::new(Observer::new());
    let mut engine = engine_for(state, req, s, &observer)?;
    if goodput_on {
        engine = engine.with_goodput(goodput_options(req, s)?);
    }
    let (results, stats) = engine.search_with_stats(&s.training)?;
    state.observer.absorb(&observer);
    let top: usize = param_or(req, "top", 10)?;
    let value = amped_report::artifacts::search_value(&results, top, &stats);
    Ok(Response::json(to_json(&value)?))
}

fn recommend(state: &ServiceState, req: &Request) -> Result<Response> {
    // `?goodput[=HOURS]` wires in exactly as on search: the
    // recommendation rides on the same ranking.
    let goodput_on = req.query_param("goodput").is_some();
    let mtbf_hours = goodput_mtbf_hours(req)?;
    let set = FlagSet {
        failure_domains: goodput_on,
        ..FlagSet::default()
    };
    let base = goodput_on.then(|| {
        serde_json::json!({
            "resilience": { "node_mtbf_hours": mtbf_hours }
        })
    });
    let r = resolution(req, set, base)?;
    if let Some(dump) = dump_resolved(req, &r) {
        return dump;
    }
    let s = &r.scenario;
    let observer = Arc::new(Observer::new());
    // `recommend` always filters to memory-feasible mappings (the CLI
    // does the same); `jobs` and `refine-sim` plumb through.
    let mut engine = engine_for(state, req, s, &observer)?.with_memory_filter(true);
    if goodput_on {
        engine = engine.with_goodput(goodput_options(req, s)?);
    }
    let outcome = engine.recommend(&s.training)?;
    state.observer.absorb(&observer);
    match outcome {
        Some(rec) => {
            let value = amped_report::artifacts::recommend_value(&rec);
            Ok(Response::json(to_json(&value)?))
        }
        None => Err(Error::usage(
            "no memory-feasible mapping; shard more (TP/PP), enable recomputation, or use bigger devices",
        )),
    }
}

fn sweep(state: &ServiceState, req: &Request) -> Result<Response> {
    let r = resolution(req, FlagSet::default(), None)?;
    if let Some(dump) = dump_resolved(req, &r) {
        return dump;
    }
    let s = &r.scenario;
    // Compare the canonical inter-node strategies at the scenario's node
    // shape, TP filling the node, across a batch ladder — the CLI's sweep.
    let per_node = s.system.accels_per_node();
    let nodes = s.system.num_nodes();
    let mut mappings: Vec<(String, amped_core::Parallelism)> = Vec::new();
    let dp = amped_core::Parallelism::builder()
        .tp(per_node, 1)
        .dp(1, nodes)
        .build()?;
    mappings.push(("dp-inter".into(), dp));
    if nodes > 1 {
        let pp_x = nodes.min(s.model.num_layers());
        if nodes % pp_x == 0 {
            let pp = amped_core::Parallelism::builder()
                .tp(per_node, 1)
                .pp(1, pp_x)
                .dp(1, nodes / pp_x)
                .build()?;
            mappings.push(("pp-inter".into(), pp));
        }
        if s.model.num_heads() >= 2 * per_node && nodes % 2 == 0 {
            let tp = amped_core::Parallelism::builder()
                .tp(per_node, 2)
                .dp(1, nodes / 2)
                .build()?;
            mappings.push(("tp-inter2".into(), tp));
        }
    }
    let base = s.training.global_batch();
    let batches: Vec<usize> = [1usize, 2, 4].iter().map(|m| base * m).collect();
    let observer = Arc::new(Observer::new());
    let engine = SearchEngine::new(&s.model, &s.accelerator, &s.system)
        .with_precision(s.precision)
        .with_efficiency(s.efficiency.clone())
        .with_engine_options(s.options)
        .with_parallelism(param_or(req, "jobs", 0)?)
        .with_cache_pool(Arc::clone(&state.pool))
        .with_observer(Arc::clone(&observer));
    let sweep = match req.query_param("backend") {
        None => Sweep::run(&engine, &mappings, &batches, s.training.num_batches()),
        Some(_) => {
            let backend = backend_for(req)?;
            Sweep::run_backend(
                &engine,
                backend.as_ref(),
                &mappings,
                &batches,
                s.training.num_batches(),
            )
        }
    }?;
    state.observer.absorb(&observer);
    // `?json=true` returns the versioned sweep artifact — the CLI's
    // `sweep --json`; the default stays the historical CSV text.
    if param_switch(req, "json") {
        let value = amped_report::artifacts::sweep_value(&sweep);
        return Ok(Response::json(to_json(&value)?));
    }
    Ok(Response::text(amped_report::artifacts::sweep_text(&sweep)))
}

/// Pretty-print a serializable value (the CLI's `to_json`).
fn to_json<T: serde::Serialize>(value: &T) -> Result<String> {
    serde_json::to_string_pretty(value).map_err(|e| Error::invalid("json", e.to_string()))
}
