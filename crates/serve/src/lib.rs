//! # amped-serve — a concurrent query service for AMPeD
//!
//! A long-lived HTTP/1.1 daemon, hand-rolled on `std::net` (no external
//! dependencies), that answers the same questions as the `amped` CLI but
//! keeps the process — and its warm [`amped_core::CachePool`] — alive
//! across requests:
//!
//! | Endpoint            | Method | Body              | Answer |
//! |---------------------|--------|-------------------|--------|
//! | `/v1/estimate`      | POST   | scenario JSON     | the CLI's `estimate --json` artifact |
//! | `/v1/infer`         | POST   | scenario JSON     | the CLI's `infer --json` serving estimate |
//! | `/v1/search`        | POST   | scenario JSON     | the CLI's `search --json` rows (`?workload=infer` for serving) |
//! | `/v1/recommend`     | POST   | scenario JSON     | the CLI's `recommend --json` artifact |
//! | `/v1/sweep`         | POST   | scenario JSON     | the CLI's `sweep` CSV + winners |
//! | `/v1/resilience`    | POST   | scenario JSON     | the CLI's `resilience --json` report |
//! | `/v1/health`        | GET    | —                 | `{"status": "ok"}` |
//! | `/v1/metrics`       | GET    | —                 | the `amped-obs` run report |
//! | `/v1/shutdown`      | POST   | —                 | graceful shutdown |
//!
//! Query parameters mirror the CLI flags (`?top=5&jobs=4&prune=true`,
//! `?backend=sim`, `?refine-sim=3`, ...).
//!
//! **Determinism contract:** a compute response body is byte-identical to
//! the stdout of the equivalent CLI invocation (minus the trailing
//! newline), at any worker count and regardless of cache warmth. Both
//! front ends parse scenarios with `amped-configs` and render through
//! `amped_report::artifacts`, and the shared cache pool only memoizes
//! bit-identical results.
//!
//! Concurrency is bounded end to end: a fixed worker pool prices requests
//! from a bounded queue, a full queue refuses new work with
//! `429 Too Many Requests` + `Retry-After`, and every job carries a
//! deadline (`504` past it). See [`server`] for the threading model.
//!
//! ```no_run
//! use amped_serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeConfig::default()
//! })?;
//! println!("listening on {}", server.local_addr()?);
//! let summary = server.run()?; // blocks until shutdown
//! println!("{summary}");
//! # Ok::<(), amped_core::Error>(())
//! ```

#![deny(unsafe_code)] // one audited `signal(2)` registration in `server::signal`
#![warn(missing_docs)]

pub mod access;
pub mod api;
pub mod http;
pub mod loadtest;
pub mod server;

pub use access::{AccessEntry, AccessLog};
pub use api::{Endpoint, ServiceState};
pub use http::{Request, Response};
pub use loadtest::{LoadTestConfig, LoadTestReport};
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
