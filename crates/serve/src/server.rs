//! The daemon: accept loop, bounded job queue, worker pool, shutdown.
//!
//! # Threading model
//!
//! One nonblocking accept loop polls for connections and a shutdown
//! signal. Each accepted connection gets a short-lived connection thread
//! that parses the request and either answers it inline (health, metrics,
//! shutdown — these must respond even under full load) or enqueues a job
//! on the bounded queue and waits on the job's result slot. A fixed pool
//! of worker threads drains the queue and runs the actual pricing. This
//! split keeps slow model evaluations from ever blocking liveness probes,
//! and makes backpressure a queue property instead of a thread-count one.
//!
//! # Backpressure contract
//!
//! The queue holds at most `queue_depth` jobs. A request arriving at a
//! full queue is refused immediately with `429 Too Many Requests` and a
//! `Retry-After` header — never buffered unboundedly, never silently
//! dropped. A job that waits longer than `timeout_ms` from enqueue is
//! answered `504 Gateway Timeout`; if it is still queued when its deadline
//! passes, workers skip pricing it entirely.
//!
//! # Shutdown
//!
//! SIGINT/SIGTERM (when enabled), `POST /v1/shutdown`, or
//! [`ServerHandle::shutdown`] set one flag. The accept loop stops taking
//! connections, the queue closes (drain semantics: queued jobs still
//! run), workers finish and exit, and [`Server::run`] returns a
//! [`ServeSummary`] of the session.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use amped_core::{Error, Result};
use amped_obs::Observer;

use crate::access::{AccessEntry, AccessLog};
use crate::api::{self, Endpoint, ServiceState};
use crate::http::{self, Request, Response};

/// How long the accept loop sleeps when no connection is pending — the
/// upper bound on shutdown-signal latency.
const ACCEPT_POLL: Duration = Duration::from_millis(15);

/// Read/write timeouts on accepted connections, so a stalled peer can
/// never wedge a connection thread across shutdown.
const STREAM_TIMEOUT: Duration = Duration::from_secs(10);

/// Server configuration (the CLI's `serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8750` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads pricing requests (0 = one per available CPU).
    pub jobs: usize,
    /// Bounded queue depth; requests beyond it are refused with 429.
    pub queue_depth: usize,
    /// Per-request deadline measured from enqueue, milliseconds.
    pub timeout_ms: u64,
    /// Install a SIGINT/SIGTERM handler for graceful shutdown. The CLI
    /// sets this; in-process tests leave it off and use
    /// [`ServerHandle::shutdown`] instead.
    pub handle_sigint: bool,
    /// Append a structured JSON access log line per answered request to
    /// this file (the CLI's `--access-log <path>`).
    pub access_log: Option<String>,
    /// Mirror access log lines to stderr (the CLI's `serve -v`).
    pub verbose: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8750".to_string(),
            jobs: 0,
            queue_depth: 64,
            timeout_ms: 30_000,
            handle_sigint: false,
            access_log: None,
            verbose: false,
        }
    }
}

/// What one server session did, reported when [`Server::run`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Compute requests received (excludes health/metrics).
    pub received: u64,
    /// Requests priced and answered.
    pub completed: u64,
    /// Requests refused by backpressure (429).
    pub rejected: u64,
    /// Requests that hit their deadline (504).
    pub timeouts: u64,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} request(s): {} completed, {} rejected, {} timed out",
            self.received, self.completed, self.rejected, self.timeouts
        )
    }
}

/// A remote control for a running server (cloneable, thread-safe).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Ask the server to shut down gracefully (idempotent).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// One queued compute request.
struct Job {
    endpoint: Endpoint,
    request: Request,
    slot: Arc<ResultSlot>,
    enqueued: Instant,
    deadline: Instant,
    timing: Arc<JobTiming>,
}

/// Per-job telemetry the worker writes and the connection thread reads
/// back for the access log: queue-wait and handler microseconds.
#[derive(Debug, Default)]
struct JobTiming {
    queue_us: AtomicU64,
    handler_us: AtomicU64,
}

/// The rendezvous between a connection thread and the worker pricing its
/// job.
struct ResultSlot {
    cell: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ResultSlot {
    fn new() -> Self {
        ResultSlot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, response: Response) {
        *self.cell.lock().expect("result slot poisoned") = Some(response);
        self.ready.notify_all();
    }

    /// Wait until the response arrives or `deadline` passes.
    fn wait_until(&self, deadline: Instant) -> Option<Response> {
        let mut cell = self.cell.lock().expect("result slot poisoned");
        loop {
            if let Some(response) = cell.take() {
                return Some(response);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self
                .ready
                .wait_timeout(cell, deadline - now)
                .expect("result slot poisoned");
            cell = next;
            if timed_out.timed_out() && cell.is_none() {
                return None;
            }
        }
    }
}

/// The bounded, closable job queue.
struct JobQueue {
    inner: Mutex<QueueInner>,
    available: Condvar,
    capacity: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a job, returning the new depth; `None` when the queue is
    /// full or closed (the backpressure path).
    fn push(&self, job: Job) -> Option<usize> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        if inner.closed || inner.jobs.len() >= self.capacity {
            return None;
        }
        inner.jobs.push_back(job);
        let depth = inner.jobs.len();
        drop(inner);
        self.available.notify_one();
        Some(depth)
    }

    /// Dequeue the next job, blocking; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .expect("job queue poisoned");
        }
    }

    /// Refuse new jobs; queued ones still drain (graceful shutdown).
    fn close(&self) {
        self.inner.lock().expect("job queue poisoned").closed = true;
        self.available.notify_all();
    }
}

/// SIGINT/SIGTERM handling in pure std: a C `signal` registration that
/// flips a process-global flag the accept loop polls. Confined here so the
/// rest of the crate stays free of unsafe code.
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    #[allow(unsafe_code)]
    pub fn install() {
        extern "C" fn on_signal(_sig: i32) {
            TRIGGERED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: registering an async-signal-safe handler (one relaxed
        // atomic store) for SIGINT/SIGTERM; `signal` is in libc, which std
        // already links.
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}

    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

/// The HTTP daemon. Bind, then [`Server::run`] until shutdown.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    state: Arc<ServiceState>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener (without accepting yet).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the address cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::io(&config.addr, e.to_string()))?;
        Ok(Server {
            listener,
            config,
            state: Arc::new(ServiceState::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the socket has no local address.
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| Error::io(&self.config.addr, e.to_string()))
    }

    /// The shared service state (pool + observer), for tests and metrics.
    #[must_use]
    pub fn state(&self) -> Arc<ServiceState> {
        Arc::clone(&self.state)
    }

    /// A handle that can shut the server down from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Serve until shutdown (signal, `POST /v1/shutdown`, or
    /// [`ServerHandle::shutdown`]), then drain and summarize.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the listener cannot be polled.
    pub fn run(self) -> Result<ServeSummary> {
        if self.config.handle_sigint {
            signal::install();
        }
        let workers = if self.config.jobs == 0 {
            std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
        } else {
            self.config.jobs
        };
        let queue = Arc::new(JobQueue::new(self.config.queue_depth));
        let timeout = Duration::from_millis(self.config.timeout_ms.max(1));
        let access = Arc::new(AccessLog::from_config(
            self.config.access_log.as_deref(),
            self.config.verbose,
        )?);

        self.listener
            .set_nonblocking(true)
            .map_err(|e| Error::io(&self.config.addr, e.to_string()))?;

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let state = Arc::clone(&self.state);
            worker_handles.push(std::thread::spawn(move || worker_loop(&queue, &state)));
        }

        let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) || signal::triggered() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let queue = Arc::clone(&queue);
                    let shutdown = Arc::clone(&self.shutdown);
                    let access = Arc::clone(&access);
                    conn_handles.push(std::thread::spawn(move || {
                        handle_connection(
                            stream,
                            &state,
                            &queue,
                            &shutdown,
                            timeout,
                            access.as_ref().as_ref(),
                        );
                    }));
                    conn_handles.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(Error::io(&self.config.addr, e.to_string())),
            }
        }

        // Graceful drain: no new jobs, queued ones finish, then workers
        // exit and every waiting connection gets its answer.
        queue.close();
        for handle in conn_handles {
            let _ = handle.join();
        }
        for handle in worker_handles {
            let _ = handle.join();
        }

        let counters = self.state.observer.counters();
        let count = |name: &str| counters.get(name).copied().unwrap_or(0);
        Ok(ServeSummary {
            received: count("serve.requests.received"),
            completed: count("serve.requests.completed"),
            rejected: count("serve.requests.rejected"),
            timeouts: count("serve.requests.timeout"),
        })
    }
}

/// Worker: drain the queue, price jobs, fulfill slots. A panicking
/// handler answers 500 instead of taking the worker down. Queue-wait and
/// handler time are recorded per endpoint into the split latency
/// histograms (`serve.http.{name}.queue_us` / `.handler_us`) and stored
/// on the job for the access log.
fn worker_loop(queue: &JobQueue, state: &ServiceState) {
    while let Some(job) = queue.pop() {
        if Instant::now() >= job.deadline {
            // The connection thread has already answered 504; don't burn
            // worker time pricing a response nobody will read.
            state.observer.add("serve.requests.expired_in_queue", 1);
            job.slot.fulfill(Response::error(504, "request timed out in queue"));
            continue;
        }
        let obs = &state.observer;
        let queue_us = job.enqueued.elapsed().as_micros() as u64;
        job.timing.queue_us.store(queue_us, Ordering::Relaxed);
        obs.observe(
            &format!("serve.http.{}.queue_us", job.endpoint.name()),
            queue_us,
        );
        let handler_start = Instant::now();
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            api::handle(state, job.endpoint, &job.request)
        }))
        .unwrap_or_else(|_| Response::error(500, "internal error: request handler panicked"));
        let handler_us = handler_start.elapsed().as_micros() as u64;
        job.timing.handler_us.store(handler_us, Ordering::Relaxed);
        obs.observe(
            &format!("serve.http.{}.handler_us", job.endpoint.name()),
            handler_us,
        );
        job.slot.fulfill(response);
    }
}

/// Decrements the in-flight count when a connection thread finishes,
/// whatever exit path it takes.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Bump the status-class counters (`serve.http.status.{2xx,3xx,4xx,5xx}`)
/// plus the individually-tracked backpressure (429) and deadline (504)
/// statuses for one written response.
fn count_status(obs: &Observer, status: u16) {
    let class = match status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    };
    obs.add(&format!("serve.http.status.{class}"), 1);
    if status == 429 {
        obs.add("serve.http.status.429", 1);
    }
    if status == 504 {
        obs.add("serve.http.status.504", 1);
    }
}

/// Connection thread: parse one request, route it, write one response,
/// then account for it (status class counters, in-flight gauge, access
/// log). All accounting is passive — response bytes never depend on it.
fn handle_connection(
    mut stream: TcpStream,
    state: &ServiceState,
    queue: &JobQueue,
    shutdown: &AtomicBool,
    timeout: Duration,
    access: Option<&AccessLog>,
) {
    let _ = stream.set_read_timeout(Some(STREAM_TIMEOUT));
    let _ = stream.set_write_timeout(Some(STREAM_TIMEOUT));
    let in_flight = state.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
    let _guard = InFlightGuard(&state.in_flight);
    state
        .observer
        .gauge_max("serve.http.in_flight.max", in_flight as f64);
    let request = match http::read_request(&mut stream) {
        Ok(Ok(request)) => request,
        Ok(Err(error_response)) => {
            // Malformed request: no endpoint to attribute, but the status
            // classes still count it.
            count_status(&state.observer, error_response.status);
            let _ = http::write_response(&mut stream, &error_response);
            return;
        }
        // Transport failure: nobody left to answer.
        Err(_) => return,
    };
    let routed = route(state, queue, shutdown, timeout, &request);
    count_status(&state.observer, routed.response.status);
    let _ = http::write_response(&mut stream, &routed.response);
    if let Some(log) = access {
        log.log(&AccessEntry {
            method: &request.method,
            endpoint: &request.path,
            status: routed.response.status,
            bytes: routed.response.body.len(),
            queue_us: routed.queue_us,
            handler_us: routed.handler_us,
        });
    }
}

/// A routed response plus the telemetry the access log reports for it.
struct Routed {
    response: Response,
    /// Microseconds waited in the bounded queue (0 for inline endpoints
    /// and refused requests).
    queue_us: u64,
    /// Microseconds the handler ran (inline handlers measured directly,
    /// queued ones reported back by the worker).
    handler_us: u64,
}

impl Routed {
    /// An inline answer: no queue wait, handler time measured from `start`.
    fn inline(response: Response, start: Instant) -> Routed {
        Routed {
            response,
            queue_us: 0,
            handler_us: start.elapsed().as_micros() as u64,
        }
    }
}

/// Route one parsed request. Health, metrics and shutdown answer inline —
/// they must work even when the queue is saturated; compute endpoints go
/// through the bounded queue.
fn route(
    state: &ServiceState,
    queue: &JobQueue,
    shutdown: &AtomicBool,
    timeout: Duration,
    request: &Request,
) -> Routed {
    let start = Instant::now();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/health") => {
            let _timer = state.observer.timer("serve.http.health");
            Routed::inline(
                Response::json(
                    serde_json::to_string_pretty(&serde_json::json!({ "status": "ok" }))
                        .expect("health body serializes"),
                ),
                start,
            )
        }
        ("GET", "/v1/schema") => {
            let _timer = state.observer.timer("serve.http.schema");
            // The self-describing scenario schema, from the same single
            // source of truth the CLI's `schema` command prints.
            Routed::inline(
                Response::json(
                    serde_json::to_string_pretty(&amped_configs::schema::schema_value())
                        .expect("schema body serializes"),
                ),
                start,
            )
        }
        ("GET", "/v1/metrics") => {
            let _timer = state.observer.timer("serve.http.metrics");
            // Snapshot pool-wide cache state and the in-flight count into
            // gauges so the report carries them alongside the counters.
            let pool = &state.pool;
            let obs = &state.observer;
            obs.gauge_set("serve.cache.pool.contexts", pool.contexts() as f64);
            obs.gauge_set("serve.cache.pool.shelved", pool.shelved() as f64);
            obs.gauge_set("serve.cache.pool.checkouts", pool.checkouts() as f64);
            obs.gauge_set(
                "serve.cache.pool.warm_checkouts",
                pool.warm_checkouts() as f64,
            );
            obs.gauge_set(
                "serve.http.in_flight",
                state.in_flight.load(Ordering::Relaxed) as f64,
            );
            // `?format=prometheus` renders the same registries as text
            // exposition format; the JSON run report stays the default.
            let response = if request.query_param("format") == Some("prometheus") {
                Response::text(amped_obs::prometheus_exposition(obs))
            } else {
                Response::json(obs.report("serve").to_json())
            };
            Routed::inline(response, start)
        }
        ("POST", "/v1/shutdown") => {
            shutdown.store(true, Ordering::SeqCst);
            Routed::inline(
                Response::json(
                    serde_json::to_string_pretty(
                        &serde_json::json!({ "status": "shutting down" }),
                    )
                    .expect("shutdown body serializes"),
                ),
                start,
            )
        }
        (method, path) => match Endpoint::from_path(path) {
            None => Routed::inline(
                Response::error(404, &format!("unknown path `{path}`")),
                start,
            ),
            Some(_) if method != "POST" => Routed::inline(
                Response::error(405, &format!("{path} requires POST")),
                start,
            ),
            Some(endpoint) => dispatch_job(state, queue, timeout, endpoint, request),
        },
    }
}

/// Enqueue a compute request and wait for its answer (or its deadline).
fn dispatch_job(
    state: &ServiceState,
    queue: &JobQueue,
    timeout: Duration,
    endpoint: Endpoint,
    request: &Request,
) -> Routed {
    let obs = &state.observer;
    let _timer = obs.timer(&format!("serve.http.{}", endpoint.name()));
    obs.add("serve.requests.received", 1);
    let slot = Arc::new(ResultSlot::new());
    let enqueued = Instant::now();
    let deadline = enqueued + timeout;
    let timing = Arc::new(JobTiming::default());
    let job = Job {
        endpoint,
        request: request.clone(),
        slot: Arc::clone(&slot),
        enqueued,
        deadline,
        timing: Arc::clone(&timing),
    };
    match queue.push(job) {
        None => {
            obs.add("serve.requests.rejected", 1);
            let mut response =
                Response::error(429, "queue full; retry shortly or lower request rate");
            response.retry_after = Some(1);
            Routed {
                response,
                queue_us: 0,
                handler_us: 0,
            }
        }
        Some(depth) => {
            obs.gauge_max("serve.queue.depth.max", depth as f64);
            // Exactly one of completed/rejected/timeout per request, all
            // counted here, so `received` always balances against them.
            let response = match slot.wait_until(deadline) {
                Some(response) => {
                    obs.add("serve.requests.completed", 1);
                    response
                }
                None => {
                    obs.add("serve.requests.timeout", 1);
                    Response::error(504, "request deadline exceeded")
                }
            };
            Routed {
                response,
                queue_us: timing.queue_us.load(Ordering::Relaxed),
                handler_us: timing.handler_us.load(Ordering::Relaxed),
            }
        }
    }
}
