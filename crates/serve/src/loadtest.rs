//! The load-test driver behind `amped loadtest` and the `bench_serve`
//! benchmark binary: replay N concurrent clients of mixed traffic against
//! a live server and measure what the service actually delivers.
//!
//! Each client cycles through the compute endpoints (estimate, search,
//! sweep, resilience — offset per client so the mix is concurrent, not
//! phased), timing every request wall-to-wall on the client side into the
//! same lock-free [`amped_obs::Histogram`] the server uses internally.
//! The report carries per-endpoint latency quantiles, overall request
//! rate, error and backpressure (429) rates, and the server's cache hit
//! rate computed from `serve.cache.*` counter deltas between two
//! `/v1/metrics` snapshots — so a warm pool shows up as a measured
//! number, not an assumption. Rendered to `BENCH_serve.json` with
//! `schema_version` stamped first, like every versioned artifact.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use amped_core::{Error, Result};
use amped_obs::{HistogramSummary, Observer};

/// The fixed endpoint mix each client cycles through.
const MIX: [(&str, &str); 4] = [
    ("estimate", "/v1/estimate"),
    ("search", "/v1/search?top=3"),
    ("sweep", "/v1/sweep"),
    ("resilience", "/v1/resilience"),
];

/// Load-test shape: where to aim and how hard to push.
#[derive(Debug, Clone)]
pub struct LoadTestConfig {
    /// Target server address, e.g. `127.0.0.1:8750`.
    pub addr: String,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client sends.
    pub requests_per_client: usize,
    /// Scenario preset every request carries (`?preset=`).
    pub preset: String,
    /// Scenario JSON body every request posts (`{}` = preset only).
    pub body: String,
}

impl Default for LoadTestConfig {
    fn default() -> Self {
        LoadTestConfig {
            addr: "127.0.0.1:8750".to_string(),
            clients: 4,
            requests_per_client: 8,
            preset: "dev-small".to_string(),
            body: "{}".to_string(),
        }
    }
}

/// What one load-test run measured.
#[derive(Debug, Clone)]
pub struct LoadTestReport {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client sent.
    pub requests_per_client: usize,
    /// Total requests attempted.
    pub requests: u64,
    /// Wall-clock duration of the request phase, seconds.
    pub duration_s: f64,
    /// Requests per second over the run.
    pub req_per_sec: f64,
    /// Responses per status class (`2xx`, `4xx`, ...) plus exact `429`
    /// and `504` counts and `transport` failures.
    pub status: BTreeMap<String, u64>,
    /// Fraction of requests that failed: any `4xx`/`5xx` other than
    /// backpressure `429`, plus transport failures.
    pub error_rate: f64,
    /// Fraction of requests refused by backpressure (`429`).
    pub rejected_429_rate: f64,
    /// Server-side `serve.cache.hits` delta over the run.
    pub cache_hits: u64,
    /// Server-side `serve.cache.lookups` delta over the run.
    pub cache_lookups: u64,
    /// `cache_hits / cache_lookups` (0 when no lookups happened).
    pub cache_hit_rate: f64,
    /// Client-observed latency summary per endpoint, microseconds —
    /// the same shape as a run report's `histograms` section.
    pub endpoints: BTreeMap<String, HistogramSummary>,
}

/// Run the load test against a live server.
///
/// # Errors
///
/// Returns [`Error::Io`] when the server cannot be reached for the
/// initial metrics snapshot, and [`Error::Usage`] for a zero-sized run.
pub fn run(config: &LoadTestConfig) -> Result<LoadTestReport> {
    if config.clients == 0 || config.requests_per_client == 0 {
        return Err(Error::usage(
            "loadtest needs at least one client and one request per client",
        ));
    }
    let before = cache_counters(&config.addr)?;
    let stats = Arc::new(Observer::new());

    let started = Instant::now();
    let mut handles = Vec::with_capacity(config.clients);
    for client in 0..config.clients {
        let stats = Arc::clone(&stats);
        let config = config.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..config.requests_per_client {
                // Offset the cycle per client so every endpoint sees
                // concurrent traffic from the first tick.
                let (name, target) = MIX[(client + i) % MIX.len()];
                let sep = if target.contains('?') { '&' } else { '?' };
                let target = format!("{target}{sep}preset={}", config.preset);
                let t0 = Instant::now();
                match http_request(&config.addr, "POST", &target, &config.body) {
                    Ok((status, _body)) => {
                        let us = t0.elapsed().as_micros() as u64;
                        stats.observe(name, us);
                        count_status(&stats, status);
                    }
                    Err(_) => stats.add("status.transport", 1),
                }
            }
        }));
    }
    for handle in handles {
        let _ = handle.join();
    }
    let duration_s = started.elapsed().as_secs_f64();

    let after = cache_counters(&config.addr)?;
    let counters = stats.counters();
    let count = |name: &str| counters.get(name).copied().unwrap_or(0);
    let requests = (config.clients * config.requests_per_client) as u64;
    let errors =
        count("status.4xx") - count("status.429") + count("status.5xx") + count("status.transport");
    let cache_hits = after.0.saturating_sub(before.0);
    let cache_lookups = after.1.saturating_sub(before.1);

    let mut status = BTreeMap::new();
    for (name, value) in &counters {
        if let Some(class) = name.strip_prefix("status.") {
            status.insert(class.to_string(), *value);
        }
    }

    Ok(LoadTestReport {
        clients: config.clients,
        requests_per_client: config.requests_per_client,
        requests,
        duration_s,
        req_per_sec: requests as f64 / duration_s.max(1e-9),
        status,
        error_rate: errors as f64 / requests as f64,
        rejected_429_rate: count("status.429") as f64 / requests as f64,
        cache_hits,
        cache_lookups,
        cache_hit_rate: if cache_lookups > 0 {
            cache_hits as f64 / cache_lookups as f64
        } else {
            0.0
        },
        endpoints: stats.histograms(),
    })
}

impl LoadTestReport {
    /// The versioned `BENCH_serve.json` document, `schema_version` first.
    /// The `endpoints` section uses the run-report histogram-summary
    /// shape, so `amped_report::histogram_table` renders it directly.
    #[must_use]
    pub fn to_value(&self) -> serde_json::Value {
        let endpoints = serde_json::Value::Object(
            self.endpoints
                .iter()
                .map(|(name, h)| (name.clone(), summary_value(h)))
                .collect(),
        );
        let status = serde_json::Value::Object(
            self.status
                .iter()
                .map(|(class, n)| (class.clone(), serde_json::Value::Int(*n as i64)))
                .collect(),
        );
        serde_json::json!({
            "schema_version": amped_configs::schema::SCHEMA_VERSION,
            "benchmark": "serve.loadtest",
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "requests": self.requests,
            "duration_s": self.duration_s,
            "req_per_sec": self.req_per_sec,
            "error_rate": self.error_rate,
            "rejected_429_rate": self.rejected_429_rate,
            "status": status,
            "cache": {
                "hits": self.cache_hits,
                "lookups": self.cache_lookups,
                "hit_rate": self.cache_hit_rate,
            },
            "endpoints": endpoints,
        })
    }
}

/// One histogram summary in the run-report JSON shape.
fn summary_value(h: &HistogramSummary) -> serde_json::Value {
    serde_json::json!({
        "count": h.count,
        "sum": h.sum,
        "min": h.min,
        "max": h.max,
        "p50": h.p50,
        "p90": h.p90,
        "p99": h.p99,
        "p999": h.p999,
    })
}

/// Bump per-class (and exact 429/504) status counters on the client-side
/// stats observer — the mirror of the server's own accounting.
fn count_status(stats: &Observer, status: u16) {
    let class = match status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    };
    stats.add(&format!("status.{class}"), 1);
    if status == 429 {
        stats.add("status.429", 1);
    }
    if status == 504 {
        stats.add("status.504", 1);
    }
}

/// The server's `(serve.cache.hits, serve.cache.lookups)` counters right
/// now, via `GET /v1/metrics` (absent counters read as 0).
fn cache_counters(addr: &str) -> Result<(u64, u64)> {
    let (status, body) = http_request(addr, "GET", "/v1/metrics", "")?;
    if status != 200 {
        return Err(Error::io(
            addr,
            format!("metrics snapshot failed with status {status}"),
        ));
    }
    let doc: serde_json::Value = serde_json::from_str(&body)
        .map_err(|e| Error::io(addr, format!("metrics snapshot is not JSON: {e}")))?;
    let counter = |name: &str| {
        doc.get("counters")
            .and_then(|c| c.get(name))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
    };
    Ok((counter("serve.cache.hits"), counter("serve.cache.lookups")))
}

/// A minimal one-shot HTTP/1.1 client over `std::net` (the server speaks
/// `Connection: close`, so reading to EOF frames the response).
fn http_request(addr: &str, method: &str, target: &str, body: &str) -> Result<(u16, String)> {
    let io_err = |e: std::io::Error| Error::io(addr, e.to_string());
    let mut stream = TcpStream::connect(addr).map_err(io_err)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(io_err)?;
    let request = format!(
        "{method} {target} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).map_err(io_err)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response).map_err(io_err)?;
    let text = String::from_utf8_lossy(&response);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| Error::io(addr, "malformed response status line"))?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sized_runs_are_rejected() {
        let config = LoadTestConfig {
            clients: 0,
            ..LoadTestConfig::default()
        };
        assert!(run(&config).is_err());
    }

    #[test]
    fn report_value_leads_with_schema_version() {
        let report = LoadTestReport {
            clients: 2,
            requests_per_client: 4,
            requests: 8,
            duration_s: 0.5,
            req_per_sec: 16.0,
            status: BTreeMap::from([("2xx".to_string(), 8)]),
            error_rate: 0.0,
            rejected_429_rate: 0.0,
            cache_hits: 6,
            cache_lookups: 8,
            cache_hit_rate: 0.75,
            endpoints: BTreeMap::from([(
                "estimate".to_string(),
                HistogramSummary {
                    count: 2,
                    sum: 30,
                    min: 10,
                    max: 20,
                    p50: 10.0,
                    p90: 20.0,
                    p99: 20.0,
                    p999: 20.0,
                },
            )]),
        };
        let value = report.to_value();
        let entries = value.as_object().expect("object");
        assert_eq!(entries[0].0, "schema_version");
        let text = serde_json::to_string_pretty(&value).unwrap();
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(doc["endpoints"]["estimate"]["count"], 2);
        assert_eq!(doc["cache"]["hit_rate"].as_f64(), Some(0.75));
        assert_eq!(doc["req_per_sec"].as_f64(), Some(16.0));
    }
}
