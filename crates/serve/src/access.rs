//! The structured JSON access log: one line per answered request.
//!
//! Behind the CLI's `serve --access-log <path>` (append to a file) and/or
//! `-v` (mirror to stderr). Each line is a self-contained JSON object —
//! endpoint, method, status, response bytes, queue-wait µs, handler µs —
//! so the log tails cleanly into `jq` and line-oriented collectors.
//! Logging is strictly passive: it happens after the response bytes are
//! already on the wire and never changes what any endpoint computes.

use std::fs::OpenOptions;
use std::io::Write;
use std::sync::Mutex;

use amped_core::{Error, Result};
use amped_obs::escape_json;

/// One answered request, as the access log records it.
#[derive(Debug, Clone)]
pub struct AccessEntry<'a> {
    /// HTTP method as received.
    pub method: &'a str,
    /// Request path (the endpoint; query string already stripped).
    pub endpoint: &'a str,
    /// Response status code.
    pub status: u16,
    /// Response body length in bytes.
    pub bytes: usize,
    /// Microseconds the request waited in the bounded queue (0 for
    /// inline endpoints and refused requests).
    pub queue_us: u64,
    /// Microseconds the handler spent pricing the request (0 when no
    /// handler ran).
    pub handler_us: u64,
}

impl AccessEntry<'_> {
    /// The JSON line for this entry (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"endpoint\":\"{}\",\"method\":\"{}\",\"status\":{},\"bytes\":{},\
             \"queue_us\":{},\"handler_us\":{}}}",
            escape_json(self.endpoint),
            escape_json(self.method),
            self.status,
            self.bytes,
            self.queue_us,
            self.handler_us
        )
    }
}

/// Where access lines go: an append-only file, stderr, or both. Writes
/// take a mutex so concurrent connection threads never interleave lines.
#[derive(Debug)]
pub struct AccessLog {
    file: Option<Mutex<std::fs::File>>,
    stderr: bool,
}

impl AccessLog {
    /// Build the log for a server's configuration: `path` appends to a
    /// file (created if missing), `stderr` mirrors every line to stderr.
    /// `None` when neither destination is enabled.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the log file cannot be opened.
    pub fn from_config(path: Option<&str>, stderr: bool) -> Result<Option<AccessLog>> {
        let file = match path {
            None => None,
            Some(p) => Some(Mutex::new(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(p)
                    .map_err(|e| Error::io(p, e.to_string()))?,
            )),
        };
        if file.is_none() && !stderr {
            return Ok(None);
        }
        Ok(Some(AccessLog { file, stderr }))
    }

    /// Append one entry to every enabled destination. Write failures are
    /// swallowed: the access log must never take a response down with it.
    pub fn log(&self, entry: &AccessEntry<'_>) {
        let line = entry.to_json_line();
        if let Some(file) = &self.file {
            let mut f = file.lock().expect("access log poisoned");
            let _ = writeln!(f, "{line}");
        }
        if self.stderr {
            eprintln!("{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_render_as_parseable_json_lines() {
        let entry = AccessEntry {
            method: "POST",
            endpoint: "/v1/estimate",
            status: 200,
            bytes: 1234,
            queue_us: 15,
            handler_us: 4200,
        };
        let line = entry.to_json_line();
        let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(v["endpoint"], "/v1/estimate");
        assert_eq!(v["method"], "POST");
        assert_eq!(v["status"], 200);
        assert_eq!(v["bytes"], 1234);
        assert_eq!(v["queue_us"], 15);
        assert_eq!(v["handler_us"], 4200);
    }

    #[test]
    fn disabled_config_builds_no_log() {
        assert!(AccessLog::from_config(None, false).unwrap().is_none());
    }

    #[test]
    fn file_log_appends_one_line_per_entry() {
        let dir = std::env::temp_dir().join(format!("amped-access-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        let path_str = path.to_str().unwrap();
        let log = AccessLog::from_config(Some(path_str), false)
            .unwrap()
            .unwrap();
        for status in [200, 429] {
            log.log(&AccessEntry {
                method: "POST",
                endpoint: "/v1/search",
                status,
                bytes: 10,
                queue_us: 1,
                handler_us: 2,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert_eq!(v["endpoint"], "/v1/search");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
