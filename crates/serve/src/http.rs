//! A minimal HTTP/1.1 codec over `std::net::TcpStream`.
//!
//! The server speaks exactly the subset its API needs: one request per
//! connection (`Connection: close` on every response), a request line with
//! an optional query string, `Content-Length`-framed bodies, and a fixed
//! set of status codes. Hand-rolled on `std` to match the workspace's
//! no-external-deps policy — this is a codec, not a general web server.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted header block (16 KiB) — far beyond anything the API's
/// clients send; a guard against garbage, not a tunable.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Largest accepted body (8 MiB) — generous for inline-spec scenarios.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The HTTP method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target (query string stripped).
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was given).
    pub body: String,
}

impl Request {
    /// The last value given for query parameter `key`, if any.
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// `Retry-After` header in seconds (backpressure responses only).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body,
            retry_after: None,
        }
    }

    /// A `200 OK` plain-text response.
    #[must_use]
    pub fn text(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
        }
    }

    /// An error response with a `{ "error": ... }` JSON body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: serde_json::to_string_pretty(&serde_json::json!({ "error": message }))
                .expect("error body serializes"),
            retry_after: None,
        }
    }
}

/// The reason phrase for every status the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Read and parse one request off the stream.
///
/// `Ok(Err(response))` is a malformed request the caller should answer
/// with the prepared error response; `Err(_)` is a transport failure (the
/// peer vanished) where no response can be delivered at all.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Result<Request, Response>> {
    // Accumulate until the blank line ending the header block.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Ok(Err(Response::error(400, "request header block too large")));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the request was complete",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let header_text = match std::str::from_utf8(&buf[..header_end]) {
        Ok(t) => t.to_string(),
        Err(_) => return Ok(Err(Response::error(400, "request headers are not UTF-8"))),
    };
    let mut lines = header_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(Err(Response::error(400, "malformed request line")));
    };

    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Ok(Err(Response::error(400, "malformed Content-Length header")))
                    }
                };
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(Response::error(413, "request body too large")));
    }

    // The body: whatever followed the header block, then the remainder.
    let mut body_bytes = buf[header_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the body was complete",
            ));
        }
        body_bytes.extend_from_slice(&chunk[..n]);
    }
    body_bytes.truncate(content_length);
    let body = match String::from_utf8(body_bytes) {
        Ok(b) => b,
        Err(_) => return Ok(Err(Response::error(400, "request body is not UTF-8"))),
    };

    let (path, query) = parse_target(target);
    Ok(Ok(Request {
        method: method.to_string(),
        path,
        query,
        body,
    }))
}

/// Write one response and flush it. Every response closes the connection.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// The position of the `\r\n\r\n` ending the header block.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Split a request target into its path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), pairs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_split_into_path_and_query() {
        let (path, query) = parse_target("/v1/search?top=5&jobs=2&prune");
        assert_eq!(path, "/v1/search");
        assert_eq!(
            query,
            vec![
                ("top".to_string(), "5".to_string()),
                ("jobs".to_string(), "2".to_string()),
                ("prune".to_string(), String::new()),
            ]
        );
        let (path, query) = parse_target("/v1/health");
        assert_eq!(path, "/v1/health");
        assert!(query.is_empty());
    }

    #[test]
    fn query_param_returns_the_last_value() {
        let req = Request {
            method: "POST".into(),
            path: "/v1/search".into(),
            query: vec![
                ("top".into(), "5".into()),
                ("top".into(), "7".into()),
            ],
            body: String::new(),
        };
        assert_eq!(req.query_param("top"), Some("7"));
        assert_eq!(req.query_param("jobs"), None);
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
