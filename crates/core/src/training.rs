//! Training-run configuration: global batch size and batch count.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// What is being trained: the global batch size and how many batches
/// (optimizer steps) the run takes — the paper's `N_batch`.
///
/// # Example
///
/// ```
/// use amped_core::TrainingConfig;
/// // 300B tokens at 2048-token sequences, batch 1536:
/// let run = TrainingConfig::from_tokens(1536, 2048, 300e9).unwrap();
/// assert_eq!(run.global_batch(), 1536);
/// assert_eq!(run.num_batches(), 95368);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrainingConfig {
    global_batch: usize,
    num_batches: u64,
}

impl TrainingConfig {
    /// A run of `num_batches` optimizer steps at `global_batch` sequences.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if either count is zero.
    pub fn new(global_batch: usize, num_batches: u64) -> Result<Self> {
        if global_batch == 0 || num_batches == 0 {
            return Err(Error::invalid(
                "training",
                "batch size and batch count must be positive",
            ));
        }
        Ok(TrainingConfig {
            global_batch,
            num_batches,
        })
    }

    /// A single iteration at `global_batch` — what per-iteration metrics
    /// such as TFLOP/s/GPU use.
    pub fn single_batch(global_batch: usize) -> Result<Self> {
        Self::new(global_batch, 1)
    }

    /// Derive the batch count from a token budget:
    /// `ceil(tokens / (batch · seq_len))`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero batch/sequence sizes or a
    /// non-positive token budget.
    pub fn from_tokens(global_batch: usize, seq_len: usize, tokens: f64) -> Result<Self> {
        if !(tokens > 0.0 && tokens.is_finite()) {
            return Err(Error::invalid("training", "token budget must be positive"));
        }
        if global_batch == 0 || seq_len == 0 {
            return Err(Error::invalid(
                "training",
                "batch size and sequence length must be positive",
            ));
        }
        let tokens_per_batch = (global_batch * seq_len) as f64;
        let batches = (tokens / tokens_per_batch).ceil() as u64;
        Self::new(global_batch, batches.max(1))
    }

    /// The global batch size in sequences.
    pub fn global_batch(&self) -> usize {
        self.global_batch
    }

    /// The number of batches (the paper's `N_batch`).
    pub fn num_batches(&self) -> u64 {
        self.num_batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_budget_rounds_up() {
        let run = TrainingConfig::from_tokens(4, 1024, 10_000.0).unwrap();
        // 4096 tokens per batch -> ceil(10000/4096) = 3 batches
        assert_eq!(run.num_batches(), 3);
    }

    #[test]
    fn rejects_zero() {
        assert!(TrainingConfig::new(0, 1).is_err());
        assert!(TrainingConfig::new(1, 0).is_err());
        assert!(TrainingConfig::from_tokens(1, 1, 0.0).is_err());
        assert!(TrainingConfig::from_tokens(0, 1, 10.0).is_err());
    }

    #[test]
    fn single_batch_helper() {
        let r = TrainingConfig::single_batch(4096).unwrap();
        assert_eq!(r.num_batches(), 1);
    }
}
