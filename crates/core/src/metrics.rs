//! Derived performance metrics: model FLOPs and the TFLOP/s/GPU measure the
//! paper validates against (Table II, Fig. 2c).

use crate::counts::LayerCounts;
use crate::model::TransformerModel;

/// Useful model FLOPs of one iteration at `global_batch` sequences, with
/// Megatron-LM accounting: forward + backward (2×) and, when
/// `activation_recompute` is set, one extra forward — FLOPs of MAC-bearing
/// layers only, 2 FLOPs per MAC.
///
/// # Example
///
/// ```
/// use amped_core::{metrics::model_flops_per_iteration, TransformerModel};
/// let m = TransformerModel::builder("t")
///     .layers(4).hidden_size(256).heads(8).seq_len(128).vocab_size(1000)
///     .include_head(false)
///     .build().unwrap();
/// let f3 = model_flops_per_iteration(&m, 8, false);
/// let f4 = model_flops_per_iteration(&m, 8, true);
/// assert!((f4 / f3 - 4.0 / 3.0).abs() < 1e-12);
/// ```
pub fn model_flops_per_iteration(
    model: &TransformerModel,
    global_batch: usize,
    activation_recompute: bool,
) -> f64 {
    let passes = if activation_recompute { 4.0 } else { 3.0 };
    let b = global_batch as f64;
    let mut flops = 0.0;
    for (kind, c) in LayerCounts::for_stack(model, b) {
        // Megatron's convention: the vocabulary head is never recomputed,
        // so it contributes 3 passes regardless (its 6BshV term).
        let layer_passes = if kind == crate::model::LayerKind::Head {
            3.0
        } else {
            passes
        };
        flops += 2.0 * c.macs_fwd * layer_passes;
    }
    flops
}

/// Megatron-LM's closed-form FLOP count
/// `96·B·s·L·h²·(1 + s/(6h) + V/(16·L·h))` (with recompute), used as a
/// cross-check of the layer-wise counting.
pub fn megatron_closed_form_flops(
    num_layers: usize,
    hidden: usize,
    seq: usize,
    vocab: usize,
    global_batch: usize,
) -> f64 {
    let (l, h, s, v, b) = (
        num_layers as f64,
        hidden as f64,
        seq as f64,
        vocab as f64,
        global_batch as f64,
    );
    96.0 * b * s * l * h * h * (1.0 + s / (6.0 * h) + v / (16.0 * l * h))
}

/// Achieved model TFLOP/s per accelerator: `flops / (t_iter · workers) / 1e12`.
///
/// Returns zero for a zero-duration iteration (degenerate inputs).
pub fn tflops_per_gpu(model_flops: f64, time_per_iteration_s: f64, workers: f64) -> f64 {
    if time_per_iteration_s <= 0.0 || workers <= 0.0 {
        return 0.0;
    }
    model_flops / (time_per_iteration_s * workers) / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layerwise_count_matches_megatron_closed_form() {
        // For a pure GPT stack the two accountings agree to within the small
        // terms the closed form drops (biases, layer norms, softmax MACs).
        let m = TransformerModel::builder("gpt3")
            .layers(96)
            .hidden_size(12288)
            .heads(96)
            .seq_len(2048)
            .vocab_size(51200)
            .build()
            .unwrap();
        let ours = model_flops_per_iteration(&m, 1536, true);
        let theirs = megatron_closed_form_flops(96, 12288, 2048, 51200, 1536);
        let rel = (ours - theirs).abs() / theirs;
        assert!(rel < 0.02, "relative difference {rel}");
    }

    #[test]
    fn recompute_is_four_thirds_of_the_transformer_layers() {
        let m = TransformerModel::builder("t")
            .layers(2)
            .hidden_size(64)
            .heads(4)
            .seq_len(32)
            .vocab_size(100)
            .include_head(false)
            .build()
            .unwrap();
        let without = model_flops_per_iteration(&m, 4, false);
        let with = model_flops_per_iteration(&m, 4, true);
        assert!((with / without - 4.0 / 3.0).abs() < 1e-12);

        // With the head present, its share stays at 3 passes.
        let with_head = TransformerModel::builder("t")
            .layers(2)
            .hidden_size(64)
            .heads(4)
            .seq_len(32)
            .vocab_size(100)
            .build()
            .unwrap();
        let ratio = model_flops_per_iteration(&with_head, 4, true)
            / model_flops_per_iteration(&with_head, 4, false);
        assert!(ratio > 1.0 && ratio < 4.0 / 3.0);
    }

    #[test]
    fn tflops_handles_degenerate_inputs() {
        assert_eq!(tflops_per_gpu(1e15, 0.0, 8.0), 0.0);
        assert_eq!(tflops_per_gpu(1e15, 1.0, 0.0), 0.0);
        assert!((tflops_per_gpu(1e15, 1.0, 8.0) - 125.0).abs() < 1e-9);
    }
}
