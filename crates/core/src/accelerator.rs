//! Accelerator micro-architecture model (the paper's Eq. 3–4 inputs).
//!
//! An accelerator is described by the knobs of Table IV: clock frequency
//! `f`, core count `N_cores`, MAC functional units per core `N_FU` and their
//! width `W_FU` (lanes at the unit's native precision `S_FU`), plus the
//! non-linear (special-function) units `N_FU_nonlin` / `W_FU_nonlin`, and the
//! memory/power attributes used by the memory and energy models.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::precision::precision_scale;

/// Specification of one accelerator (GPU or custom ASIC).
///
/// Construct via [`AcceleratorSpec::builder`]; presets for V100, P100, A100
/// and H100 live in `amped-configs`.
///
/// # Example
///
/// ```
/// use amped_core::AcceleratorSpec;
/// // The paper's A100 row of Table IV.
/// let a100 = AcceleratorSpec::builder("A100")
///     .frequency_hz(1.41e9)
///     .cores(108)
///     .mac_units(4, 512, 8)
///     .nonlin_units(192, 4, 32)
///     .memory(80e9, 2.0e12)
///     .build()
///     .unwrap();
/// // 1.41e9 * 108 * 4 * 512 = 312 T MAC/s at 8-bit => 156 T MAC/s at 16-bit
/// let peak16 = a100.peak_macs_per_sec(16);
/// assert!((peak16 / 1e12 - 155.9).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSpec {
    name: String,
    frequency_hz: f64,
    num_cores: u32,
    mac_units_per_core: u32,
    mac_unit_width: u32,
    mac_unit_bits: u32,
    nonlin_units: u32,
    nonlin_unit_width: u32,
    nonlin_unit_bits: u32,
    memory_bytes: f64,
    memory_bandwidth_bytes_per_sec: f64,
    offchip_bandwidth_bits_per_sec: f64,
    tdp_watts: f64,
    idle_power_fraction: f64,
}

impl AcceleratorSpec {
    /// Start building an accelerator named `name`.
    pub fn builder(name: impl Into<String>) -> AcceleratorSpecBuilder {
        AcceleratorSpecBuilder::new(name)
    }

    /// Accelerator name (e.g. `"A100"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Clock frequency in Hz (the paper's `f`).
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Number of cores / SMs (the paper's `N_cores`).
    pub fn num_cores(&self) -> u32 {
        self.num_cores
    }

    /// MAC functional units per core (the paper's `N_FU`).
    pub fn mac_units_per_core(&self) -> u32 {
        self.mac_units_per_core
    }

    /// Lanes per MAC unit at its native precision (the paper's `W_FU`).
    pub fn mac_unit_width(&self) -> u32 {
        self.mac_unit_width
    }

    /// Native precision of the MAC units in bits (the paper's `S_FU_MAC`).
    pub fn mac_unit_bits(&self) -> u32 {
        self.mac_unit_bits
    }

    /// Non-linear functional units (the paper's `N_FU_nonlin`).
    pub fn nonlin_units(&self) -> u32 {
        self.nonlin_units
    }

    /// Lanes per non-linear unit (the paper's `W_FU_nonlin`).
    pub fn nonlin_unit_width(&self) -> u32 {
        self.nonlin_unit_width
    }

    /// Native precision of the non-linear units in bits.
    pub fn nonlin_unit_bits(&self) -> u32 {
        self.nonlin_unit_bits
    }

    /// Device memory capacity in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.memory_bytes
    }

    /// Device memory bandwidth in bytes/s.
    pub fn memory_bandwidth_bytes_per_sec(&self) -> f64 {
        self.memory_bandwidth_bytes_per_sec
    }

    /// Off-chip I/O bandwidth in bits/s (what case study III's optical
    /// substrate multiplies).
    pub fn offchip_bandwidth_bits_per_sec(&self) -> f64 {
        self.offchip_bandwidth_bits_per_sec
    }

    /// Thermal design power in watts (energy model input).
    pub fn tdp_watts(&self) -> f64 {
        self.tdp_watts
    }

    /// Fraction of TDP drawn while idling in a pipeline bubble.
    pub fn idle_power_fraction(&self) -> f64 {
        self.idle_power_fraction
    }

    /// Peak MAC rate at native unit precision and perfect utilization:
    /// `f · N_cores · N_FU · W_FU` (MAC/s).
    pub fn peak_macs_native(&self) -> f64 {
        self.frequency_hz
            * self.num_cores as f64
            * self.mac_units_per_core as f64
            * self.mac_unit_width as f64
    }

    /// Peak MAC rate for `operand_bits`-wide operands (the Eq. 2 ceiling
    /// de-rating applied to the native rate).
    pub fn peak_macs_per_sec(&self, operand_bits: u32) -> f64 {
        self.peak_macs_native() / precision_scale(operand_bits, self.mac_unit_bits)
    }

    /// Peak throughput in FLOP/s at `operand_bits` (2 FLOPs per MAC).
    pub fn peak_flops_per_sec(&self, operand_bits: u32) -> f64 {
        2.0 * self.peak_macs_per_sec(operand_bits)
    }

    /// Eq. 3: seconds per MAC, `C_MAC = 1 / (f · N_cores · N_FU · W_FU · eff)`.
    ///
    /// # Panics
    ///
    /// Panics (via debug assertion) if `efficiency` is outside `(0, 1]`.
    pub fn c_mac(&self, efficiency: f64) -> f64 {
        debug_assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        1.0 / (self.peak_macs_native() * efficiency)
    }

    /// Eq. 4: seconds per non-linear op,
    /// `C_nonlin = 1 / (f · N_FU_nonlin · W_FU_nonlin)`.
    pub fn c_nonlin(&self) -> f64 {
        1.0 / (self.frequency_hz * self.nonlin_units as f64 * self.nonlin_unit_width as f64)
    }

    /// Eq. 2 precision de-rating for MAC operands of width `operand_bits`.
    pub fn mac_precision_scale(&self, operand_bits: u32) -> f64 {
        precision_scale(operand_bits, self.mac_unit_bits)
    }

    /// Eq. 2 precision de-rating for non-linear operands.
    pub fn nonlin_precision_scale(&self, operand_bits: u32) -> f64 {
        precision_scale(operand_bits, self.nonlin_unit_bits)
    }

    /// Return a copy with off-chip bandwidth multiplied by `factor`
    /// (case study III's *Opt. 3*).
    pub fn with_offchip_bandwidth_scaled(&self, factor: f64) -> Self {
        let mut copy = self.clone();
        copy.offchip_bandwidth_bits_per_sec *= factor;
        copy
    }
}

/// Builder for [`AcceleratorSpec`]; see the type-level example.
#[derive(Debug, Clone)]
pub struct AcceleratorSpecBuilder {
    spec: AcceleratorSpec,
}

impl AcceleratorSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        AcceleratorSpecBuilder {
            spec: AcceleratorSpec {
                name: name.into(),
                frequency_hz: 0.0,
                num_cores: 0,
                mac_units_per_core: 0,
                mac_unit_width: 0,
                mac_unit_bits: 8,
                nonlin_units: 0,
                nonlin_unit_width: 0,
                nonlin_unit_bits: 32,
                memory_bytes: 0.0,
                memory_bandwidth_bytes_per_sec: 0.0,
                offchip_bandwidth_bits_per_sec: 0.0,
                tdp_watts: 300.0,
                idle_power_fraction: 0.3,
            },
        }
    }

    /// Clock frequency in Hz.
    pub fn frequency_hz(&mut self, f: f64) -> &mut Self {
        self.spec.frequency_hz = f;
        self
    }

    /// Number of cores / SMs.
    pub fn cores(&mut self, n: u32) -> &mut Self {
        self.spec.num_cores = n;
        self
    }

    /// MAC unit shape: `units_per_core` units, each `width` lanes wide at
    /// `unit_bits` native precision.
    pub fn mac_units(&mut self, units_per_core: u32, width: u32, unit_bits: u32) -> &mut Self {
        self.spec.mac_units_per_core = units_per_core;
        self.spec.mac_unit_width = width;
        self.spec.mac_unit_bits = unit_bits;
        self
    }

    /// Non-linear unit shape: `units` units (device-wide per core per the
    /// paper's Table IV convention), each `width` lanes at `unit_bits`.
    pub fn nonlin_units(&mut self, units: u32, width: u32, unit_bits: u32) -> &mut Self {
        self.spec.nonlin_units = units;
        self.spec.nonlin_unit_width = width;
        self.spec.nonlin_unit_bits = unit_bits;
        self
    }

    /// Device memory: capacity in bytes and bandwidth in bytes/s.
    pub fn memory(&mut self, capacity_bytes: f64, bandwidth_bytes_per_sec: f64) -> &mut Self {
        self.spec.memory_bytes = capacity_bytes;
        self.spec.memory_bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
        self
    }

    /// Off-chip I/O bandwidth in bits/s.
    pub fn offchip_bandwidth_bits_per_sec(&mut self, bps: f64) -> &mut Self {
        self.spec.offchip_bandwidth_bits_per_sec = bps;
        self
    }

    /// Power attributes: TDP in watts and idle power as a fraction of TDP.
    pub fn power(&mut self, tdp_watts: f64, idle_fraction: f64) -> &mut Self {
        self.spec.tdp_watts = tdp_watts;
        self.spec.idle_power_fraction = idle_fraction;
        self
    }

    /// Validate and produce the spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when frequency, cores or any
    /// functional-unit dimension is non-positive, or power attributes are
    /// out of range.
    pub fn build(&self) -> Result<AcceleratorSpec> {
        let s = &self.spec;
        let bad = |reason: String| Err(Error::invalid("accelerator", reason));
        if !(s.frequency_hz > 0.0 && s.frequency_hz.is_finite()) {
            return bad(format!("frequency must be positive, got {}", s.frequency_hz));
        }
        if s.num_cores == 0 {
            return bad("core count must be positive".into());
        }
        if s.mac_units_per_core == 0 || s.mac_unit_width == 0 || s.mac_unit_bits == 0 {
            return bad("mac unit shape must be positive in all dimensions".into());
        }
        if s.nonlin_units == 0 || s.nonlin_unit_width == 0 || s.nonlin_unit_bits == 0 {
            return bad("nonlinear unit shape must be positive in all dimensions".into());
        }
        if s.memory_bytes < 0.0 || s.memory_bandwidth_bytes_per_sec < 0.0 {
            return bad("memory attributes must be non-negative".into());
        }
        if !(s.tdp_watts >= 0.0 && (0.0..=1.0).contains(&s.idle_power_fraction)) {
            return bad("power attributes out of range".into());
        }
        Ok(s.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> AcceleratorSpec {
        AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .offchip_bandwidth_bits_per_sec(2.4e12)
            .power(400.0, 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn a100_peak_matches_datasheet() {
        let a = a100();
        // Native (8-bit) peak: 312 T MAC/s; 16-bit: 156 T MAC/s = 312 TFLOP/s.
        assert!((a.peak_macs_native() / 1e12 - 311.9).abs() < 0.5);
        assert!((a.peak_flops_per_sec(16) / 1e12 - 311.9).abs() < 0.5);
    }

    #[test]
    fn c_mac_is_reciprocal_of_scaled_peak() {
        let a = a100();
        let eff = 0.5;
        let c = a.c_mac(eff);
        assert!((c * a.peak_macs_native() * eff - 1.0).abs() < 1e-12);
    }

    #[test]
    fn c_nonlin_ignores_core_count() {
        // Eq. 4 has no N_cores term; Table IV lists nonlin units device-wide.
        let a = a100();
        let expect = 1.0 / (1.41e9 * 192.0 * 4.0);
        assert!((a.c_nonlin() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn precision_scaling_halves_wide_operand_throughput() {
        let a = a100();
        assert_eq!(a.mac_precision_scale(8), 1.0);
        assert_eq!(a.mac_precision_scale(16), 2.0);
        assert_eq!(a.mac_precision_scale(32), 4.0);
        assert_eq!(a.peak_macs_per_sec(16) * 2.0, a.peak_macs_per_sec(8));
    }

    #[test]
    fn builder_rejects_incomplete_specs() {
        assert!(AcceleratorSpec::builder("empty").build().is_err());
        assert!(AcceleratorSpec::builder("no-nonlin")
            .frequency_hz(1e9)
            .cores(4)
            .mac_units(1, 16, 16)
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_power() {
        let mut b = AcceleratorSpec::builder("x");
        b.frequency_hz(1e9)
            .cores(1)
            .mac_units(1, 1, 8)
            .nonlin_units(1, 1, 32)
            .power(250.0, 1.5);
        assert!(b.build().is_err());
    }

    #[test]
    fn offchip_scaling_returns_scaled_copy() {
        let a = a100();
        let fast = a.with_offchip_bandwidth_scaled(4.0);
        assert_eq!(
            fast.offchip_bandwidth_bits_per_sec(),
            4.0 * a.offchip_bandwidth_bits_per_sec()
        );
        assert_eq!(fast.peak_macs_native(), a.peak_macs_native());
    }

    #[test]
    fn serde_roundtrip() {
        let a = a100();
        let json = serde_json::to_string(&a).unwrap();
        let back: AcceleratorSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
