//! Microbatch efficiency models — the paper's `eff(ub)`.
//!
//! AMPeD scales the peak MAC throughput of an accelerator by an empirically
//! fitted *microbatch efficiency* `eff(ub)` (Eq. 3). The paper observes that
//! the functional form `a·ub / (b + ub)` fits measured data well up to a
//! critical microbatch size, with application/hardware-specific constants
//! `a` and `b`, and clamps it below (a 25 % floor appears in case study I).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// How effectively an accelerator's MAC units are utilized as a function of
/// the microbatch size.
///
/// # Example
///
/// ```
/// use amped_core::EfficiencyModel;
/// let eff = EfficiencyModel::saturating(0.95, 4.0, 0.25, 0.95);
/// assert!(eff.eval(1.0) >= 0.25);          // floor
/// assert!(eff.eval(512.0) <= 0.95);        // ceiling
/// assert!(eff.eval(64.0) > eff.eval(2.0)); // monotone in between
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EfficiencyModel {
    /// A fixed efficiency regardless of microbatch size. Useful for
    /// validating against published numbers where the paper quotes the
    /// efficiency it used.
    Constant(f64),
    /// The paper's saturating form `clamp(a·ub/(b+ub), floor, ceiling)`.
    Saturating {
        /// Asymptotic efficiency as `ub → ∞`.
        a: f64,
        /// Microbatch size at which half of `a` is reached.
        b: f64,
        /// Lower clamp (the paper uses 0.25 in case study I).
        floor: f64,
        /// Upper clamp (efficiency can never exceed 1).
        ceiling: f64,
    },
    /// Piecewise-linear interpolation through measured `(ub, eff)` points,
    /// for use with profiled data. Points must be sorted by `ub`; queries
    /// outside the range clamp to the end points.
    Table(Vec<(f64, f64)>),
}

impl EfficiencyModel {
    /// Convenience constructor for [`EfficiencyModel::Saturating`].
    pub fn saturating(a: f64, b: f64, floor: f64, ceiling: f64) -> Self {
        EfficiencyModel::Saturating {
            a,
            b,
            floor,
            ceiling,
        }
    }

    /// Perfect utilization — handy as a neutral default in unit tests.
    pub fn perfect() -> Self {
        EfficiencyModel::Constant(1.0)
    }

    /// Evaluate the efficiency at microbatch size `ub` (samples).
    ///
    /// The result is always within `(0, 1]` for a validated model.
    pub fn eval(&self, ub: f64) -> f64 {
        match self {
            EfficiencyModel::Constant(e) => *e,
            EfficiencyModel::Saturating {
                a,
                b,
                floor,
                ceiling,
            } => (a * ub / (b + ub)).clamp(*floor, *ceiling),
            EfficiencyModel::Table(points) => {
                if points.is_empty() {
                    return 1.0;
                }
                let first = points[0];
                let last = points[points.len() - 1];
                if ub <= first.0 {
                    return first.1;
                }
                if ub >= last.0 {
                    return last.1;
                }
                for w in points.windows(2) {
                    let (x0, y0) = w[0];
                    let (x1, y1) = w[1];
                    if ub >= x0 && ub <= x1 {
                        let t = if x1 > x0 { (ub - x0) / (x1 - x0) } else { 0.0 };
                        return y0 + t * (y1 - y0);
                    }
                }
                last.1
            }
        }
    }

    /// Least-squares fit of the saturating form to measured `(ub, eff)`
    /// points, via the linearization `1/eff = 1/a + (b/a)·(1/ub)`.
    ///
    /// The returned model uses `floor = min(eff)` and `ceiling = 1.0`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if fewer than two points are given,
    /// or any point has non-positive `ub` or `eff`.
    pub fn fit_saturating(points: &[(f64, f64)]) -> Result<Self> {
        if points.len() < 2 {
            return Err(Error::invalid(
                "efficiency",
                "need at least two points to fit the saturating form",
            ));
        }
        for &(ub, eff) in points {
            if ub <= 0.0 || eff <= 0.0 {
                return Err(Error::invalid(
                    "efficiency",
                    format!("points must be positive, got ({ub}, {eff})"),
                ));
            }
        }
        // Linear regression of y = 1/eff against x = 1/ub.
        let n = points.len() as f64;
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(ub, eff) in points {
            let x = 1.0 / ub;
            let y = 1.0 / eff;
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-30 {
            return Err(Error::invalid(
                "efficiency",
                "points are degenerate (all equal microbatch sizes)",
            ));
        }
        let slope = (n * sxy - sx * sy) / denom; // b/a
        let intercept = (sy - slope * sx) / n; // 1/a
        if intercept <= 0.0 {
            return Err(Error::invalid(
                "efficiency",
                "fit produced a non-positive asymptote; data does not follow a saturating curve",
            ));
        }
        let a = 1.0 / intercept;
        let b = (slope * a).max(0.0);
        let floor = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        Ok(EfficiencyModel::Saturating {
            a,
            b,
            floor,
            ceiling: 1.0,
        })
    }

    /// Check the model always yields efficiencies in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any parameter or table entry
    /// would let efficiency leave `(0, 1]`, or when a table is unsorted.
    pub fn validate(&self) -> Result<()> {
        let bad = |reason: String| Err(Error::invalid("efficiency", reason));
        match self {
            EfficiencyModel::Constant(e) => {
                let in_range = *e > 0.0 && *e <= 1.0;
                if !in_range {
                    return bad(format!("constant efficiency must be in (0, 1], got {e}"));
                }
            }
            EfficiencyModel::Saturating {
                a,
                b,
                floor,
                ceiling,
            } => {
                if !(*a > 0.0 && a.is_finite()) {
                    return bad(format!("asymptote a must be positive, got {a}"));
                }
                if !(*b >= 0.0 && b.is_finite()) {
                    return bad(format!("half-rise b must be non-negative, got {b}"));
                }
                if !(*floor > 0.0 && floor <= ceiling) {
                    return bad(format!("floor must be in (0, ceiling], got {floor}"));
                }
                if *ceiling > 1.0 {
                    return bad(format!("ceiling must be <= 1, got {ceiling}"));
                }
            }
            EfficiencyModel::Table(points) => {
                if points.is_empty() {
                    return bad("table must not be empty".to_string());
                }
                for w in points.windows(2) {
                    if w[1].0 <= w[0].0 {
                        return bad("table must be strictly sorted by microbatch size".into());
                    }
                }
                for &(ub, eff) in points {
                    if !(ub > 0.0 && eff > 0.0 && eff <= 1.0) {
                        return bad(format!("table entry ({ub}, {eff}) out of range"));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Default for EfficiencyModel {
    /// A generic saturating curve (`a = 0.95`, `b = 4`, floor 5 %) that
    /// reaches ~80 % at `ub ≈ 24`, matching the qualitative behaviour the
    /// paper reports for A100-class accelerators.
    fn default() -> Self {
        EfficiencyModel::saturating(0.95, 4.0, 0.05, 0.95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_is_monotone_between_clamps() {
        let m = EfficiencyModel::saturating(0.9, 8.0, 0.01, 0.9);
        let mut prev = 0.0;
        for ub in 1..200 {
            let e = m.eval(ub as f64);
            assert!(e >= prev - 1e-12, "ub={ub}");
            assert!(e > 0.0 && e <= 0.9);
            prev = e;
        }
    }

    #[test]
    fn floor_matches_case_study_artifact() {
        // Case study I notes a fixed 25 % lower limit.
        let m = EfficiencyModel::saturating(0.95, 16.0, 0.25, 0.95);
        assert_eq!(m.eval(0.1), 0.25);
        assert_eq!(m.eval(0.0), 0.25);
    }

    #[test]
    fn table_interpolates_and_clamps() {
        let m = EfficiencyModel::Table(vec![(1.0, 0.2), (4.0, 0.5), (16.0, 0.8)]);
        m.validate().unwrap();
        assert_eq!(m.eval(0.5), 0.2);
        assert_eq!(m.eval(100.0), 0.8);
        let mid = m.eval(2.5);
        assert!((mid - 0.35).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_known_parameters() {
        let truth = EfficiencyModel::saturating(0.9, 6.0, 1e-6, 1.0);
        let points: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&ub| (ub, 0.9 * ub / (6.0 + ub)))
            .collect();
        let fitted = EfficiencyModel::fit_saturating(&points).unwrap();
        if let EfficiencyModel::Saturating { a, b, .. } = fitted {
            assert!((a - 0.9).abs() < 1e-6, "a={a}");
            assert!((b - 6.0).abs() < 1e-4, "b={b}");
        } else {
            panic!("fit did not return a saturating model");
        }
        let _ = truth;
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(EfficiencyModel::fit_saturating(&[(1.0, 0.5)]).is_err());
        assert!(EfficiencyModel::fit_saturating(&[(1.0, 0.5), (2.0, -0.1)]).is_err());
        assert!(EfficiencyModel::fit_saturating(&[(2.0, 0.5), (2.0, 0.5)]).is_err());
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(EfficiencyModel::Constant(0.0).validate().is_err());
        assert!(EfficiencyModel::Constant(1.5).validate().is_err());
        assert!(EfficiencyModel::Constant(0.5).validate().is_ok());
        assert!(EfficiencyModel::saturating(0.9, 4.0, 0.0, 0.9)
            .validate()
            .is_err());
        assert!(EfficiencyModel::Table(vec![]).validate().is_err());
        assert!(
            EfficiencyModel::Table(vec![(4.0, 0.5), (1.0, 0.2)])
                .validate()
                .is_err(),
            "unsorted table must be rejected"
        );
    }

    #[test]
    fn default_validates_and_reaches_eighty_percent() {
        let m = EfficiencyModel::default();
        m.validate().unwrap();
        assert!(m.eval(24.0) > 0.78);
    }

    #[test]
    fn empty_table_evaluates_to_one() {
        // Defensive path: an (invalid) empty table does not divide by zero.
        assert_eq!(EfficiencyModel::Table(vec![]).eval(8.0), 1.0);
    }
}
