//! Operation and tensor-size counting — the paper's `N_MAC`, `N_nonlin`,
//! `N_act`, `N_g` inputs.
//!
//! Counts are `f64` because trillion-parameter models at 16k batch sizes
//! overflow `u64` MAC counts; the analytical model is a real-valued
//! calculation throughout, and all counts are exactly representable far
//! beyond the 2^53 integer limit anyway (they are products of small-ish
//! integers).

use serde::{Deserialize, Serialize};

use crate::model::{LayerKind, TransformerModel};

/// Elementwise cost (ops per element) assumed for a softmax (max-subtract,
/// exponentiate, accumulate, divide, plus overheads).
pub const SOFTMAX_OPS_PER_ELEMENT: f64 = 5.0;
/// Elementwise cost assumed for a GeLU activation (tanh-approximation).
pub const GELU_OPS_PER_ELEMENT: f64 = 8.0;
/// Elementwise cost assumed for one layer normalization pass.
pub const LAYERNORM_OPS_PER_ELEMENT: f64 = 5.0;
/// Elementwise cost of a residual addition.
pub const RESIDUAL_OPS_PER_ELEMENT: f64 = 1.0;

/// Per-layer operation and tensor-size counts for one pass over `batch`
/// sequences (the forward direction; backward scaling happens in the
/// engine).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LayerCounts {
    /// Multiply-accumulate operations in the forward pass (`N_MAC`).
    pub macs_fwd: f64,
    /// Non-linear elementwise operations in the forward pass (`N_nonlin`).
    pub nonlin_fwd: f64,
    /// Trainable weights in this layer (drives `U_w` and `N_g`).
    pub weights: f64,
    /// The expert-MLP portion of `weights` (zero for dense layers). Expert
    /// weights are sharded by expert parallelism rather than replicated, so
    /// gradient synchronization treats them separately.
    pub weights_expert: f64,
    /// Activation elements all-reduced by tensor parallelism per layer
    /// (`N_act,TP = 2·b·s·h`, the two Megatron all-reduces).
    pub act_elems_tp: f64,
    /// Activation elements crossing a pipeline-stage boundary
    /// (`N_act,PP = b·s·h`).
    pub act_elems_pp: f64,
    /// Activation elements routed through MoE all-to-all
    /// (`N_act,MoE = b·s·h` on MoE layers, scaled by top-k and capacity).
    pub act_elems_moe: f64,
}

impl LayerCounts {
    /// Counts for one layer of `kind` in `model`, processing `batch`
    /// sequences of the model's sequence length.
    ///
    /// # Example
    ///
    /// ```
    /// use amped_core::{counts::LayerCounts, LayerKind, TransformerModel};
    /// let m = TransformerModel::builder("tiny")
    ///     .layers(2).hidden_size(64).heads(4).seq_len(32).vocab_size(100)
    ///     .build().unwrap();
    /// let c = LayerCounts::for_layer(&m, LayerKind::Dense, 4.0);
    /// // 12*b*s*h^2 + 2*b*s^2*h MACs
    /// let b = 4.0; let s = 32.0; let h = 64.0;
    /// let expect = 12.0 * b * s * h * h + 2.0 * b * s * s * h;
    /// assert!((c.macs_fwd - expect).abs() < 1e-6);
    /// ```
    pub fn for_layer(model: &TransformerModel, kind: LayerKind, batch: f64) -> LayerCounts {
        let h = model.hidden_size() as f64;
        let s = model.seq_len() as f64;
        let a = model.num_heads() as f64;
        let v = model.vocab_size() as f64;
        let f = model.ffn_mult();
        let tokens = batch * s;

        match kind {
            LayerKind::Dense | LayerKind::Moe => {
                // Attention: QKV projections, scores, value mix, output.
                let attn_macs = 3.0 * tokens * h * h   // QKV
                    + batch * s * s * h                // Q·K^T (all heads)
                    + batch * s * s * h                // softmax(scores)·V
                    + tokens * h * h; // output projection
                let (mlp_macs, gate_macs, expert_mult) = match (kind, model.moe()) {
                    (LayerKind::Moe, Some(cfg)) => {
                        let k = cfg.top_k as f64 * cfg.capacity_factor;
                        (
                            k * 2.0 * tokens * h * (f * h),
                            tokens * h * cfg.num_experts as f64,
                            k,
                        )
                    }
                    _ => (2.0 * tokens * h * (f * h), 0.0, 1.0),
                };
                let macs_fwd = attn_macs + mlp_macs + gate_macs;

                let softmax = SOFTMAX_OPS_PER_ELEMENT * batch * a * s * s;
                let gelu = GELU_OPS_PER_ELEMENT * expert_mult * tokens * f * h;
                let layernorm = 2.0 * LAYERNORM_OPS_PER_ELEMENT * tokens * h;
                let residual = 2.0 * RESIDUAL_OPS_PER_ELEMENT * tokens * h;
                let gate_softmax = match (kind, model.moe()) {
                    (LayerKind::Moe, Some(cfg)) => {
                        SOFTMAX_OPS_PER_ELEMENT * tokens * cfg.num_experts as f64
                    }
                    _ => 0.0,
                };
                let nonlin_fwd = softmax + gelu + layernorm + residual + gate_softmax;

                let moe_routing = if kind == LayerKind::Moe {
                    let cfg = model.moe().expect("moe layer requires config");
                    cfg.top_k as f64 * cfg.capacity_factor * tokens * h
                } else {
                    0.0
                };

                let weights_expert = match (kind, model.moe()) {
                    (LayerKind::Moe, Some(cfg)) => {
                        let e = cfg.num_experts as f64;
                        e * (2.0 * f * h * h + (f + 1.0) * h)
                    }
                    _ => 0.0,
                };
                LayerCounts {
                    macs_fwd,
                    nonlin_fwd,
                    weights: model.layer_weights(kind),
                    weights_expert,
                    act_elems_tp: 2.0 * tokens * h,
                    act_elems_pp: tokens * h,
                    act_elems_moe: moe_routing,
                }
            }
            LayerKind::Head => LayerCounts {
                macs_fwd: tokens * h * v,
                nonlin_fwd: SOFTMAX_OPS_PER_ELEMENT * tokens * v
                    + LAYERNORM_OPS_PER_ELEMENT * tokens * h,
                weights: model.layer_weights(LayerKind::Head),
                weights_expert: 0.0,
                // The head's vocab-parallel all-reduce moves one bsh tensor;
                // folded into the TP volume like a half transformer layer.
                act_elems_tp: tokens * h,
                act_elems_pp: 0.0,
                act_elems_moe: 0.0,
            },
        }
    }

    /// Counts for the entire layer stack at `batch` sequences.
    pub fn for_stack(model: &TransformerModel, batch: f64) -> Vec<(LayerKind, LayerCounts)> {
        model
            .layer_stack()
            .into_iter()
            .map(|kind| (kind, LayerCounts::for_layer(model, kind, batch)))
            .collect()
    }

    /// Sum of forward MACs over a whole stack.
    pub fn total_macs_fwd(model: &TransformerModel, batch: f64) -> f64 {
        Self::for_stack(model, batch)
            .iter()
            .map(|(_, c)| c.macs_fwd)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MoeConfig;

    fn tiny() -> TransformerModel {
        TransformerModel::builder("tiny")
            .layers(4)
            .hidden_size(128)
            .heads(8)
            .seq_len(64)
            .vocab_size(1000)
            .build()
            .unwrap()
    }

    #[test]
    fn dense_macs_match_megatron_closed_form() {
        // Megatron-LM counts 12*b*s*h^2 + 2*b*s^2*h MACs per layer fwd
        // (24 B s h^2 (1 + s/6h) FLOPs / 2).
        let m = tiny();
        let b = 8.0;
        let c = LayerCounts::for_layer(&m, LayerKind::Dense, b);
        let (h, s) = (128.0, 64.0);
        let expect = 12.0 * b * s * h * h + 2.0 * b * s * s * h;
        assert!((c.macs_fwd - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn counts_scale_linearly_with_batch() {
        let m = tiny();
        let c1 = LayerCounts::for_layer(&m, LayerKind::Dense, 2.0);
        let c4 = LayerCounts::for_layer(&m, LayerKind::Dense, 8.0);
        assert!((c4.macs_fwd / c1.macs_fwd - 4.0).abs() < 1e-12);
        assert!((c4.nonlin_fwd / c1.nonlin_fwd - 4.0).abs() < 1e-12);
        assert!((c4.act_elems_tp / c1.act_elems_tp - 4.0).abs() < 1e-12);
        assert_eq!(c1.weights, c4.weights);
    }

    #[test]
    fn tp_volume_is_twice_pp_volume() {
        // Two all-reduces per layer (attention + MLP) vs one stage transfer.
        let c = LayerCounts::for_layer(&tiny(), LayerKind::Dense, 16.0);
        assert!((c.act_elems_tp - 2.0 * c.act_elems_pp).abs() < 1e-9);
    }

    #[test]
    fn moe_layer_computes_topk_experts() {
        let m = TransformerModel::builder("moe")
            .layers(4)
            .hidden_size(128)
            .heads(8)
            .seq_len(64)
            .vocab_size(1000)
            .moe(MoeConfig::glam(8))
            .build()
            .unwrap();
        let dense = LayerCounts::for_layer(&m, LayerKind::Dense, 8.0);
        let moe = LayerCounts::for_layer(&m, LayerKind::Moe, 8.0);
        // top-2 doubles the MLP MACs; attention unchanged; so moe > dense.
        assert!(moe.macs_fwd > dense.macs_fwd);
        assert!(moe.act_elems_moe > 0.0);
        assert_eq!(dense.act_elems_moe, 0.0);
        // routed volume = top_k * tokens * h
        assert!((moe.act_elems_moe - 2.0 * 8.0 * 64.0 * 128.0).abs() < 1e-9);
    }

    #[test]
    fn head_counts_are_vocab_dominated() {
        let m = tiny();
        let c = LayerCounts::for_layer(&m, LayerKind::Head, 8.0);
        let expect = 8.0 * 64.0 * 128.0 * 1000.0;
        assert!((c.macs_fwd - expect).abs() / expect < 1e-12);
        assert_eq!(c.act_elems_pp, 0.0);
    }

    #[test]
    fn stack_has_one_entry_per_layer_plus_head() {
        let m = tiny();
        let stack = LayerCounts::for_stack(&m, 4.0);
        assert_eq!(stack.len(), 5);
        let total: f64 = stack.iter().map(|(_, c)| c.macs_fwd).sum();
        assert!((LayerCounts::total_macs_fwd(&m, 4.0) - total).abs() < 1e-9);
    }

    #[test]
    fn all_counts_nonnegative_and_finite() {
        let m = tiny();
        for (_, c) in LayerCounts::for_stack(&m, 1024.0) {
            for v in [
                c.macs_fwd,
                c.nonlin_fwd,
                c.weights,
                c.weights_expert,
                c.act_elems_tp,
                c.act_elems_pp,
                c.act_elems_moe,
            ] {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
}
