//! System architecture: nodes, accelerators per node, intra/inter-node links.
//!
//! AMPeD assumes a two-level hierarchy: nodes of homogeneous accelerators
//! joined by fast intra-node links (NVLink/NVSwitch or an optical substrate),
//! with nodes joined by slower inter-node links (InfiniBand NICs or optical
//! fibers). The paper's `C_intra`/`BW_intra` and `C_inter`/`BW_inter` come
//! from here.

use amped_topo::Topology;
use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// One level of the interconnect hierarchy.
///
/// `bandwidth_bits_per_sec` is the bandwidth *per communicating endpoint*:
/// per accelerator for the intra-node link, per NIC for the inter-node link
/// (see [`SystemSpec::inter_bandwidth_per_accel`] for the per-accelerator
/// share).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-hop latency in seconds (the paper's `C_intra` / `C_inter`).
    pub latency_s: f64,
    /// Bandwidth per endpoint in bits/s (the paper's `BW`).
    pub bandwidth_bits_per_sec: f64,
    /// Topology the collective runs over.
    pub topology: Topology,
}

impl Link {
    /// A link with the given latency and bandwidth on a ring topology.
    pub fn new(latency_s: f64, bandwidth_bits_per_sec: f64) -> Self {
        Link {
            latency_s,
            bandwidth_bits_per_sec,
            topology: Topology::Ring,
        }
    }

    /// Same link over a different topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Validate physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for negative latency or non-positive
    /// bandwidth.
    pub fn validate(&self) -> Result<()> {
        if !(self.latency_s >= 0.0 && self.latency_s.is_finite()) {
            return Err(Error::invalid(
                "link",
                format!("latency must be non-negative, got {}", self.latency_s),
            ));
        }
        if !(self.bandwidth_bits_per_sec > 0.0 && self.bandwidth_bits_per_sec.is_finite()) {
            return Err(Error::invalid(
                "link",
                format!(
                    "bandwidth must be positive, got {}",
                    self.bandwidth_bits_per_sec
                ),
            ));
        }
        Ok(())
    }
}

/// The distributed system: `num_nodes` nodes of `accels_per_node`
/// accelerators each.
///
/// # Example
///
/// ```
/// use amped_core::{Link, SystemSpec};
/// // 128 nodes x 8 A100s, NVLink inside, one HDR NIC per accelerator.
/// let sys = SystemSpec::new(
///     128,
///     8,
///     Link::new(5e-6, 2.4e12),
///     Link::new(10e-6, 200e9),
///     8,
/// )
/// .unwrap();
/// assert_eq!(sys.total_accelerators(), 1024);
/// assert_eq!(sys.inter_bandwidth_per_accel(), 200e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    num_nodes: usize,
    accels_per_node: usize,
    intra: Link,
    inter: Link,
    nics_per_node: usize,
}

impl SystemSpec {
    /// Build and validate a system.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero node/accelerator/NIC counts
    /// or invalid links.
    pub fn new(
        num_nodes: usize,
        accels_per_node: usize,
        intra: Link,
        inter: Link,
        nics_per_node: usize,
    ) -> Result<Self> {
        if num_nodes == 0 || accels_per_node == 0 {
            return Err(Error::invalid(
                "system",
                "node and accelerator counts must be positive",
            ));
        }
        if nics_per_node == 0 {
            return Err(Error::invalid(
                "system",
                "at least one NIC per node is required",
            ));
        }
        intra.validate()?;
        inter.validate()?;
        Ok(SystemSpec {
            num_nodes,
            accels_per_node,
            intra,
            inter,
            nics_per_node,
        })
    }

    /// Number of multi-accelerator nodes (the paper's `N_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Accelerators per node.
    pub fn accels_per_node(&self) -> usize {
        self.accels_per_node
    }

    /// Total accelerators in the system.
    pub fn total_accelerators(&self) -> usize {
        self.num_nodes * self.accels_per_node
    }

    /// The intra-node link.
    pub fn intra(&self) -> Link {
        self.intra
    }

    /// The inter-node link (per NIC).
    pub fn inter(&self) -> Link {
        self.inter
    }

    /// NICs per node.
    pub fn nics_per_node(&self) -> usize {
        self.nics_per_node
    }

    /// Effective inter-node bandwidth available to each accelerator:
    /// `nics_per_node · BW_nic / accels_per_node`.
    ///
    /// This is what makes case study II tick: one NIC shared by eight
    /// accelerators gives each an eighth of the inter-node bandwidth, while
    /// one accelerator per node with its own NIC gets all of it.
    pub fn inter_bandwidth_per_accel(&self) -> f64 {
        self.inter.bandwidth_bits_per_sec * self.nics_per_node as f64 / self.accels_per_node as f64
    }

    /// Copy with a different intra-node link (e.g. an optical substrate).
    pub fn with_intra(mut self, intra: Link) -> Self {
        self.intra = intra;
        self
    }

    /// Copy with a different inter-node link.
    pub fn with_inter(mut self, inter: Link) -> Self {
        self.inter = inter;
        self
    }

    /// Copy reshaped to `accels_per_node` accelerators and `nics_per_node`
    /// NICs per node while keeping the total accelerator count, as in the
    /// case study II sweep.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Incompatible`] if the total accelerator count is not
    /// divisible by the new per-node count.
    pub fn reshaped(&self, accels_per_node: usize, nics_per_node: usize) -> Result<Self> {
        let total = self.total_accelerators();
        if accels_per_node == 0 || !total.is_multiple_of(accels_per_node) {
            return Err(Error::incompatible(format!(
                "cannot reshape {total} accelerators into nodes of {accels_per_node}"
            )));
        }
        SystemSpec::new(
            total / accels_per_node,
            accels_per_node,
            self.intra,
            self.inter,
            nics_per_node,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> SystemSpec {
        SystemSpec::new(128, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8).unwrap()
    }

    #[test]
    fn totals_and_shares() {
        let s = cluster();
        assert_eq!(s.total_accelerators(), 1024);
        // 8 NICs for 8 accels => one NIC's bandwidth each.
        assert_eq!(s.inter_bandwidth_per_accel(), 2e11);
    }

    #[test]
    fn nic_sharing_divides_bandwidth() {
        let s = SystemSpec::new(128, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 1).unwrap();
        assert_eq!(s.inter_bandwidth_per_accel(), 2e11 / 8.0);
    }

    #[test]
    fn reshape_preserves_total() {
        let s = cluster();
        for (per_node, nodes) in [(1usize, 1024usize), (2, 512), (4, 256), (8, 128)] {
            let r = s.reshaped(per_node, per_node).unwrap();
            assert_eq!(r.num_nodes(), nodes);
            assert_eq!(r.total_accelerators(), 1024);
        }
        assert!(s.reshaped(3, 3).is_err());
        assert!(s.reshaped(0, 1).is_err());
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(SystemSpec::new(0, 8, Link::new(0.0, 1.0), Link::new(0.0, 1.0), 1).is_err());
        assert!(SystemSpec::new(1, 0, Link::new(0.0, 1.0), Link::new(0.0, 1.0), 1).is_err());
        assert!(SystemSpec::new(1, 1, Link::new(0.0, 1.0), Link::new(0.0, 1.0), 0).is_err());
        assert!(SystemSpec::new(1, 1, Link::new(-1.0, 1.0), Link::new(0.0, 1.0), 1).is_err());
        assert!(SystemSpec::new(1, 1, Link::new(0.0, 0.0), Link::new(0.0, 1.0), 1).is_err());
    }

    #[test]
    fn with_links_replace_cleanly() {
        let s = cluster();
        let optical = Link::new(1e-7, 1.6e13).with_topology(amped_topo::Topology::FullyConnected);
        let s2 = s.clone().with_intra(optical).with_inter(optical);
        assert_eq!(s2.intra(), optical);
        assert_eq!(s2.inter(), optical);
        assert_eq!(s2.total_accelerators(), s.total_accelerators());
    }

    #[test]
    fn serde_roundtrip() {
        let s = cluster();
        let json = serde_json::to_string(&s).unwrap();
        let back: SystemSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
