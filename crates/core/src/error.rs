//! Error types for the AMPeD model.

/// Error returned when a model, system, or parallelism configuration is
/// invalid or inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A single component is internally invalid (e.g. zero layers).
    InvalidConfig {
        /// Which component rejected its configuration.
        component: &'static str,
        /// Human-readable reason, lowercase, no trailing punctuation.
        reason: String,
    },
    /// Two components are individually valid but cannot be combined (e.g. a
    /// parallelism mapping that does not factor into the system shape).
    Incompatible {
        /// Human-readable reason, lowercase, no trailing punctuation.
        reason: String,
    },
    /// The user invoked a tool incorrectly (unknown flag, malformed value,
    /// missing argument) — bad input, not a bad configuration.
    Usage {
        /// Human-readable reason, lowercase, no trailing punctuation.
        reason: String,
    },
    /// A file operation failed (config not readable, output not writable).
    Io {
        /// The path involved, as the user supplied it.
        path: String,
        /// Human-readable reason, lowercase, no trailing punctuation.
        reason: String,
    },
}

impl Error {
    /// Convenience constructor for [`Error::InvalidConfig`].
    pub fn invalid(component: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidConfig {
            component,
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`Error::Incompatible`].
    pub fn incompatible(reason: impl Into<String>) -> Self {
        Error::Incompatible {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`Error::Usage`].
    pub fn usage(reason: impl Into<String>) -> Self {
        Error::Usage {
            reason: reason.into(),
        }
    }

    /// Convenience constructor for [`Error::Io`].
    pub fn io(path: impl Into<String>, reason: impl Into<String>) -> Self {
        Error::Io {
            path: path.into(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidConfig { component, reason } => {
                write!(f, "invalid {component} configuration: {reason}")
            }
            Error::Incompatible { reason } => write!(f, "incompatible configuration: {reason}"),
            Error::Usage { reason } => write!(f, "usage: {reason}"),
            Error::Io { path, reason } => write!(f, "io error ({path}): {reason}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used across the AMPeD workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_component_and_reason() {
        let e = Error::invalid("model", "hidden size must be positive");
        let s = e.to_string();
        assert!(s.contains("model") && s.contains("hidden size"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static + std::error::Error>() {}
        assert_bounds::<Error>();
    }

    #[test]
    fn incompatible_display() {
        let e = Error::incompatible("1024 workers but system has 512 accelerators");
        assert!(e.to_string().starts_with("incompatible"));
    }

    #[test]
    fn usage_and_io_display() {
        let e = Error::usage("unknown flag --frobnicate");
        assert_eq!(e.to_string(), "usage: unknown flag --frobnicate");
        let e = Error::io("cfg.json", "no such file");
        assert!(e.to_string().contains("cfg.json") && e.to_string().contains("no such file"));
    }
}
