//! Transformer model specification.
//!
//! Everything the op-count equations need: depth, width, attention shape,
//! sequence length, vocabulary, feed-forward expansion and the optional
//! mixture-of-experts configuration.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Mixture-of-experts configuration (GShard/GLaM style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MoeConfig {
    /// Number of experts per MoE layer (the paper's and GLaM's `E`).
    pub num_experts: usize,
    /// Experts activated per token (GLaM uses top-2).
    pub top_k: usize,
    /// Every `layer_interval`-th transformer layer is an MoE layer
    /// (GLaM interleaves: every other layer, i.e. `2`).
    pub layer_interval: usize,
    /// Token capacity headroom per expert; scales routed communication
    /// volume. `1.0` is perfect load balancing, which the paper assumes.
    pub capacity_factor: f64,
}

impl MoeConfig {
    /// GLaM-style config: `num_experts` experts, top-2 routing, every other
    /// layer, perfect load balance.
    pub fn glam(num_experts: usize) -> Self {
        MoeConfig {
            num_experts,
            top_k: 2,
            layer_interval: 2,
            capacity_factor: 1.0,
        }
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any count is zero, `top_k`
    /// exceeds `num_experts`, or the capacity factor is not positive.
    pub fn validate(&self) -> Result<()> {
        if self.num_experts == 0 || self.top_k == 0 || self.layer_interval == 0 {
            return Err(Error::invalid("moe", "counts must be positive"));
        }
        if self.top_k > self.num_experts {
            return Err(Error::invalid(
                "moe",
                format!(
                    "top_k ({}) cannot exceed num_experts ({})",
                    self.top_k, self.num_experts
                ),
            ));
        }
        if !(self.capacity_factor > 0.0 && self.capacity_factor.is_finite()) {
            return Err(Error::invalid("moe", "capacity factor must be positive"));
        }
        Ok(())
    }
}

/// The role of one layer in the stack, as seen by the op-count equations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// A standard transformer layer: attention + dense MLP.
    Dense,
    /// A transformer layer whose MLP is a mixture of experts.
    Moe,
    /// The output head: final layer-norm + logits projection + softmax.
    Head,
}

/// A transformer model specification.
///
/// Construct with [`TransformerModel::builder`]; presets for the paper's
/// models (minGPT, GPT-3 175B, Megatron 145B–1T, GLaM) live in
/// `amped-configs`.
///
/// # Example
///
/// ```
/// use amped_core::TransformerModel;
/// // GPT-3 175B shape.
/// let gpt3 = TransformerModel::builder("GPT-3 175B")
///     .layers(96)
///     .hidden_size(12288)
///     .heads(96)
///     .seq_len(2048)
///     .vocab_size(51200)
///     .build()
///     .unwrap();
/// assert!((gpt3.total_parameters() / 1e9 - 175.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransformerModel {
    name: String,
    num_layers: usize,
    hidden_size: usize,
    num_heads: usize,
    seq_len: usize,
    vocab_size: usize,
    ffn_mult: f64,
    moe: Option<MoeConfig>,
    include_head: bool,
}

impl TransformerModel {
    /// Start building a model named `name`.
    pub fn builder(name: impl Into<String>) -> TransformerModelBuilder {
        TransformerModelBuilder {
            model: TransformerModel {
                name: name.into(),
                num_layers: 0,
                hidden_size: 0,
                num_heads: 0,
                seq_len: 0,
                vocab_size: 0,
                ffn_mult: 4.0,
                moe: None,
                include_head: true,
            },
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of transformer layers (the paper's `L`).
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Hidden dimensionality (the paper's `h`).
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Attention heads per layer (the paper's `a`).
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Sequence length (the paper's `s`).
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Vocabulary size (`V`).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Feed-forward expansion ratio (4 for GPT-family models).
    pub fn ffn_mult(&self) -> f64 {
        self.ffn_mult
    }

    /// Mixture-of-experts configuration, if any.
    pub fn moe(&self) -> Option<&MoeConfig> {
        self.moe.as_ref()
    }

    /// Whether the output head (logits + softmax) is included in estimates.
    pub fn include_head(&self) -> bool {
        self.include_head
    }

    /// Whether layer `index` (0-based) is an MoE layer.
    pub fn is_moe_layer(&self, index: usize) -> bool {
        match &self.moe {
            // Interleave starting at layer 1 (GLaM replaces every *other*
            // FFN, with the first layer dense).
            Some(cfg) => (index + 1).is_multiple_of(cfg.layer_interval),
            None => false,
        }
    }

    /// The stack of layers as layer kinds, head last.
    pub fn layer_stack(&self) -> Vec<LayerKind> {
        let mut stack: Vec<LayerKind> = (0..self.num_layers)
            .map(|i| {
                if self.is_moe_layer(i) {
                    LayerKind::Moe
                } else {
                    LayerKind::Dense
                }
            })
            .collect();
        if self.include_head {
            stack.push(LayerKind::Head);
        }
        stack
    }

    /// Number of MoE layers in the stack.
    pub fn num_moe_layers(&self) -> usize {
        (0..self.num_layers).filter(|&i| self.is_moe_layer(i)).count()
    }

    /// Weights of one layer of the given kind (elements, not bytes).
    ///
    /// Dense: `4h² + 2·f·h²` (attention QKV+output, two MLP matrices) plus
    /// biases and layer norms. MoE: attention plus `E` expert MLPs plus the
    /// gate. Head: `h·V` logits matrix (counted once, untied).
    pub fn layer_weights(&self, kind: LayerKind) -> f64 {
        let h = self.hidden_size as f64;
        let f = self.ffn_mult;
        let attn = 4.0 * h * h + 4.0 * h; // QKV + output proj + biases
        let ln = 4.0 * h; // two layer norms, scale + shift each
        match kind {
            LayerKind::Dense => attn + ln + 2.0 * f * h * h + (f + 1.0) * h,
            LayerKind::Moe => {
                let cfg = self.moe.expect("moe layer requires moe config");
                let e = cfg.num_experts as f64;
                attn + ln + e * (2.0 * f * h * h + (f + 1.0) * h) + h * e
            }
            LayerKind::Head => h * self.vocab_size as f64 + 2.0 * h,
        }
    }

    /// Embedding table weights: token embeddings plus learned positions.
    pub fn embedding_parameters(&self) -> f64 {
        (self.vocab_size as f64 + self.seq_len as f64) * self.hidden_size as f64
    }

    /// Total trainable parameters, embeddings included.
    pub fn total_parameters(&self) -> f64 {
        let layers: f64 = self
            .layer_stack()
            .iter()
            .filter(|k| **k != LayerKind::Head)
            .map(|&k| self.layer_weights(k))
            .sum();
        let head = if self.include_head {
            self.layer_weights(LayerKind::Head)
        } else {
            0.0
        };
        layers + head + self.embedding_parameters()
    }

    /// Parameters of the dense-equivalent model (each MoE layer counted as
    /// if its MLP were a single expert) — the "activated" parameter count
    /// MoE papers quote.
    pub fn activated_parameters(&self) -> f64 {
        let h = self.hidden_size as f64;
        let f = self.ffn_mult;
        let per_dense = self.layer_weights(LayerKind::Dense);
        let k = self.moe.map_or(1.0, |m| m.top_k as f64);
        let per_moe_active = 4.0 * h * h + 8.0 * h + k * (2.0 * f * h * h + (f + 1.0) * h);
        let n_moe = self.num_moe_layers() as f64;
        let n_dense = (self.num_layers - self.num_moe_layers()) as f64;
        n_dense * per_dense
            + n_moe * per_moe_active
            + self.embedding_parameters()
            + if self.include_head {
                self.layer_weights(LayerKind::Head)
            } else {
                0.0
            }
    }
}

/// Builder for [`TransformerModel`]; see the type-level example.
#[derive(Debug, Clone)]
pub struct TransformerModelBuilder {
    model: TransformerModel,
}

impl TransformerModelBuilder {
    /// Number of transformer layers.
    pub fn layers(&mut self, n: usize) -> &mut Self {
        self.model.num_layers = n;
        self
    }

    /// Hidden dimensionality.
    pub fn hidden_size(&mut self, h: usize) -> &mut Self {
        self.model.hidden_size = h;
        self
    }

    /// Attention heads per layer.
    pub fn heads(&mut self, a: usize) -> &mut Self {
        self.model.num_heads = a;
        self
    }

    /// Sequence length.
    pub fn seq_len(&mut self, s: usize) -> &mut Self {
        self.model.seq_len = s;
        self
    }

    /// Vocabulary size.
    pub fn vocab_size(&mut self, v: usize) -> &mut Self {
        self.model.vocab_size = v;
        self
    }

    /// Feed-forward expansion ratio (defaults to 4).
    pub fn ffn_mult(&mut self, f: f64) -> &mut Self {
        self.model.ffn_mult = f;
        self
    }

    /// Enable mixture-of-experts layers.
    pub fn moe(&mut self, cfg: MoeConfig) -> &mut Self {
        self.model.moe = Some(cfg);
        self
    }

    /// Include or exclude the output head from estimates (default: include).
    pub fn include_head(&mut self, yes: bool) -> &mut Self {
        self.model.include_head = yes;
        self
    }

    /// Validate and produce the model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any dimension is zero, heads do
    /// not divide the hidden size, or the MoE config is invalid.
    pub fn build(&self) -> Result<TransformerModel> {
        let m = &self.model;
        let bad = |reason: String| Err(Error::invalid("model", reason));
        if m.num_layers == 0 {
            return bad("layer count must be positive".into());
        }
        if m.hidden_size == 0 || m.num_heads == 0 || m.seq_len == 0 || m.vocab_size == 0 {
            return bad("all model dimensions must be positive".into());
        }
        if !m.hidden_size.is_multiple_of(m.num_heads) {
            return bad(format!(
                "heads ({}) must divide hidden size ({})",
                m.num_heads, m.hidden_size
            ));
        }
        if !(m.ffn_mult > 0.0 && m.ffn_mult.is_finite()) {
            return bad("ffn multiplier must be positive".into());
        }
        if let Some(moe) = &m.moe {
            moe.validate()?;
        }
        Ok(m.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpt3() -> TransformerModel {
        TransformerModel::builder("GPT-3")
            .layers(96)
            .hidden_size(12288)
            .heads(96)
            .seq_len(2048)
            .vocab_size(51200)
            .build()
            .unwrap()
    }

    #[test]
    fn gpt3_parameter_count() {
        // 96 * 12h^2 = 174.0B + 0.63B embeddings ~ 175B
        let p = gpt3().total_parameters();
        assert!((p / 1e9 - 175.0).abs() < 5.0, "params = {p:.3e}");
    }

    #[test]
    fn mingpt_parameter_count() {
        // minGPT: 12 layers, h = 768 -> ~85M transformer parameters.
        let m = TransformerModel::builder("minGPT")
            .layers(12)
            .hidden_size(768)
            .heads(12)
            .seq_len(1024)
            .vocab_size(50257)
            .include_head(false)
            .build()
            .unwrap();
        let transformer_only = m.total_parameters() - m.embedding_parameters();
        assert!(
            (transformer_only / 1e6 - 85.0).abs() < 2.0,
            "got {transformer_only:.3e}"
        );
    }

    #[test]
    fn layer_stack_interleaves_moe() {
        let m = TransformerModel::builder("glam-ish")
            .layers(8)
            .hidden_size(1024)
            .heads(16)
            .seq_len(512)
            .vocab_size(32000)
            .moe(MoeConfig::glam(16))
            .build()
            .unwrap();
        let stack = m.layer_stack();
        assert_eq!(stack.len(), 9); // 8 layers + head
        assert_eq!(m.num_moe_layers(), 4);
        assert_eq!(stack[0], LayerKind::Dense);
        assert_eq!(stack[1], LayerKind::Moe);
        assert_eq!(stack[8], LayerKind::Head);
    }

    #[test]
    fn moe_total_exceeds_activated() {
        let m = TransformerModel::builder("glam-ish")
            .layers(8)
            .hidden_size(1024)
            .heads(16)
            .seq_len(512)
            .vocab_size(32000)
            .moe(MoeConfig::glam(64))
            .build()
            .unwrap();
        assert!(m.total_parameters() > 10.0 * m.activated_parameters() / 2.0);
        assert!(m.activated_parameters() < m.total_parameters());
    }

    #[test]
    fn dense_model_activated_equals_total() {
        let m = gpt3();
        let diff = (m.total_parameters() - m.activated_parameters()).abs();
        assert!(diff / m.total_parameters() < 1e-12);
    }

    #[test]
    fn builder_validation() {
        assert!(TransformerModel::builder("x").build().is_err());
        assert!(TransformerModel::builder("bad-heads")
            .layers(2)
            .hidden_size(100)
            .heads(3)
            .seq_len(8)
            .vocab_size(10)
            .build()
            .is_err());
        let mut b = TransformerModel::builder("bad-moe");
        b.layers(2)
            .hidden_size(96)
            .heads(3)
            .seq_len(8)
            .vocab_size(10)
            .moe(MoeConfig {
                num_experts: 2,
                top_k: 4,
                layer_interval: 2,
                capacity_factor: 1.0,
            });
        assert!(b.build().is_err());
    }

    #[test]
    fn head_toggle_changes_stack() {
        let m = TransformerModel::builder("no-head")
            .layers(4)
            .hidden_size(64)
            .heads(4)
            .seq_len(16)
            .vocab_size(100)
            .include_head(false)
            .build()
            .unwrap();
        assert_eq!(m.layer_stack().len(), 4);
        assert!(!m.layer_stack().contains(&LayerKind::Head));
    }

    #[test]
    fn serde_roundtrip() {
        let m = gpt3();
        let json = serde_json::to_string(&m).unwrap();
        let back: TransformerModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
