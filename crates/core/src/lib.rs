//! # amped-core — the AMPeD analytical model
//!
//! A Rust implementation of **AMPeD**, the analytical model for performance
//! in distributed training of transformers (Moolchandani et al.,
//! ISPASS 2023). Given
//!
//! * a [`TransformerModel`] (depth, width, heads, sequence, vocabulary,
//!   optional mixture-of-experts),
//! * an [`AcceleratorSpec`] (clock, cores, MAC/non-linear functional units
//!   and their native precisions — the knobs of the paper's Table IV),
//! * a [`SystemSpec`] (nodes × accelerators, intra-/inter-node links), and
//! * a [`Parallelism`] mapping (intra/inter-node degrees of tensor,
//!   pipeline and data parallelism, microbatching, ZeRO),
//!
//! the [`Estimator`] predicts per-iteration and end-to-end training time
//! with a full component [`Breakdown`] (Eq. 1–12 of the paper), the
//! achieved TFLOP/s per accelerator, and throughput metrics.
//!
//! # Quick start
//!
//! ```
//! use amped_core::prelude::*;
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! // A 1.3B-parameter GPT on one 8-GPU node, tensor-parallel inside the node.
//! let model = TransformerModel::builder("gpt-1.3b")
//!     .layers(24).hidden_size(2048).heads(16).seq_len(1024).vocab_size(50257)
//!     .build()?;
//! let a100 = AcceleratorSpec::builder("A100")
//!     .frequency_hz(1.41e9).cores(108).mac_units(4, 512, 8)
//!     .nonlin_units(192, 4, 32).memory(80e9, 2.0e12)
//!     .build()?;
//! let node = SystemSpec::new(1, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
//! let mapping = Parallelism::builder().tp(8, 1).build()?;
//!
//! let estimate = Estimator::new(&model, &a100, &node, &mapping)
//!     .estimate(&TrainingConfig::new(512, 1000)?)?;
//!
//! println!("{estimate}");
//! assert!(estimate.tflops_per_gpu > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`model`] | transformer specification and parameter counting |
//! | [`counts`] | per-layer MAC / non-linear / tensor-size counts |
//! | [`accelerator`] | Eq. 3–4 accelerator throughput model |
//! | [`network`] | node/link system architecture |
//! | [`parallelism`] | TP/PP/DP/MoE mapping, microbatching, ZeRO |
//! | [`efficiency`] | the `eff(ub)` microbatch-efficiency models |
//! | [`engine`] | the Eq. 1 estimator and its breakdown |
//! | [`inference`] | serving-workload configuration (prefill/decode/batch) |
//! | [`metrics`] | model FLOPs and TFLOP/s/GPU |
//! | [`precision`] | operand bit-widths (`S_p`, `S_act`, …) |
//! | [`resilience`] | checkpoint/restart expected-time and Young/Daly interval |
//! | [`training`] | batch size and batch count of a run |
//! | [`units`] | `Seconds` and human formatting helpers |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod counts;
pub mod diagnostics;
pub mod efficiency;
pub mod engine;
pub mod error;
pub mod hetero;
pub mod inference;
pub mod metrics;
pub mod model;
pub mod network;
pub mod parallelism;
pub mod precision;
pub mod resilience;
pub mod roofline;
pub mod sensitivity;
pub mod training;
pub mod units;

pub use accelerator::{AcceleratorSpec, AcceleratorSpecBuilder};
pub use diagnostics::{check_scenario, Diagnostic, Severity};
pub use efficiency::EfficiencyModel;
pub use engine::{
    context_key, AnalyticalBackend, BatchEvaluator, Breakdown, BreakdownFidelity, BubbleAccounting,
    CacheLease, CachePool, CostBackend, DetailedEstimate, EngineOptions, Estimate, EstimateCache,
    Estimator, LayerEstimate, ObservedBackend, Scenario,
};
pub use error::{Error, Result};
pub use inference::InferenceConfig;
pub use model::{LayerKind, MoeConfig, TransformerModel, TransformerModelBuilder};
pub use network::{Link, SystemSpec};
pub use parallelism::{MicrobatchPolicy, Parallelism, ParallelismBuilder, ZeroConfig, ZeroStage};
pub use precision::Precision;
pub use resilience::{
    CorrelatedReport, CorrelatedResilience, DomainPlacement, ElasticParams, FailureDomainTree,
    ResilienceParams, ResilienceReport, DEFAULT_NODE_MTBF_HOURS,
};
pub use sensitivity::{Knob, SensitivityAnalysis, SensitivityResult};
pub use training::TrainingConfig;
pub use units::Seconds;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::accelerator::AcceleratorSpec;
    pub use crate::efficiency::EfficiencyModel;
    pub use crate::engine::{
        AnalyticalBackend, Breakdown, BreakdownFidelity, BubbleAccounting, CacheLease, CachePool,
        CostBackend, DetailedEstimate, EngineOptions, Estimate, EstimateCache, Estimator,
        LayerEstimate, Scenario,
    };
    pub use crate::inference::InferenceConfig;
    pub use crate::model::{LayerKind, MoeConfig, TransformerModel};
    pub use crate::network::{Link, SystemSpec};
    pub use crate::parallelism::{MicrobatchPolicy, Parallelism, ZeroConfig, ZeroStage};
    pub use crate::precision::Precision;
    pub use crate::resilience::{
        CorrelatedReport, CorrelatedResilience, DomainPlacement, ElasticParams, FailureDomainTree,
        ResilienceParams, ResilienceReport,
    };
    pub use crate::training::TrainingConfig;
    pub use crate::units::Seconds;
}
