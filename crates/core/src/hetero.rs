//! Heterogeneous pipelines — the extension the paper's conclusion names
//! ("AMPeD can be easily extended for heterogeneous accelerators").
//!
//! A [`HeteroPipeline`] assigns each pipeline stage its own
//! [`AcceleratorSpec`] (e.g. the first stages on older V100s, the rest on
//! A100s). The pipeline clocks at its *slowest* stage: per-microbatch stage
//! times are computed per accelerator, the steady-state throughput is set
//! by the bottleneck, and the standard GPipe bubble applies on top.
//!
//! Tensor and data parallelism within a stage follow the homogeneous model
//! (every accelerator of one stage is identical); only the pipeline
//! dimension may mix hardware.

use serde::{Deserialize, Serialize};

use crate::accelerator::AcceleratorSpec;
use crate::counts::LayerCounts;
use crate::efficiency::EfficiencyModel;
use crate::error::{Error, Result};
use crate::model::{LayerKind, TransformerModel};
use crate::precision::Precision;
use crate::training::TrainingConfig;
use crate::units::Seconds;

/// One pipeline stage: an accelerator type and how many contiguous layers
/// it carries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroStage {
    /// The hardware this stage runs on.
    pub accelerator: AcceleratorSpec,
    /// Number of layer-stack entries assigned to this stage.
    pub num_layers: usize,
}

/// The result of a heterogeneous-pipeline estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroEstimate {
    /// Time for one optimizer step.
    pub time_per_iteration: Seconds,
    /// End-to-end time for the configured batches.
    pub total_time: Seconds,
    /// Per-microbatch forward+backward time of each stage, in pipeline
    /// order.
    pub stage_times: Vec<f64>,
    /// Index of the slowest (throughput-setting) stage.
    pub bottleneck_stage: usize,
    /// Fraction of the iteration lost to bubbles.
    pub bubble_fraction: f64,
}

/// A pipeline of possibly different accelerators.
///
/// # Example
///
/// ```
/// use amped_core::hetero::{HeteroPipeline, HeteroStage};
/// use amped_core::{AcceleratorSpec, TrainingConfig, TransformerModel};
///
/// # fn main() -> Result<(), amped_core::Error> {
/// let model = TransformerModel::builder("m")
///     .layers(8).hidden_size(512).heads(8).seq_len(128).vocab_size(1000)
///     .include_head(false)
///     .build()?;
/// let old = AcceleratorSpec::builder("old")
///     .frequency_hz(1e9).cores(16).mac_units(4, 64, 16)
///     .nonlin_units(16, 8, 32).memory(16e9, 9e11).build()?;
/// let new = AcceleratorSpec::builder("new")
///     .frequency_hz(1.4e9).cores(108).mac_units(4, 512, 8)
///     .nonlin_units(192, 4, 32).memory(80e9, 2e12).build()?;
/// let pipeline = HeteroPipeline::new(
///     &model,
///     vec![
///         HeteroStage { accelerator: old, num_layers: 4 },
///         HeteroStage { accelerator: new, num_layers: 4 },
///     ],
/// )?;
/// let e = pipeline.estimate(&TrainingConfig::new(64, 1)?, 16)?;
/// assert_eq!(e.bottleneck_stage, 0); // the old card gates the pipe
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HeteroPipeline<'a> {
    model: &'a TransformerModel,
    stages: Vec<HeteroStage>,
    precision: Precision,
    efficiency: EfficiencyModel,
    backward_factor: f64,
}

impl<'a> HeteroPipeline<'a> {
    /// Build a pipeline; stage layer counts must cover the model's layer
    /// stack exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Incompatible`] when the stage layer counts do not
    /// sum to the stack length, or any stage is empty.
    pub fn new(model: &'a TransformerModel, stages: Vec<HeteroStage>) -> Result<Self> {
        let total: usize = stages.iter().map(|s| s.num_layers).sum();
        let stack_len = model.layer_stack().len();
        if total != stack_len {
            return Err(Error::incompatible(format!(
                "stages cover {total} layers but the model's stack has {stack_len}"
            )));
        }
        if stages.iter().any(|s| s.num_layers == 0) {
            return Err(Error::incompatible(
                "every pipeline stage needs at least one layer",
            ));
        }
        Ok(HeteroPipeline {
            model,
            stages,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            backward_factor: 2.0,
        })
    }

    /// Override the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the efficiency model (shared by all stages).
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Per-microbatch forward+backward time of each stage.
    fn stage_times(&self, ub: f64) -> Vec<f64> {
        let eff = self.efficiency.eval(ub);
        let stack = self.model.layer_stack();
        let mut out = Vec::with_capacity(self.stages.len());
        let mut cursor = 0;
        for stage in &self.stages {
            let layers: &[LayerKind] = &stack[cursor..cursor + stage.num_layers];
            cursor += stage.num_layers;
            let a = &stage.accelerator;
            let c_mac = a.c_mac(eff);
            let c_nonlin = a.c_nonlin();
            let mac_scale = a.mac_precision_scale(self.precision.mac_operand_bits());
            let nonlin_scale = a.nonlin_precision_scale(self.precision.nonlin_bits);
            let t: f64 = layers
                .iter()
                .map(|&kind| {
                    let c = LayerCounts::for_layer(self.model, kind, ub);
                    (1.0 + self.backward_factor)
                        * (c.macs_fwd * c_mac * mac_scale
                            + c.nonlin_fwd * c_nonlin * nonlin_scale)
                })
                .sum();
            out.push(t);
        }
        out
    }

    /// Estimate one run: `num_microbatches` microbatches pipeline through
    /// the stages; steady-state throughput is set by the slowest stage.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero microbatch count.
    pub fn estimate(
        &self,
        training: &TrainingConfig,
        num_microbatches: usize,
    ) -> Result<HeteroEstimate> {
        if num_microbatches == 0 {
            return Err(Error::invalid("hetero", "need at least one microbatch"));
        }
        self.precision.validate()?;
        self.efficiency.validate()?;
        let ub = training.global_batch() as f64 / num_microbatches as f64;
        let stage_times = self.stage_times(ub);
        let (bottleneck_stage, &t_max) = stage_times
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("at least one stage");
        // Fill + drain pass through every stage once; steady state clocks
        // at the bottleneck.
        let fill_drain: f64 = stage_times.iter().sum();
        let time_per_iteration = fill_drain + (num_microbatches as f64 - 1.0) * t_max;
        // Busy fraction: each stage works m·t_s of the p·T device-seconds.
        let busy: f64 = stage_times.iter().map(|t| t * num_microbatches as f64).sum();
        let bubble_fraction =
            1.0 - busy / (time_per_iteration * stage_times.len() as f64);
        Ok(HeteroEstimate {
            time_per_iteration: Seconds::new(time_per_iteration),
            total_time: Seconds::new(time_per_iteration * training.num_batches() as f64),
            stage_times,
            bottleneck_stage,
            bubble_fraction: bubble_fraction.clamp(0.0, 1.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransformerModel {
        TransformerModel::builder("hetero-m")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(128)
            .vocab_size(1000)
            .include_head(false)
            .build()
            .unwrap()
    }

    fn accel(name: &str, freq: f64) -> AcceleratorSpec {
        AcceleratorSpec::builder(name)
            .frequency_hz(freq)
            .cores(32)
            .mac_units(4, 128, 8)
            .nonlin_units(32, 8, 32)
            .memory(32e9, 1e12)
            .build()
            .unwrap()
    }

    #[test]
    fn slow_stage_sets_the_pace() {
        let m = model();
        let p = HeteroPipeline::new(
            &m,
            vec![
                HeteroStage {
                    accelerator: accel("slow", 5e8),
                    num_layers: 4,
                },
                HeteroStage {
                    accelerator: accel("fast", 2e9),
                    num_layers: 4,
                },
            ],
        )
        .unwrap();
        let e = p
            .estimate(&TrainingConfig::new(64, 1).unwrap(), 16)
            .unwrap();
        assert_eq!(e.bottleneck_stage, 0);
        assert!(e.stage_times[0] > e.stage_times[1]);
        // Steady state ~ m * t_slow.
        assert!(e.time_per_iteration.get() > 15.0 * e.stage_times[0]);
    }

    #[test]
    fn rebalancing_layers_towards_fast_hardware_helps() {
        let m = model();
        let make = |slow_layers: usize| {
            HeteroPipeline::new(
                &m,
                vec![
                    HeteroStage {
                        accelerator: accel("slow", 5e8),
                        num_layers: slow_layers,
                    },
                    HeteroStage {
                        accelerator: accel("fast", 2e9),
                        num_layers: 8 - slow_layers,
                    },
                ],
            )
            .unwrap()
            .estimate(&TrainingConfig::new(64, 1).unwrap(), 16)
            .unwrap()
        };
        // Giving the slow card fewer layers (2 instead of 4) must be faster.
        assert!(make(2).time_per_iteration < make(4).time_per_iteration);
    }

    #[test]
    fn homogeneous_pipeline_is_balanced() {
        let m = model();
        let p = HeteroPipeline::new(
            &m,
            vec![
                HeteroStage {
                    accelerator: accel("a", 1e9),
                    num_layers: 4,
                },
                HeteroStage {
                    accelerator: accel("a", 1e9),
                    num_layers: 4,
                },
            ],
        )
        .unwrap();
        let e = p
            .estimate(&TrainingConfig::new(64, 1).unwrap(), 32)
            .unwrap();
        assert!((e.stage_times[0] - e.stage_times[1]).abs() < 1e-12);
        // Many microbatches => small bubble fraction.
        assert!(e.bubble_fraction < 0.1, "bubble = {}", e.bubble_fraction);
    }

    #[test]
    fn coverage_is_validated() {
        let m = model();
        assert!(HeteroPipeline::new(
            &m,
            vec![HeteroStage {
                accelerator: accel("a", 1e9),
                num_layers: 5,
            }],
        )
        .is_err());
        let empty_stage = HeteroPipeline::new(
            &m,
            vec![
                HeteroStage {
                    accelerator: accel("a", 1e9),
                    num_layers: 8,
                },
                HeteroStage {
                    accelerator: accel("b", 1e9),
                    num_layers: 0,
                },
            ],
        );
        assert!(empty_stage.is_err());
        let p = HeteroPipeline::new(
            &m,
            vec![HeteroStage {
                accelerator: accel("a", 1e9),
                num_layers: 8,
            }],
        )
        .unwrap();
        assert!(p.estimate(&TrainingConfig::new(8, 1).unwrap(), 0).is_err());
    }
}
