//! A predictive model for `eff(ub)` — the future work the paper's
//! validation section closes with ("A predictive model for eff(ub) is left
//! for future work").
//!
//! The paper *fits* `eff(ub) = a·ub/(b+ub)` to measurements. This module
//! *derives* the curve from first principles with a roofline argument: a
//! GEMM of shape `(m × k) · (k × n)` performs `2mkn` FLOPs and moves
//! `(mk + kn + mn)` operands through device memory, so its attainable
//! fraction of peak is
//!
//! ```text
//! eff = min(1, intensity / balance),
//! intensity = 2mkn / ((mk + kn + mn) · bytes_per_operand)   [FLOP/byte]
//! balance   = peak_flops / memory_bandwidth                  [FLOP/byte]
//! ```
//!
//! Aggregated over a transformer layer's GEMMs at microbatch `ub`, this
//! yields an `eff(ub)` curve with exactly the saturating shape the paper
//! observed empirically — and it explains *why* `a` and `b` depend on the
//! application (the GEMM shapes) and the hardware (the machine balance).

use crate::accelerator::AcceleratorSpec;
use crate::efficiency::EfficiencyModel;
use crate::error::Result;
use crate::model::TransformerModel;
use crate::precision::Precision;

/// The machine balance of `accel` at the given operand width:
/// peak FLOP/s over memory bytes/s.
pub fn machine_balance(accel: &AcceleratorSpec, operand_bits: u32) -> f64 {
    accel.peak_flops_per_sec(operand_bits) / accel.memory_bandwidth_bytes_per_sec()
}

/// Attainable efficiency of one `(m × k) · (k × n)` GEMM under the roofline.
///
/// Returns a value in `(0, 1]`; degenerate shapes yield the memory-bound
/// limit.
pub fn gemm_efficiency(m: f64, k: f64, n: f64, bytes_per_operand: f64, balance: f64) -> f64 {
    let flops = 2.0 * m * k * n;
    let bytes = (m * k + k * n + m * n) * bytes_per_operand;
    if bytes <= 0.0 || balance <= 0.0 {
        return 1.0;
    }
    let intensity = flops / bytes;
    (intensity / balance).min(1.0)
}

/// The GEMM shapes of one transformer layer at microbatch `ub` and
/// sequence length `s` (tokens `t = ub·s`): QKV, attention scores,
/// attention-times-values, output projection and the two MLP matrices,
/// with their FLOP weights. Training evaluates at the model's context;
/// inference prefill runs the same GEMMs over the prompt.
fn layer_gemms_with_seq(model: &TransformerModel, ub: f64, s: f64) -> Vec<(f64, f64, f64)> {
    let h = model.hidden_size() as f64;
    let a = model.num_heads() as f64;
    let f = model.ffn_mult();
    let t = ub * s;
    vec![
        (t, h, 3.0 * h),       // fused QKV projection
        (s, h / a, s),         // scores, per head (shape matters, not count)
        (s, s, h / a),         // attention · V, per head
        (t, h, h),             // output projection
        (t, h, f * h),         // MLP up
        (t, f * h, h),         // MLP down
    ]
}

/// Derive the whole-layer efficiency at microbatch `ub`: the FLOP-weighted
/// harmonic composition of per-GEMM rooflines (time adds, so efficiencies
/// combine harmonically).
pub fn layer_efficiency(
    model: &TransformerModel,
    accel: &AcceleratorSpec,
    precision: Precision,
    ub: f64,
) -> f64 {
    composite_efficiency(model, accel, precision, ub, model.seq_len() as f64)
}

/// FLOP-weighted harmonic composition of per-GEMM rooflines for one layer
/// at microbatch `ub` and sequence length `s`.
fn composite_efficiency(
    model: &TransformerModel,
    accel: &AcceleratorSpec,
    precision: Precision,
    ub: f64,
    s: f64,
) -> f64 {
    let balance = machine_balance(accel, precision.mac_operand_bits());
    let bytes = precision.act_bits as f64 / 8.0;
    let mut total_flops = 0.0;
    let mut total_time_units = 0.0; // flops / eff
    for (m, k, n) in layer_gemms_with_seq(model, ub.max(1.0 / s), s) {
        let flops = 2.0 * m * k * n;
        let eff = gemm_efficiency(m, k, n, bytes, balance);
        total_flops += flops;
        total_time_units += flops / eff;
    }
    (total_flops / total_time_units).clamp(1e-6, 1.0)
}

/// Attainable efficiency of an inference *prefill* pass: the roofline of
/// [`layer_efficiency`] evaluated over `batch` prompts of `prompt_tokens`
/// each, instead of the model's training context. Prefill is the
/// compute-bound phase of serving — long prompts at any batch run fat
/// GEMMs — and this is its ceiling.
pub fn prefill_efficiency(
    model: &TransformerModel,
    accel: &AcceleratorSpec,
    precision: Precision,
    batch: f64,
    prompt_tokens: f64,
) -> f64 {
    composite_efficiency(model, accel, precision, batch, prompt_tokens.max(1.0))
}

/// Build a table-form [`EfficiencyModel`] by sampling the roofline at
/// power-of-two microbatch sizes up to `max_ub`.
///
/// # Errors
///
/// Propagates validation errors from the constructed model (not expected
/// for positive `max_ub`).
///
/// # Example
///
/// ```
/// use amped_core::roofline::efficiency_from_roofline;
/// use amped_core::{AcceleratorSpec, Precision, TransformerModel};
///
/// # fn main() -> Result<(), amped_core::Error> {
/// let model = TransformerModel::builder("m")
///     .layers(4).hidden_size(1024).heads(16).seq_len(512).vocab_size(32000)
///     .build()?;
/// let a100 = AcceleratorSpec::builder("A100")
///     .frequency_hz(1.41e9).cores(108).mac_units(4, 512, 8)
///     .nonlin_units(192, 4, 32).memory(80e9, 2.0e12)
///     .build()?;
/// let eff = efficiency_from_roofline(&model, &a100, Precision::fp16(), 256)?;
/// assert!(eff.eval(64.0) > eff.eval(1.0)); // saturating, like the paper's fit
/// # Ok(())
/// # }
/// ```
pub fn efficiency_from_roofline(
    model: &TransformerModel,
    accel: &AcceleratorSpec,
    precision: Precision,
    max_ub: usize,
) -> Result<EfficiencyModel> {
    let mut points = Vec::new();
    let mut ub = 1usize;
    while ub <= max_ub.max(1) {
        points.push((
            ub as f64,
            layer_efficiency(model, accel, precision, ub as f64),
        ));
        ub *= 2;
    }
    let table = EfficiencyModel::Table(points);
    table.validate()?;
    Ok(table)
}

/// Derive the paper's `a·ub/(b+ub)` constants from first principles.
///
/// The paper cites NVIDIA's GEMM-efficiency guide for the functional form;
/// its origin is fixed per-kernel overhead: a microbatch launches a fixed
/// number of kernels whose setup cost does not scale with `ub`, so
///
/// ```text
/// t(ub) = work_per_sample · ub / a  +  kernels · overhead
/// eff(ub) = peak-normalized useful work / t(ub) = a · ub / (ub + b),
/// b = a · kernels · overhead / work_per_sample
/// ```
///
/// with `a` the roofline ceiling from [`layer_efficiency`] at large `ub`.
///
/// # Panics
///
/// Panics if `work_time_per_sample_s` is not positive.
pub fn derive_saturating(
    roofline_ceiling: f64,
    kernel_overhead_s: f64,
    kernels_per_microbatch: f64,
    work_time_per_sample_s: f64,
) -> EfficiencyModel {
    assert!(
        work_time_per_sample_s > 0.0,
        "per-sample work time must be positive"
    );
    let a = roofline_ceiling.clamp(1e-6, 1.0);
    let b = a * kernels_per_microbatch * kernel_overhead_s / work_time_per_sample_s;
    EfficiencyModel::saturating(a, b.max(0.0), 1e-6, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> AcceleratorSpec {
        AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .build()
            .unwrap()
    }

    fn gpt(h: usize, heads: usize, s: usize) -> TransformerModel {
        TransformerModel::builder("roofline-m")
            .layers(4)
            .hidden_size(h)
            .heads(heads)
            .seq_len(s)
            .vocab_size(32000)
            .build()
            .unwrap()
    }

    #[test]
    fn balance_matches_datasheet_arithmetic() {
        // A100: 312 TFLOP/s fp16 over 2 TB/s = 156 FLOP/byte.
        let b = machine_balance(&a100(), 16);
        assert!((b - 156.0).abs() < 2.0, "balance = {b}");
    }

    #[test]
    fn square_gemms_become_compute_bound() {
        let balance = 156.0;
        // Tiny GEMM: memory bound.
        let small = gemm_efficiency(32.0, 32.0, 32.0, 2.0, balance);
        assert!(small < 0.2);
        // Huge GEMM: compute bound.
        let big = gemm_efficiency(8192.0, 8192.0, 8192.0, 2.0, balance);
        assert!((big - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derived_curve_is_saturating_like_the_papers_fit() {
        let m = gpt(4096, 32, 1024);
        let a = a100();
        let mut prev = 0.0;
        let mut gains = Vec::new();
        for ub in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let e = layer_efficiency(&m, &a, Precision::fp16(), ub);
            assert!(e > prev, "monotone: eff({ub}) = {e}");
            gains.push(e - prev);
            prev = e;
        }
        assert!(
            gains.last().unwrap() < &(gains[1] * 0.9),
            "diminishing returns: {gains:?}"
        );
    }

    #[test]
    fn wider_models_saturate_at_smaller_microbatches() {
        // The paper notes a and b are application-dependent; the roofline
        // explains it: fatter GEMMs (bigger h) reach compute-bound sooner.
        let a = a100();
        let narrow = layer_efficiency(&gpt(1024, 16, 512), &a, Precision::fp16(), 4.0);
        let wide = layer_efficiency(&gpt(8192, 64, 512), &a, Precision::fp16(), 4.0);
        assert!(wide > narrow, "wide {wide} vs narrow {narrow}");
    }

    #[test]
    fn table_constructor_validates() {
        let m = gpt(2048, 16, 512);
        let eff = efficiency_from_roofline(&m, &a100(), Precision::fp16(), 128).unwrap();
        eff.validate().unwrap();
        assert!(eff.eval(128.0) <= 1.0);
        assert!(eff.eval(0.5) > 0.0);
    }

    #[test]
    fn derived_saturating_has_the_papers_form() {
        // a = roofline ceiling; b grows with overhead and shrinks with work.
        let m = derive_saturating(0.9, 5e-6, 12.0, 3e-5);
        m.validate().unwrap();
        if let EfficiencyModel::Saturating { a, b, .. } = m {
            assert!((a - 0.9).abs() < 1e-12);
            assert!((b - 0.9 * 12.0 * 5e-6 / 3e-5).abs() < 1e-9);
        } else {
            panic!("expected saturating form");
        }
        // Heavier per-sample work (bigger model slice) saturates sooner.
        let heavy = derive_saturating(0.9, 5e-6, 12.0, 3e-4);
        assert!(heavy.eval(2.0) > m.eval(2.0));
    }

    #[test]
    fn prefill_efficiency_matches_training_roofline_at_the_training_context() {
        // With the prompt equal to the model's training context, the
        // prefill roofline is the training layer roofline, bit for bit.
        let m = gpt(2048, 16, 512);
        let a = a100();
        for b in [1.0, 4.0, 16.0] {
            let train = layer_efficiency(&m, &a, Precision::fp16(), b);
            let serve = prefill_efficiency(&m, &a, Precision::fp16(), b, 512.0);
            assert_eq!(train.to_bits(), serve.to_bits());
        }
    }

    #[test]
    fn longer_prompts_prefill_more_efficiently() {
        // Fatter prefill GEMMs climb the roofline, like larger microbatches
        // do in training.
        let m = gpt(2048, 16, 2048);
        let a = a100();
        let short = prefill_efficiency(&m, &a, Precision::fp16(), 1.0, 64.0);
        let long = prefill_efficiency(&m, &a, Precision::fp16(), 1.0, 2048.0);
        assert!(long > short, "long {long} vs short {short}");
    }

    #[test]
    fn degenerate_gemm_is_safe() {
        assert_eq!(gemm_efficiency(0.0, 0.0, 0.0, 2.0, 156.0), 1.0);
        assert_eq!(gemm_efficiency(10.0, 10.0, 10.0, 2.0, 0.0), 1.0);
    }
}
