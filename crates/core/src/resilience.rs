//! Expected time-to-train under failures: checkpoint/restart goodput.
//!
//! The Eq. 1 estimator (and the simulator behind the same
//! [`CostBackend`](crate::CostBackend) contract) predicts the time of a run
//! in which every device and link stays healthy. At the multi-week,
//! thousand-accelerator scale the paper targets, that is not the time a
//! run actually takes: devices fail, the job restarts from its last
//! checkpoint, and the checkpoints themselves cost time. This module layers
//! the standard renewal-theory model of periodic checkpointing on top of
//! any fault-free estimate:
//!
//! * the run checkpoints every `τ` seconds of useful work, each write
//!   costing `C` seconds during which no progress is made;
//! * failures arrive as a Poisson process with system rate `units / MTBF`
//!   (the usual independent-exponential-nodes assumption);
//! * each failure costs a restart `R` plus the rework of the progress since
//!   the last checkpoint — `τ/2` in expectation for failures uniform within
//!   an interval.
//!
//! To first order (valid for `C ≪ τ ≪ M`, the regime any sane deployment
//! operates in) the expected wall-clock time of a run with `T` seconds of
//! fault-free work is
//!
//! ```text
//! E[T_wall](τ) = T · (1 + C/τ)  +  T/M · (R + τ/2)
//! ```
//!
//! which is minimized exactly at the Young/Daly interval
//! `τ* = sqrt(2·C·M)` — exposed as a derived quantity so operators can
//! compare their configured interval against the optimum. See DESIGN.md,
//! "Resilience architecture", for the assumptions and their validity
//! limits.
//!
//! # Example
//!
//! ```
//! use amped_core::resilience::ResilienceParams;
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! // 128 nodes, each with a 6-month MTBF; 45 s checkpoint writes,
//! // 5 minute restarts, checkpoint interval left to Young/Daly.
//! let params = ResilienceParams::new(0.5 * 365.25 * 86400.0, 128)?
//!     .with_checkpoint_cost(45.0)
//!     .with_restart(300.0);
//! let report = params.report(30.0 * 86400.0)?; // a 30-day fault-free run
//! assert!(report.expected_s > report.fault_free_s);
//! assert!(report.goodput() < 1.0);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Failure and checkpointing characteristics of a training deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceParams {
    /// Mean time between failures of one failure unit (a node), seconds.
    pub unit_mtbf_s: f64,
    /// Number of independent failure units (nodes in the system).
    pub units: usize,
    /// Seconds one checkpoint write stalls the run (`C`).
    pub ckpt_write_s: f64,
    /// Seconds from failure detection to resumed training (`R`), not
    /// counting rework.
    pub restart_s: f64,
    /// Checkpoint interval in seconds of useful work (`τ`); `None` resolves
    /// to the Young/Daly optimum.
    pub interval_s: Option<f64>,
}

impl ResilienceParams {
    /// Parameters for `units` failure units of `unit_mtbf_s` each, with
    /// free checkpoints, instant restarts and a Young/Daly interval until
    /// overridden.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the MTBF is not positive and
    /// finite or `units` is zero.
    pub fn new(unit_mtbf_s: f64, units: usize) -> Result<Self> {
        let params = ResilienceParams {
            unit_mtbf_s,
            units,
            ckpt_write_s: 0.0,
            restart_s: 0.0,
            interval_s: None,
        };
        params.validate()?;
        Ok(params)
    }

    /// Set the checkpoint write cost `C` in seconds.
    pub fn with_checkpoint_cost(mut self, seconds: f64) -> Self {
        self.ckpt_write_s = seconds;
        self
    }

    /// Set the restart cost `R` in seconds.
    pub fn with_restart(mut self, seconds: f64) -> Self {
        self.restart_s = seconds;
        self
    }

    /// Fix the checkpoint interval instead of using the Young/Daly optimum.
    pub fn with_interval(mut self, seconds: f64) -> Self {
        self.interval_s = Some(seconds);
        self
    }

    /// Check every field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.unit_mtbf_s > 0.0 && self.unit_mtbf_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("mtbf must be positive and finite, got {}", self.unit_mtbf_s),
            ));
        }
        if self.units == 0 {
            return Err(Error::invalid("resilience", "at least one failure unit"));
        }
        if !(self.ckpt_write_s >= 0.0 && self.ckpt_write_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("checkpoint cost must be non-negative, got {}", self.ckpt_write_s),
            ));
        }
        if !(self.restart_s >= 0.0 && self.restart_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("restart cost must be non-negative, got {}", self.restart_s),
            ));
        }
        if let Some(tau) = self.interval_s {
            if !(tau > 0.0 && tau.is_finite()) {
                return Err(Error::invalid(
                    "resilience",
                    format!("checkpoint interval must be positive, got {tau}"),
                ));
            }
        }
        Ok(())
    }

    /// System-level mean time between failures: `unit_mtbf / units`
    /// (independent exponential units).
    pub fn system_mtbf_s(&self) -> f64 {
        self.unit_mtbf_s / self.units as f64
    }

    /// The Young/Daly optimal checkpoint interval `sqrt(2·C·M)` in seconds
    /// (zero when checkpoints are free — checkpoint continuously).
    pub fn young_daly_interval_s(&self) -> f64 {
        (2.0 * self.ckpt_write_s * self.system_mtbf_s()).sqrt()
    }

    /// The interval the model actually uses: the configured one, or the
    /// Young/Daly optimum.
    pub fn resolved_interval_s(&self) -> f64 {
        self.interval_s.unwrap_or_else(|| self.young_daly_interval_s())
    }

    /// The first-order renewal expectation `E[T_wall]` for `fault_free_s`
    /// seconds of useful work checkpointed every `interval_s` seconds.
    ///
    /// Exposed separately from [`ResilienceParams::report`] so the
    /// Young/Daly optimality of the interval is testable against the very
    /// function the report evaluates. `interval_s == 0` is meaningful only
    /// with free checkpoints (continuous checkpointing, no rework).
    pub fn expected_time_s(&self, fault_free_s: f64, interval_s: f64) -> f64 {
        let m = self.system_mtbf_s();
        let ckpt_overhead = if self.ckpt_write_s > 0.0 {
            fault_free_s * self.ckpt_write_s / interval_s
        } else {
            0.0
        };
        let failures = fault_free_s / m;
        let rework = failures * (self.restart_s + interval_s / 2.0);
        fault_free_s + ckpt_overhead + rework
    }

    /// The full resilience report for a run of `fault_free_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the parameters fail
    /// [`ResilienceParams::validate`], when `fault_free_s` is not positive
    /// and finite, or when a zero interval is combined with a non-zero
    /// checkpoint cost.
    pub fn report(&self, fault_free_s: f64) -> Result<ResilienceReport> {
        self.validate()?;
        if !(fault_free_s > 0.0 && fault_free_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("fault-free time must be positive, got {fault_free_s}"),
            ));
        }
        let interval_s = self.resolved_interval_s();
        if interval_s <= 0.0 && self.ckpt_write_s > 0.0 {
            return Err(Error::invalid(
                "resilience",
                "checkpoint interval must be positive when checkpoints cost time",
            ));
        }
        let m = self.system_mtbf_s();
        let expected_failures = fault_free_s / m;
        let ckpt_overhead_s = if self.ckpt_write_s > 0.0 {
            fault_free_s * self.ckpt_write_s / interval_s
        } else {
            0.0
        };
        let rework_s = expected_failures * (self.restart_s + interval_s / 2.0);
        Ok(ResilienceReport {
            fault_free_s,
            expected_s: fault_free_s + ckpt_overhead_s + rework_s,
            interval_s,
            optimal_interval_s: self.young_daly_interval_s(),
            ckpt_write_s: self.ckpt_write_s,
            system_mtbf_s: m,
            expected_failures,
            ckpt_overhead_s,
            rework_s,
        })
    }
}

/// Expected-time accounting of one run under failures — the resilience
/// counterpart of the fault-free [`Estimate`](crate::Estimate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// The fault-free run time the expectation is layered on.
    pub fault_free_s: f64,
    /// Expected wall-clock time including checkpoints, failures and rework.
    pub expected_s: f64,
    /// The checkpoint interval used (configured or Young/Daly).
    pub interval_s: f64,
    /// The Young/Daly optimal interval for these parameters.
    pub optimal_interval_s: f64,
    /// Seconds per checkpoint write.
    pub ckpt_write_s: f64,
    /// System-level mean time between failures.
    pub system_mtbf_s: f64,
    /// Expected number of failures over the run.
    pub expected_failures: f64,
    /// Total expected checkpoint-write overhead.
    pub ckpt_overhead_s: f64,
    /// Total expected restart + lost-work time.
    pub rework_s: f64,
}

impl ResilienceReport {
    /// Fraction of wall-clock time spent making forward progress
    /// (`fault_free / expected`, in `(0, 1]`).
    pub fn goodput(&self) -> f64 {
        self.fault_free_s / self.expected_s
    }

    /// Expected slowdown over the fault-free run (`expected / fault_free`,
    /// `≥ 1`).
    pub fn slowdown(&self) -> f64 {
        self.expected_s / self.fault_free_s
    }

    /// Expected run length in days.
    pub fn expected_days(&self) -> f64 {
        self.expected_s / 86_400.0
    }
}

impl std::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "expected time {:.3e} s ({:.2} days), {:.1}% goodput over {:.3e} s fault-free",
            self.expected_s,
            self.expected_days(),
            self.goodput() * 100.0,
            self.fault_free_s,
        )?;
        writeln!(
            f,
            "  checkpoints: every {:.0} s at {:.1} s/write (Young/Daly optimum {:.0} s) = {:.3e} s overhead",
            self.interval_s, self.ckpt_write_s, self.optimal_interval_s, self.ckpt_overhead_s,
        )?;
        write!(
            f,
            "  failures: {:.1} expected (system MTBF {:.2e} s) = {:.3e} s restart + rework",
            self.expected_failures, self.system_mtbf_s, self.rework_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ResilienceParams {
        ResilienceParams::new(0.5 * 365.25 * 86400.0, 128)
            .unwrap()
            .with_checkpoint_cost(45.0)
            .with_restart(300.0)
    }

    #[test]
    fn young_daly_matches_the_closed_form() {
        let p = params();
        let m = 0.5 * 365.25 * 86400.0 / 128.0;
        assert!((p.system_mtbf_s() - m).abs() < 1e-9);
        assert!((p.young_daly_interval_s() - (2.0 * 45.0 * m).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn report_decomposes_the_expected_time() {
        let r = params().report(30.0 * 86400.0).unwrap();
        let sum = r.fault_free_s + r.ckpt_overhead_s + r.rework_s;
        assert!((r.expected_s - sum).abs() < 1e-6 * r.expected_s);
        assert!(r.expected_s > r.fault_free_s);
        assert!(r.goodput() > 0.0 && r.goodput() < 1.0);
        assert!((r.slowdown() * r.goodput() - 1.0).abs() < 1e-12);
        assert_eq!(r.interval_s, r.optimal_interval_s);
    }

    #[test]
    fn configured_interval_overrides_young_daly() {
        let r = params().with_interval(7200.0).report(1e6).unwrap();
        assert_eq!(r.interval_s, 7200.0);
        assert_ne!(r.interval_s, r.optimal_interval_s);
        // Off-optimum intervals can only cost time.
        let opt = params().report(1e6).unwrap();
        assert!(r.expected_s >= opt.expected_s);
    }

    #[test]
    fn free_checkpoints_leave_only_restart_cost() {
        let p = ResilienceParams::new(1e6, 10).unwrap().with_restart(100.0);
        let r = p.report(1e5).unwrap();
        assert_eq!(r.ckpt_overhead_s, 0.0);
        assert_eq!(r.interval_s, 0.0);
        // failures = 1e5/(1e6/10) = 1, each costing R = 100 s.
        assert!((r.expected_failures - 1.0).abs() < 1e-12);
        assert!((r.expected_s - (1e5 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ResilienceParams::new(0.0, 8).is_err());
        assert!(ResilienceParams::new(f64::NAN, 8).is_err());
        assert!(ResilienceParams::new(1e6, 0).is_err());
        assert!(params().with_interval(-1.0).report(1e5).is_err());
        assert!(params().with_checkpoint_cost(-1.0).report(1e5).is_err());
        assert!(params().report(0.0).is_err());
        assert!(params().report(f64::INFINITY).is_err());
    }

    #[test]
    fn display_mentions_goodput_and_failures() {
        let s = params().report(30.0 * 86400.0).unwrap().to_string();
        assert!(s.contains("goodput"), "{s}");
        assert!(s.contains("Young/Daly"), "{s}");
        assert!(s.contains("failures"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let r = params().report(1e6).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: ResilienceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
