//! Expected time-to-train under failures: checkpoint/restart goodput.
//!
//! The Eq. 1 estimator (and the simulator behind the same
//! [`CostBackend`](crate::CostBackend) contract) predicts the time of a run
//! in which every device and link stays healthy. At the multi-week,
//! thousand-accelerator scale the paper targets, that is not the time a
//! run actually takes: devices fail, the job restarts from its last
//! checkpoint, and the checkpoints themselves cost time. This module layers
//! the standard renewal-theory model of periodic checkpointing on top of
//! any fault-free estimate:
//!
//! * the run checkpoints every `τ` seconds of useful work, each write
//!   costing `C` seconds during which no progress is made;
//! * failures arrive as a Poisson process with system rate `units / MTBF`
//!   (the usual independent-exponential-nodes assumption);
//! * each failure costs a restart `R` plus the rework of the progress since
//!   the last checkpoint — `τ/2` in expectation for failures uniform within
//!   an interval.
//!
//! To first order (valid for `C ≪ τ ≪ M`, the regime any sane deployment
//! operates in) the expected wall-clock time of a run with `T` seconds of
//! fault-free work is
//!
//! ```text
//! E[T_wall](τ) = T · (1 + C/τ)  +  T/M · (R + τ/2)
//! ```
//!
//! which is minimized exactly at the Young/Daly interval
//! `τ* = sqrt(2·C·M)` — exposed as a derived quantity so operators can
//! compare their configured interval against the optimum. See DESIGN.md,
//! "Resilience architecture", for the assumptions and their validity
//! limits.
//!
//! # Example
//!
//! ```
//! use amped_core::resilience::ResilienceParams;
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! // 128 nodes, each with a 6-month MTBF; 45 s checkpoint writes,
//! // 5 minute restarts, checkpoint interval left to Young/Daly.
//! let params = ResilienceParams::new(0.5 * 365.25 * 86400.0, 128)?
//!     .with_checkpoint_cost(45.0)
//!     .with_restart(300.0);
//! let report = params.report(30.0 * 86400.0)?; // a 30-day fault-free run
//! assert!(report.expected_s > report.fault_free_s);
//! assert!(report.goodput() < 1.0);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// The default per-node mean time between failures both front-ends assume
/// when a scenario does not configure one: six months, in hours.
pub const DEFAULT_NODE_MTBF_HOURS: f64 = 4380.0;

/// Failure and checkpointing characteristics of a training deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceParams {
    /// Mean time between failures of one failure unit (a node), seconds.
    pub unit_mtbf_s: f64,
    /// Number of independent failure units (nodes in the system).
    pub units: usize,
    /// Seconds one checkpoint write stalls the run (`C`).
    pub ckpt_write_s: f64,
    /// Seconds from failure detection to resumed training (`R`), not
    /// counting rework.
    pub restart_s: f64,
    /// Checkpoint interval in seconds of useful work (`τ`); `None` resolves
    /// to the Young/Daly optimum.
    pub interval_s: Option<f64>,
}

impl ResilienceParams {
    /// Parameters for `units` failure units of `unit_mtbf_s` each, with
    /// free checkpoints, instant restarts and a Young/Daly interval until
    /// overridden.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the MTBF is not positive and
    /// finite or `units` is zero.
    pub fn new(unit_mtbf_s: f64, units: usize) -> Result<Self> {
        let params = ResilienceParams {
            unit_mtbf_s,
            units,
            ckpt_write_s: 0.0,
            restart_s: 0.0,
            interval_s: None,
        };
        params.validate()?;
        Ok(params)
    }

    /// Set the checkpoint write cost `C` in seconds.
    pub fn with_checkpoint_cost(mut self, seconds: f64) -> Self {
        self.ckpt_write_s = seconds;
        self
    }

    /// Set the restart cost `R` in seconds.
    pub fn with_restart(mut self, seconds: f64) -> Self {
        self.restart_s = seconds;
        self
    }

    /// Fix the checkpoint interval instead of using the Young/Daly optimum.
    pub fn with_interval(mut self, seconds: f64) -> Self {
        self.interval_s = Some(seconds);
        self
    }

    /// Check every field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.unit_mtbf_s > 0.0 && self.unit_mtbf_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("mtbf must be positive and finite, got {}", self.unit_mtbf_s),
            ));
        }
        if self.units == 0 {
            return Err(Error::invalid("resilience", "at least one failure unit"));
        }
        if !(self.ckpt_write_s >= 0.0 && self.ckpt_write_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("checkpoint cost must be non-negative, got {}", self.ckpt_write_s),
            ));
        }
        if !(self.restart_s >= 0.0 && self.restart_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("restart cost must be non-negative, got {}", self.restart_s),
            ));
        }
        if let Some(tau) = self.interval_s {
            if !(tau > 0.0 && tau.is_finite()) {
                return Err(Error::invalid(
                    "resilience",
                    format!("checkpoint interval must be positive, got {tau}"),
                ));
            }
        }
        Ok(())
    }

    /// System-level mean time between failures: `unit_mtbf / units`
    /// (independent exponential units).
    pub fn system_mtbf_s(&self) -> f64 {
        self.unit_mtbf_s / self.units as f64
    }

    /// The Young/Daly optimal checkpoint interval `sqrt(2·C·M)` in seconds
    /// (zero when checkpoints are free — checkpoint continuously).
    pub fn young_daly_interval_s(&self) -> f64 {
        (2.0 * self.ckpt_write_s * self.system_mtbf_s()).sqrt()
    }

    /// The interval the model actually uses: the configured one, or the
    /// Young/Daly optimum.
    pub fn resolved_interval_s(&self) -> f64 {
        self.interval_s.unwrap_or_else(|| self.young_daly_interval_s())
    }

    /// The first-order renewal expectation `E[T_wall]` for `fault_free_s`
    /// seconds of useful work checkpointed every `interval_s` seconds.
    ///
    /// Exposed separately from [`ResilienceParams::report`] so the
    /// Young/Daly optimality of the interval is testable against the very
    /// function the report evaluates. `interval_s == 0` is meaningful only
    /// with free checkpoints (continuous checkpointing, no rework).
    pub fn expected_time_s(&self, fault_free_s: f64, interval_s: f64) -> f64 {
        let m = self.system_mtbf_s();
        let ckpt_overhead = if self.ckpt_write_s > 0.0 {
            fault_free_s * self.ckpt_write_s / interval_s
        } else {
            0.0
        };
        let failures = fault_free_s / m;
        let rework = failures * (self.restart_s + interval_s / 2.0);
        fault_free_s + ckpt_overhead + rework
    }

    /// The full resilience report for a run of `fault_free_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when the parameters fail
    /// [`ResilienceParams::validate`], when `fault_free_s` is not positive
    /// and finite, or when a zero interval is combined with a non-zero
    /// checkpoint cost.
    pub fn report(&self, fault_free_s: f64) -> Result<ResilienceReport> {
        self.validate()?;
        if !(fault_free_s > 0.0 && fault_free_s.is_finite()) {
            return Err(Error::invalid(
                "resilience",
                format!("fault-free time must be positive, got {fault_free_s}"),
            ));
        }
        let interval_s = self.resolved_interval_s();
        if interval_s <= 0.0 && self.ckpt_write_s > 0.0 {
            return Err(Error::invalid(
                "resilience",
                "checkpoint interval must be positive when checkpoints cost time",
            ));
        }
        let m = self.system_mtbf_s();
        let expected_failures = fault_free_s / m;
        let ckpt_overhead_s = if self.ckpt_write_s > 0.0 {
            fault_free_s * self.ckpt_write_s / interval_s
        } else {
            0.0
        };
        let rework_s = expected_failures * (self.restart_s + interval_s / 2.0);
        Ok(ResilienceReport {
            fault_free_s,
            expected_s: fault_free_s + ckpt_overhead_s + rework_s,
            interval_s,
            optimal_interval_s: self.young_daly_interval_s(),
            ckpt_write_s: self.ckpt_write_s,
            system_mtbf_s: m,
            expected_failures,
            ckpt_overhead_s,
            rework_s,
        })
    }
}

/// Expected-time accounting of one run under failures — the resilience
/// counterpart of the fault-free [`Estimate`](crate::Estimate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// The fault-free run time the expectation is layered on.
    pub fault_free_s: f64,
    /// Expected wall-clock time including checkpoints, failures and rework.
    pub expected_s: f64,
    /// The checkpoint interval used (configured or Young/Daly).
    pub interval_s: f64,
    /// The Young/Daly optimal interval for these parameters.
    pub optimal_interval_s: f64,
    /// Seconds per checkpoint write.
    pub ckpt_write_s: f64,
    /// System-level mean time between failures.
    pub system_mtbf_s: f64,
    /// Expected number of failures over the run.
    pub expected_failures: f64,
    /// Total expected checkpoint-write overhead.
    pub ckpt_overhead_s: f64,
    /// Total expected restart + lost-work time.
    pub rework_s: f64,
}

impl ResilienceReport {
    /// Fraction of wall-clock time spent making forward progress
    /// (`fault_free / expected`, in `(0, 1]`).
    pub fn goodput(&self) -> f64 {
        self.fault_free_s / self.expected_s
    }

    /// Expected slowdown over the fault-free run (`expected / fault_free`,
    /// `≥ 1`).
    pub fn slowdown(&self) -> f64 {
        self.expected_s / self.fault_free_s
    }

    /// Expected run length in days.
    pub fn expected_days(&self) -> f64 {
        self.expected_s / 86_400.0
    }
}

impl std::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "expected time {:.3e} s ({:.2} days), {:.1}% goodput over {:.3e} s fault-free",
            self.expected_s,
            self.expected_days(),
            self.goodput() * 100.0,
            self.fault_free_s,
        )?;
        writeln!(
            f,
            "  checkpoints: every {:.0} s at {:.1} s/write (Young/Daly optimum {:.0} s) = {:.3e} s overhead",
            self.interval_s, self.ckpt_write_s, self.optimal_interval_s, self.ckpt_overhead_s,
        )?;
        write!(
            f,
            "  failures: {:.1} expected (system MTBF {:.2e} s) = {:.3e} s restart + rework",
            self.expected_failures, self.system_mtbf_s, self.rework_s,
        )
    }
}

/// The failure-domain hierarchy of a cluster: nodes grouped into racks,
/// racks grouped into pods, with optional per-tier outage rates.
///
/// The node tier's failure rate lives in [`ResilienceParams::unit_mtbf_s`]
/// (one unit per node, as before); this tree adds the *correlated* tiers on
/// top. A rack outage (PDU, ToR switch) takes out every node in the rack at
/// once; a pod outage every rack in the pod. A tier without an MTBF injects
/// no outages, so the default tree — no rack or pod rate — degenerates to
/// the independent-exponential model exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDomainTree {
    /// Total nodes in the cluster.
    pub num_nodes: usize,
    /// Nodes behind one rack-level failure domain.
    pub nodes_per_rack: usize,
    /// Racks behind one pod-level failure domain.
    pub racks_per_pod: usize,
    /// Mean time between outages of one rack, seconds (`None` = never).
    #[serde(default)]
    pub rack_mtbf_s: Option<f64>,
    /// Mean time between outages of one pod, seconds (`None` = never).
    #[serde(default)]
    pub pod_mtbf_s: Option<f64>,
}

impl FailureDomainTree {
    /// A tree of `num_nodes` nodes in racks of `nodes_per_rack`, pods of
    /// `racks_per_pod` racks, with no tier outage rates yet.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any count is zero.
    pub fn new(num_nodes: usize, nodes_per_rack: usize, racks_per_pod: usize) -> Result<Self> {
        let tree = FailureDomainTree {
            num_nodes,
            nodes_per_rack,
            racks_per_pod,
            rack_mtbf_s: None,
            pod_mtbf_s: None,
        };
        tree.validate()?;
        Ok(tree)
    }

    /// The trivial tree: every node in one rack of one pod, no tier
    /// outages — the exact shape of the independent-exponential model.
    pub fn single_domain(num_nodes: usize) -> Self {
        FailureDomainTree {
            num_nodes: num_nodes.max(1),
            nodes_per_rack: num_nodes.max(1),
            racks_per_pod: 1,
            rack_mtbf_s: None,
            pod_mtbf_s: None,
        }
    }

    /// Set the per-rack outage MTBF in seconds.
    pub fn with_rack_mtbf(mut self, seconds: f64) -> Self {
        self.rack_mtbf_s = Some(seconds);
        self
    }

    /// Set the per-pod outage MTBF in seconds.
    pub fn with_pod_mtbf(mut self, seconds: f64) -> Self {
        self.pod_mtbf_s = Some(seconds);
        self
    }

    /// Check every field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.num_nodes == 0 {
            return Err(Error::invalid("failure_domains", "at least one node"));
        }
        if self.nodes_per_rack == 0 {
            return Err(Error::invalid("failure_domains", "nodes_per_rack must be positive"));
        }
        if self.racks_per_pod == 0 {
            return Err(Error::invalid("failure_domains", "racks_per_pod must be positive"));
        }
        for (name, mtbf) in [("rack", self.rack_mtbf_s), ("pod", self.pod_mtbf_s)] {
            if let Some(m) = mtbf {
                if !(m > 0.0 && m.is_finite()) {
                    return Err(Error::invalid(
                        "failure_domains",
                        format!("{name} mtbf must be positive and finite, got {m}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of racks (the last one may be partial).
    pub fn num_racks(&self) -> usize {
        self.num_nodes.div_ceil(self.nodes_per_rack)
    }

    /// Number of pods (the last one may be partial).
    pub fn num_pods(&self) -> usize {
        self.num_racks().div_ceil(self.racks_per_pod)
    }

    /// Nodes behind one pod-level domain.
    pub fn nodes_per_pod(&self) -> usize {
        self.nodes_per_rack * self.racks_per_pod
    }

    /// Cluster-wide rack-outage rate, outages per second (0 when the rack
    /// tier has no MTBF).
    pub fn rack_outage_rate_per_s(&self) -> f64 {
        match self.rack_mtbf_s {
            Some(m) => self.num_racks() as f64 / m,
            None => 0.0,
        }
    }

    /// Cluster-wide pod-outage rate, outages per second (0 when the pod
    /// tier has no MTBF).
    pub fn pod_outage_rate_per_s(&self) -> f64 {
        match self.pod_mtbf_s {
            Some(m) => self.num_pods() as f64 / m,
            None => 0.0,
        }
    }
}

/// Elastic-capacity behaviour: spot preemption as a fault class, and
/// shrink/regrow instead of a full restart for survivable outages.
///
/// When attached to a [`CorrelatedResilience`], an outage whose blast
/// radius breaks fewer than all DP replicas no longer restarts the run:
/// the broken replicas are dropped, the survivors carry the full batch at
/// a rescaled step time (`dp / (dp - k)`) until capacity regrows after
/// `regrow_delay_s`, then the rejoining replicas re-replicate state at the
/// checkpoint-write cost. Node *crashes* stay fatal — in-flight state on
/// the crashed node is gone mid-step — only planned preemptions and clean
/// domain outages shrink.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticParams {
    /// Per-node mean time between spot preemptions, seconds (`None` = the
    /// capacity is not preemptible).
    #[serde(default)]
    pub preemption_mtbf_s: Option<f64>,
    /// Seconds until preempted or failed capacity is regrown.
    pub regrow_delay_s: f64,
}

impl ElasticParams {
    /// Elastic mode with the given capacity-regrow delay and no
    /// preemption pressure yet.
    pub fn new(regrow_delay_s: f64) -> Self {
        ElasticParams {
            preemption_mtbf_s: None,
            regrow_delay_s,
        }
    }

    /// Set the per-node mean time between spot preemptions in seconds.
    pub fn with_preemption_mtbf(mut self, seconds: f64) -> Self {
        self.preemption_mtbf_s = Some(seconds);
        self
    }

    /// Check every field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !(self.regrow_delay_s >= 0.0 && self.regrow_delay_s.is_finite()) {
            return Err(Error::invalid(
                "failure_domains",
                format!("regrow delay must be non-negative, got {}", self.regrow_delay_s),
            ));
        }
        if let Some(m) = self.preemption_mtbf_s {
            if !(m > 0.0 && m.is_finite()) {
                return Err(Error::invalid(
                    "failure_domains",
                    format!("preemption mtbf must be positive and finite, got {m}"),
                ));
            }
        }
        Ok(())
    }

    /// Cluster-wide preemption rate for `num_nodes` nodes, events/second.
    pub fn preemption_rate_per_s(&self, num_nodes: usize) -> f64 {
        match self.preemption_mtbf_s {
            Some(m) => num_nodes as f64 / m,
            None => 0.0,
        }
    }
}

/// The blast-radius summary of one placement of a DP × PP mapping onto a
/// [`FailureDomainTree`]: for the worst-case domain at each tier, how many
/// DP replicas have at least one device inside it.
///
/// A replica with any device inside a failed domain is broken; the outage
/// is elastically survivable only when broken replicas are fewer than
/// `dp`. Blast-radius-minimizing placements (replica-major: each replica
/// on as few domains as possible) keep these counts low; stage-major
/// placements (each domain holds one stage of *every* replica) maximize
/// them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainPlacement {
    /// Which layout produced these counts (`"replica-major"` or
    /// `"stage-major"`).
    pub strategy: String,
    /// Data-parallel replica count of the mapping.
    pub dp: usize,
    /// Worst-case replicas broken by losing one node.
    pub replicas_per_node: usize,
    /// Worst-case replicas broken by one rack outage.
    pub replicas_per_rack: usize,
    /// Worst-case replicas broken by one pod outage.
    pub replicas_per_pod: usize,
}

/// Worst-case number of DP replicas broken by losing one domain of
/// `domain_nodes` consecutive nodes, for the given device layout.
/// `stage_major` selects device index `s·dp + r` instead of `r·pp + s`.
fn worst_broken_replicas(
    dp: usize,
    pp: usize,
    tp: usize,
    accels_per_node: usize,
    num_nodes: usize,
    domain_nodes: usize,
    stage_major: bool,
) -> usize {
    let num_domains = num_nodes.div_ceil(domain_nodes);
    let mut worst = 0;
    for dom in 0..num_domains {
        let n0 = dom * domain_nodes;
        let n1 = (((dom + 1) * domain_nodes).min(num_nodes)).saturating_sub(1);
        let mut broken = 0;
        for r in 0..dp {
            let hit = (0..pp).any(|s| {
                let d = if stage_major { s * dp + r } else { r * pp + s };
                let lo = d * tp / accels_per_node;
                let hi = ((d + 1) * tp - 1) / accels_per_node;
                lo <= n1 && hi >= n0
            });
            if hit {
                broken += 1;
            }
        }
        worst = worst.max(broken);
    }
    worst
}

impl DomainPlacement {
    fn layout(
        strategy: &str,
        dp: usize,
        pp: usize,
        tp: usize,
        accels_per_node: usize,
        tree: &FailureDomainTree,
        stage_major: bool,
    ) -> Self {
        let blast = |domain_nodes: usize| {
            worst_broken_replicas(
                dp,
                pp,
                tp,
                accels_per_node,
                tree.num_nodes,
                domain_nodes,
                stage_major,
            )
        };
        DomainPlacement {
            strategy: strategy.to_string(),
            dp,
            replicas_per_node: blast(1),
            replicas_per_rack: blast(tree.nodes_per_rack),
            replicas_per_pod: blast(tree.nodes_per_pod()),
        }
    }

    /// The replica-major placement: each DP replica occupies a contiguous
    /// run of devices (device `r·pp + s`), so replicas span as few domains
    /// as possible — the blast-radius-minimizing layout, and the layout
    /// the simulator's device grid natively uses.
    pub fn replica_major(
        dp: usize,
        pp: usize,
        tp: usize,
        accels_per_node: usize,
        tree: &FailureDomainTree,
    ) -> Self {
        Self::layout("replica-major", dp, pp, tp, accels_per_node, tree, false)
    }

    /// The stage-major placement: each pipeline stage's replicas sit
    /// together (device `s·dp + r`), so one domain holds a stage of
    /// *every* replica — the blast-radius-maximizing layout, kept as the
    /// adversarial reference.
    pub fn stage_major(
        dp: usize,
        pp: usize,
        tp: usize,
        accels_per_node: usize,
        tree: &FailureDomainTree,
    ) -> Self {
        Self::layout("stage-major", dp, pp, tp, accels_per_node, tree, true)
    }

    /// Check every field.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when counts are inconsistent.
    pub fn validate(&self) -> Result<()> {
        if self.dp == 0 {
            return Err(Error::invalid("failure_domains", "placement needs dp >= 1"));
        }
        for (name, k) in [
            ("node", self.replicas_per_node),
            ("rack", self.replicas_per_rack),
            ("pod", self.replicas_per_pod),
        ] {
            if k > self.dp {
                return Err(Error::invalid(
                    "failure_domains",
                    format!("{name} blast radius {k} exceeds dp {}", self.dp),
                ));
            }
        }
        Ok(())
    }
}

/// The correlated-outage extension of [`ResilienceParams`]: expected time
/// under a [`FailureDomainTree`] and a [`DomainPlacement`], optionally
/// with elastic shrink/regrow ([`ElasticParams`]).
///
/// Fault classes and their costs:
///
/// * **node crashes** — the base independent-exponential tier
///   (`units / unit_mtbf`). Always fatal: restart + Young/Daly rework.
/// * **rack / pod outages** — correlated tiers from the tree. Fatal unless
///   elastic mode is on *and* the placement leaves at least one replica
///   intact (`broken < dp`); then the run shrinks: the survivors carry the
///   batch at `dp/(dp-k)` step time for the regrow window, costing
///   `regrow_delay · k/(dp-k)` extra seconds plus one checkpoint-write of
///   state re-replication per event.
/// * **spot preemptions** — a per-node elastic fault class with the same
///   shrink cost (`k` = the node blast radius), fatal when a single node
///   already breaks every replica.
///
/// With a trivial tree (no rack/pod rates) and no preemption the model
/// *is* [`ResilienceParams::report`] — same arithmetic, bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedResilience {
    /// The node-tier parameters (MTBF, checkpoint cost, restart, interval).
    pub base: ResilienceParams,
    /// The failure-domain hierarchy.
    pub tree: FailureDomainTree,
    /// Blast-radius summary of the chosen placement.
    pub placement: DomainPlacement,
    /// Elastic shrink/regrow behaviour (`None` = every outage is fatal).
    #[serde(default)]
    pub elastic: Option<ElasticParams>,
}

impl CorrelatedResilience {
    /// Correlated parameters over `base`, `tree` and `placement`, with
    /// every outage fatal until [`CorrelatedResilience::with_elastic`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] when any component fails its own
    /// validation or the tree does not cover `base.units` nodes.
    pub fn new(
        base: ResilienceParams,
        tree: FailureDomainTree,
        placement: DomainPlacement,
    ) -> Result<Self> {
        let params = CorrelatedResilience {
            base,
            tree,
            placement,
            elastic: None,
        };
        params.validate()?;
        Ok(params)
    }

    /// Enable elastic shrink/regrow.
    pub fn with_elastic(mut self, elastic: ElasticParams) -> Self {
        self.elastic = Some(elastic);
        self
    }

    /// Check every component.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        self.base.validate()?;
        self.tree.validate()?;
        self.placement.validate()?;
        if let Some(elastic) = &self.elastic {
            elastic.validate()?;
        }
        if self.tree.num_nodes != self.base.units {
            return Err(Error::invalid(
                "failure_domains",
                format!(
                    "domain tree covers {} nodes but the system has {}",
                    self.tree.num_nodes, self.base.units
                ),
            ));
        }
        Ok(())
    }

    /// Whether the model degenerates to the independent-exponential base:
    /// no correlated tier rates and no preemption pressure.
    pub fn is_degenerate(&self) -> bool {
        self.tree.rack_mtbf_s.is_none()
            && self.tree.pod_mtbf_s.is_none()
            && self
                .elastic
                .as_ref()
                .is_none_or(|e| e.preemption_mtbf_s.is_none())
    }

    /// Per-tier (rate, blast radius, elastic?) rows beyond the node tier.
    fn correlated_tiers(&self) -> [(f64, usize); 3] {
        let preempt = self
            .elastic
            .as_ref()
            .map_or(0.0, |e| e.preemption_rate_per_s(self.tree.num_nodes));
        [
            (self.tree.rack_outage_rate_per_s(), self.placement.replicas_per_rack),
            (self.tree.pod_outage_rate_per_s(), self.placement.replicas_per_pod),
            (preempt, self.placement.replicas_per_node),
        ]
    }

    /// Whether an outage breaking `k` replicas shrinks instead of
    /// restarting.
    fn is_elastic(&self, k: usize) -> bool {
        self.elastic.is_some() && k < self.placement.dp
    }

    /// Total rate of *fatal* events (full restart + rework), per second:
    /// node crashes plus every correlated tier elastic mode cannot absorb.
    pub fn fatal_rate_per_s(&self) -> f64 {
        let mut rate = 1.0 / self.base.system_mtbf_s();
        for (r, k) in self.correlated_tiers() {
            if r > 0.0 && !self.is_elastic(k) {
                rate += r;
            }
        }
        rate
    }

    /// Total rate of *elastic* events (shrink/regrow), per second.
    pub fn elastic_rate_per_s(&self) -> f64 {
        let mut rate = 0.0;
        for (r, k) in self.correlated_tiers() {
            if r > 0.0 && self.is_elastic(k) {
                rate += r;
            }
        }
        rate
    }

    /// The node-tier parameters with the MTBF collapsed to the fatal-class
    /// system MTBF — the [`ResilienceParams`] whose Young/Daly analysis
    /// prices the fatal events. In the degenerate case this is `base`
    /// itself, so the arithmetic (and its bits) are untouched.
    pub fn fatal_params(&self) -> ResilienceParams {
        if self.is_degenerate() {
            self.base.clone()
        } else {
            let mut params = self.base.clone();
            params.unit_mtbf_s = 1.0 / self.fatal_rate_per_s();
            params.units = 1;
            params
        }
    }

    /// Expected extra seconds per second of useful work spent running
    /// shrunk: `Σ rate · (regrow_delay · k/(dp-k) + ckpt_write)`.
    fn elastic_overhead_per_s(&self) -> f64 {
        let Some(elastic) = &self.elastic else {
            return 0.0;
        };
        let dp = self.placement.dp as f64;
        let mut overhead = 0.0;
        for (r, k) in self.correlated_tiers() {
            if r > 0.0 && self.is_elastic(k) {
                let k = k as f64;
                overhead +=
                    r * (elastic.regrow_delay_s * k / (dp - k) + self.base.ckpt_write_s);
            }
        }
        overhead
    }

    /// The first-order expectation for `fault_free_s` seconds of useful
    /// work at a fixed checkpoint interval — the correlated counterpart of
    /// [`ResilienceParams::expected_time_s`], exposed so simulations can
    /// be checked against the exact expression the report evaluates.
    pub fn expected_time_s(&self, fault_free_s: f64, interval_s: f64) -> f64 {
        self.fatal_params().expected_time_s(fault_free_s, interval_s)
            + fault_free_s * self.elastic_overhead_per_s()
    }

    /// The full correlated report for a run of `fault_free_s` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] under the same conditions as
    /// [`ResilienceParams::report`], plus any component validation error.
    pub fn report(&self, fault_free_s: f64) -> Result<CorrelatedReport> {
        self.validate()?;
        let report = self.fatal_params().report(fault_free_s)?;
        let elastic_overhead_s = fault_free_s * self.elastic_overhead_per_s();
        let expected_s = report.expected_s + elastic_overhead_s;
        Ok(CorrelatedReport {
            expected_s,
            fatal_rate_per_s: self.fatal_rate_per_s(),
            elastic_rate_per_s: self.elastic_rate_per_s(),
            elastic_events: fault_free_s * self.elastic_rate_per_s(),
            elastic_overhead_s,
            placement: self.placement.clone(),
            report,
        })
    }
}

/// Expected-time accounting under correlated outages — the fatal-class
/// Young/Daly [`ResilienceReport`] plus the elastic shrink overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedReport {
    /// Expected wall-clock time: `report.expected_s` plus the elastic
    /// shrink overhead.
    pub expected_s: f64,
    /// Rate of fatal events (node crashes + unsurvivable outages), per
    /// second.
    pub fatal_rate_per_s: f64,
    /// Rate of elastically absorbed events, per second.
    pub elastic_rate_per_s: f64,
    /// Expected number of elastic events over the run.
    pub elastic_events: f64,
    /// Total expected seconds of shrink/regrow overhead.
    pub elastic_overhead_s: f64,
    /// The placement whose blast radii produced these rates.
    pub placement: DomainPlacement,
    /// The fatal-class checkpoint/restart accounting. In the degenerate
    /// case (trivial tree, no preemption) this is bit-for-bit the
    /// independent-exponential [`ResilienceParams::report`].
    pub report: ResilienceReport,
}

impl CorrelatedReport {
    /// Fraction of wall-clock time spent making forward progress.
    pub fn goodput(&self) -> f64 {
        self.report.fault_free_s / self.expected_s
    }

    /// Expected slowdown over the fault-free run (`>= 1`).
    pub fn slowdown(&self) -> f64 {
        self.expected_s / self.report.fault_free_s
    }

    /// Expected run length in days.
    pub fn expected_days(&self) -> f64 {
        self.expected_s / 86_400.0
    }

    /// The fatal-class report with the total (fatal + elastic) expectation
    /// in `expected_s` — what ranking and tables consume when they want
    /// one flat [`ResilienceReport`] per mapping. In the degenerate case
    /// the overhead is exactly zero and the flattening is the identity.
    pub fn flat_report(&self) -> ResilienceReport {
        let mut flat = self.report.clone();
        flat.expected_s = self.expected_s;
        flat
    }
}

impl std::fmt::Display for CorrelatedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "expected time {:.3e} s ({:.2} days), {:.1}% goodput under correlated outages",
            self.expected_s,
            self.expected_days(),
            self.goodput() * 100.0,
        )?;
        writeln!(
            f,
            "  placement {}: blast radius {}/{}/{} replicas (node/rack/pod) of dp {}",
            self.placement.strategy,
            self.placement.replicas_per_node,
            self.placement.replicas_per_rack,
            self.placement.replicas_per_pod,
            self.placement.dp,
        )?;
        write!(
            f,
            "  fatal rate {:.3e}/s, elastic rate {:.3e}/s ({:.1} shrink events, {:.3e} s overhead)",
            self.fatal_rate_per_s, self.elastic_rate_per_s, self.elastic_events, self.elastic_overhead_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ResilienceParams {
        ResilienceParams::new(0.5 * 365.25 * 86400.0, 128)
            .unwrap()
            .with_checkpoint_cost(45.0)
            .with_restart(300.0)
    }

    #[test]
    fn young_daly_matches_the_closed_form() {
        let p = params();
        let m = 0.5 * 365.25 * 86400.0 / 128.0;
        assert!((p.system_mtbf_s() - m).abs() < 1e-9);
        assert!((p.young_daly_interval_s() - (2.0 * 45.0 * m).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn report_decomposes_the_expected_time() {
        let r = params().report(30.0 * 86400.0).unwrap();
        let sum = r.fault_free_s + r.ckpt_overhead_s + r.rework_s;
        assert!((r.expected_s - sum).abs() < 1e-6 * r.expected_s);
        assert!(r.expected_s > r.fault_free_s);
        assert!(r.goodput() > 0.0 && r.goodput() < 1.0);
        assert!((r.slowdown() * r.goodput() - 1.0).abs() < 1e-12);
        assert_eq!(r.interval_s, r.optimal_interval_s);
    }

    #[test]
    fn configured_interval_overrides_young_daly() {
        let r = params().with_interval(7200.0).report(1e6).unwrap();
        assert_eq!(r.interval_s, 7200.0);
        assert_ne!(r.interval_s, r.optimal_interval_s);
        // Off-optimum intervals can only cost time.
        let opt = params().report(1e6).unwrap();
        assert!(r.expected_s >= opt.expected_s);
    }

    #[test]
    fn free_checkpoints_leave_only_restart_cost() {
        let p = ResilienceParams::new(1e6, 10).unwrap().with_restart(100.0);
        let r = p.report(1e5).unwrap();
        assert_eq!(r.ckpt_overhead_s, 0.0);
        assert_eq!(r.interval_s, 0.0);
        // failures = 1e5/(1e6/10) = 1, each costing R = 100 s.
        assert!((r.expected_failures - 1.0).abs() < 1e-12);
        assert!((r.expected_s - (1e5 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ResilienceParams::new(0.0, 8).is_err());
        assert!(ResilienceParams::new(f64::NAN, 8).is_err());
        assert!(ResilienceParams::new(1e6, 0).is_err());
        assert!(params().with_interval(-1.0).report(1e5).is_err());
        assert!(params().with_checkpoint_cost(-1.0).report(1e5).is_err());
        assert!(params().report(0.0).is_err());
        assert!(params().report(f64::INFINITY).is_err());
    }

    #[test]
    fn display_mentions_goodput_and_failures() {
        let s = params().report(30.0 * 86400.0).unwrap().to_string();
        assert!(s.contains("goodput"), "{s}");
        assert!(s.contains("Young/Daly"), "{s}");
        assert!(s.contains("failures"), "{s}");
    }

    #[test]
    fn serde_round_trip() {
        let r = params().report(1e6).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: ResilienceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    fn tree_16() -> FailureDomainTree {
        FailureDomainTree::new(16, 4, 2).unwrap()
    }

    #[test]
    fn tree_counts_domains_with_partial_tails() {
        let t = tree_16();
        assert_eq!(t.num_racks(), 4);
        assert_eq!(t.num_pods(), 2);
        assert_eq!(t.nodes_per_pod(), 8);
        let uneven = FailureDomainTree::new(10, 4, 2).unwrap();
        assert_eq!(uneven.num_racks(), 3);
        assert_eq!(uneven.num_pods(), 2);
        assert!(FailureDomainTree::new(0, 4, 2).is_err());
        assert!(FailureDomainTree::new(4, 0, 2).is_err());
        assert!(tree_16().with_rack_mtbf(-1.0).validate().is_err());
    }

    #[test]
    fn placement_blast_radius_replica_vs_stage_major() {
        // dp 4 × pp 4, tp 1, 1 accel/node, 16 nodes in racks of 4: a
        // replica-major replica fits exactly one rack (rack kills 1
        // replica), stage-major spreads every replica over every rack.
        let t = tree_16();
        let rm = DomainPlacement::replica_major(4, 4, 1, 1, &t);
        let sm = DomainPlacement::stage_major(4, 4, 1, 1, &t);
        assert_eq!(rm.replicas_per_rack, 1);
        assert_eq!(sm.replicas_per_rack, 4);
        assert_eq!(rm.replicas_per_node, 1);
        assert_eq!(sm.replicas_per_node, 1);
        assert_eq!(rm.replicas_per_pod, 2);
        assert_eq!(sm.replicas_per_pod, 4);
        rm.validate().unwrap();
        sm.validate().unwrap();
    }

    #[test]
    fn degenerate_correlated_model_is_bitwise_the_base_report() {
        // The acceptance pin: all devices in one domain, no tier rates,
        // zero preemption — the correlated model must reproduce the
        // independent-exponential report bit for bit.
        let base = params();
        let tree = FailureDomainTree::single_domain(base.units);
        let placement = DomainPlacement::replica_major(4, 2, 1, 8, &tree);
        let correlated =
            CorrelatedResilience::new(base.clone(), tree, placement).unwrap();
        assert!(correlated.is_degenerate());
        let fault_free = 30.0 * 86400.0;
        let plain = base.report(fault_free).unwrap();
        let corr = correlated.report(fault_free).unwrap();
        assert_eq!(corr.report, plain, "embedded report must be identical");
        assert_eq!(corr.expected_s.to_bits(), plain.expected_s.to_bits());
        assert_eq!(
            corr.report.optimal_interval_s.to_bits(),
            plain.optimal_interval_s.to_bits()
        );
        assert_eq!(corr.elastic_overhead_s, 0.0);
        assert_eq!(corr.flat_report(), plain);
        // Elastic mode alone (no preemption pressure) changes nothing.
        let still = correlated
            .with_elastic(ElasticParams::new(600.0))
            .report(fault_free)
            .unwrap();
        assert_eq!(still.expected_s.to_bits(), plain.expected_s.to_bits());
    }

    #[test]
    fn correlated_tiers_raise_the_fatal_rate_and_expected_time() {
        let base = params();
        let tree = FailureDomainTree::new(128, 8, 4)
            .unwrap()
            .with_rack_mtbf(0.25 * 365.25 * 86400.0);
        let placement = DomainPlacement::replica_major(16, 8, 1, 1, &tree);
        let correlated = CorrelatedResilience::new(base.clone(), tree, placement).unwrap();
        assert!(!correlated.is_degenerate());
        let fault_free = 30.0 * 86400.0;
        let plain = base.report(fault_free).unwrap();
        let corr = correlated.report(fault_free).unwrap();
        assert!(corr.fatal_rate_per_s > 1.0 / plain.system_mtbf_s);
        assert!(corr.expected_s > plain.expected_s);
        assert_eq!(corr.elastic_rate_per_s, 0.0);
        // The closed-form expectation matches the report at its interval.
        let via_formula =
            correlated.expected_time_s(fault_free, corr.report.interval_s);
        assert!((via_formula - corr.expected_s).abs() < 1e-9 * corr.expected_s);
    }

    #[test]
    fn elastic_mode_absorbs_survivable_outages() {
        let base = params();
        let tree = FailureDomainTree::new(128, 8, 4)
            .unwrap()
            .with_rack_mtbf(0.25 * 365.25 * 86400.0);
        // Blast radius 1 replica per rack out of 8: survivable.
        let placement = DomainPlacement::replica_major(8, 16, 1, 1, &tree);
        let fatal = CorrelatedResilience::new(base.clone(), tree.clone(), placement.clone())
            .unwrap();
        let elastic = fatal.clone().with_elastic(ElasticParams::new(600.0));
        let fault_free = 30.0 * 86400.0;
        let r_fatal = fatal.report(fault_free).unwrap();
        let r_elastic = elastic.report(fault_free).unwrap();
        // Rack outages moved from the fatal to the elastic class...
        assert!(r_elastic.fatal_rate_per_s < r_fatal.fatal_rate_per_s);
        assert!(r_elastic.elastic_rate_per_s > 0.0);
        assert!(r_elastic.elastic_overhead_s > 0.0);
        // ...and shrinking beats restarting for these parameters.
        assert!(r_elastic.expected_s < r_fatal.expected_s);
        // A stage-major placement breaks every replica, so elastic mode
        // cannot help it: the outage stays fatal.
        let sm = DomainPlacement::stage_major(8, 16, 1, 1, &tree);
        assert_eq!(sm.replicas_per_rack, 8);
        let stuck = CorrelatedResilience::new(base, tree, sm)
            .unwrap()
            .with_elastic(ElasticParams::new(600.0));
        let r_stuck = stuck.report(fault_free).unwrap();
        assert_eq!(r_stuck.fatal_rate_per_s, r_fatal.fatal_rate_per_s);
    }

    #[test]
    fn preemption_is_an_elastic_fault_class() {
        let base = params();
        let tree = FailureDomainTree::new(128, 8, 4).unwrap();
        let placement = DomainPlacement::replica_major(16, 8, 1, 1, &tree);
        let spot = CorrelatedResilience::new(base.clone(), tree, placement)
            .unwrap()
            .with_elastic(
                ElasticParams::new(600.0).with_preemption_mtbf(30.0 * 86400.0),
            );
        assert!(!spot.is_degenerate());
        let r = spot.report(30.0 * 86400.0).unwrap();
        assert!(r.elastic_rate_per_s > 0.0);
        assert!(r.elastic_events > 0.0);
        assert!(r.expected_s > r.report.expected_s);
        let s = r.to_string();
        assert!(s.contains("blast radius"), "{s}");
        assert!(s.contains("elastic rate"), "{s}");
    }

    #[test]
    fn correlated_validation_rejects_inconsistent_components() {
        let base = params(); // 128 units
        let tree = FailureDomainTree::new(64, 8, 4).unwrap();
        let placement = DomainPlacement::replica_major(16, 8, 1, 1, &tree);
        assert!(CorrelatedResilience::new(base.clone(), tree.clone(), placement.clone())
            .is_err());
        let good_tree = FailureDomainTree::new(128, 8, 4).unwrap();
        let bad_placement = DomainPlacement {
            strategy: "replica-major".to_string(),
            dp: 4,
            replicas_per_node: 5,
            replicas_per_rack: 4,
            replicas_per_pod: 4,
        };
        assert!(CorrelatedResilience::new(base.clone(), good_tree.clone(), bad_placement)
            .is_err());
        let ok = CorrelatedResilience::new(
            base,
            good_tree,
            DomainPlacement::replica_major(16, 8, 1, 1, &tree),
        )
        .unwrap();
        assert!(ok
            .with_elastic(ElasticParams::new(f64::NAN))
            .report(1e6)
            .is_err());
    }

    #[test]
    fn correlated_serde_round_trip() {
        let base = params();
        let tree = FailureDomainTree::new(128, 8, 4)
            .unwrap()
            .with_rack_mtbf(1e7);
        let placement = DomainPlacement::replica_major(16, 8, 1, 1, &tree);
        let spot = CorrelatedResilience::new(base, tree, placement)
            .unwrap()
            .with_elastic(ElasticParams::new(600.0).with_preemption_mtbf(1e6));
        let r = spot.report(1e6).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: CorrelatedReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
