//! Parallelism mapping: how TP / PP / DP degrees are split between
//! intra-node and inter-node accelerators, plus microbatching, ZeRO and
//! pipeline-schedule knobs.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::model::TransformerModel;
use crate::network::SystemSpec;

/// How many microbatches a minibatch is split into for pipelining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum MicrobatchPolicy {
    /// `N_ub = N_PP` — the policy the paper uses in its PP validation.
    #[default]
    EqualToPipelineDepth,
    /// An explicit microbatch count.
    Explicit(usize),
    /// Choose `N_ub` so the microbatch is `target` samples (rounded to at
    /// least one microbatch).
    TargetMicrobatch(usize),
}


/// ZeRO redundancy-elimination stage for data parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[derive(Default)]
pub enum ZeroStage {
    /// Plain data parallelism: full replication.
    #[default]
    None,
    /// Optimizer states sharded across DP ranks.
    OptimizerStates,
    /// Optimizer states and gradients sharded.
    Gradients,
    /// Optimizer states, gradients and parameters sharded (full ZeRO-3).
    Parameters,
}


/// ZeRO configuration: the stage plus the paper's forward/backward
/// communication overhead factor `M_f_DP` (Eq. 5's `(1 + M_f_DP)` term).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZeroConfig {
    /// Which tensors are sharded.
    pub stage: ZeroStage,
    /// Fractional overhead added to forward/backward communication
    /// (`M_f_DP`); the paper treats it as a single fitted factor. Zero for
    /// plain DP.
    pub comm_overhead: f64,
}

impl ZeroConfig {
    /// Plain data parallelism (no ZeRO).
    pub fn none() -> Self {
        ZeroConfig {
            stage: ZeroStage::None,
            comm_overhead: 0.0,
        }
    }

    /// A ZeRO stage with its communication overhead factor.
    pub fn stage(stage: ZeroStage, comm_overhead: f64) -> Self {
        ZeroConfig {
            stage,
            comm_overhead,
        }
    }
}

impl Default for ZeroConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A complete parallelism mapping.
///
/// Degrees are split by network level: `*_intra` workers share a node's
/// fast links, `*_inter` workers communicate across nodes. The product of
/// the intra degrees must equal the node size, the product of the inter
/// degrees the node count.
///
/// # Example
///
/// ```
/// use amped_core::Parallelism;
/// // Megatron-style: TP across the 8 GPUs of a node, PP x DP across 128 nodes.
/// let p = Parallelism::builder()
///     .tp(8, 1)
///     .pp(1, 8)
///     .dp(1, 16)
///     .build()
///     .unwrap();
/// assert_eq!(p.total_workers(), 1024);
/// assert_eq!(p.tp(), 8);
/// assert_eq!(p.pp(), 8);
/// assert_eq!(p.dp(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Parallelism {
    tp_intra: usize,
    tp_inter: usize,
    pp_intra: usize,
    pp_inter: usize,
    dp_intra: usize,
    dp_inter: usize,
    microbatches: MicrobatchPolicy,
    /// The paper's `R`: ratio of non-overlapped bubbles relative to naive
    /// pipelining (1 = naive/GPipe, lower for interleaved schedules).
    bubble_ratio: f64,
    zero: ZeroConfig,
}

impl Parallelism {
    /// Start building a mapping (all degrees default to 1).
    pub fn builder() -> ParallelismBuilder {
        ParallelismBuilder {
            p: Parallelism {
                tp_intra: 1,
                tp_inter: 1,
                pp_intra: 1,
                pp_inter: 1,
                dp_intra: 1,
                dp_inter: 1,
                microbatches: MicrobatchPolicy::default(),
                bubble_ratio: 1.0,
                zero: ZeroConfig::none(),
            },
        }
    }

    /// The trivial single-worker mapping.
    pub fn single() -> Self {
        Parallelism::builder().build().expect("single is valid")
    }

    /// Pure data parallelism of the given degree inside one node.
    pub fn data_parallel_intra(dp: usize) -> Result<Self> {
        Parallelism::builder().dp(dp, 1).build()
    }

    /// Pure pipeline parallelism of the given degree inside one node.
    pub fn pipeline_parallel_intra(pp: usize) -> Result<Self> {
        Parallelism::builder().pp(pp, 1).build()
    }

    /// Intra-node tensor-parallel degree.
    pub fn tp_intra(&self) -> usize {
        self.tp_intra
    }

    /// Inter-node tensor-parallel degree.
    pub fn tp_inter(&self) -> usize {
        self.tp_inter
    }

    /// Intra-node pipeline-parallel degree.
    pub fn pp_intra(&self) -> usize {
        self.pp_intra
    }

    /// Inter-node pipeline-parallel degree.
    pub fn pp_inter(&self) -> usize {
        self.pp_inter
    }

    /// Intra-node data-parallel degree.
    pub fn dp_intra(&self) -> usize {
        self.dp_intra
    }

    /// Inter-node data-parallel degree.
    pub fn dp_inter(&self) -> usize {
        self.dp_inter
    }

    /// Total tensor-parallel degree `N_TP`.
    pub fn tp(&self) -> usize {
        self.tp_intra * self.tp_inter
    }

    /// Total pipeline-parallel degree `N_PP`.
    pub fn pp(&self) -> usize {
        self.pp_intra * self.pp_inter
    }

    /// Total data-parallel degree `N_DP`.
    pub fn dp(&self) -> usize {
        self.dp_intra * self.dp_inter
    }

    /// Total workers `N_TP · N_PP · N_DP`.
    pub fn total_workers(&self) -> usize {
        self.tp() * self.pp() * self.dp()
    }

    /// Product of intra-node degrees — must equal the node size.
    pub fn intra_workers(&self) -> usize {
        self.tp_intra * self.pp_intra * self.dp_intra
    }

    /// Product of inter-node degrees — must equal the node count.
    pub fn inter_workers(&self) -> usize {
        self.tp_inter * self.pp_inter * self.dp_inter
    }

    /// The microbatch policy.
    pub fn microbatch_policy(&self) -> MicrobatchPolicy {
        self.microbatches
    }

    /// The bubble-overlap ratio `R`.
    pub fn bubble_ratio(&self) -> f64 {
        self.bubble_ratio
    }

    /// The ZeRO configuration.
    pub fn zero(&self) -> ZeroConfig {
        self.zero
    }

    /// Copy with a different microbatch policy (used by microbatch tuning).
    pub fn with_microbatches(mut self, policy: MicrobatchPolicy) -> Self {
        self.microbatches = policy;
        self
    }

    /// Number of microbatches per minibatch, resolved against the global
    /// batch size.
    pub fn num_microbatches(&self, global_batch: usize) -> usize {
        let per_replica = (global_batch / self.dp()).max(1);
        let n = match self.microbatches {
            MicrobatchPolicy::EqualToPipelineDepth => self.pp(),
            MicrobatchPolicy::Explicit(n) => n,
            MicrobatchPolicy::TargetMicrobatch(target) => {
                per_replica.div_ceil(target.max(1))
            }
        };
        n.clamp(1, per_replica)
    }

    /// Per-DP-replica minibatch in samples: `B / N_DP`.
    pub fn replica_batch(&self, global_batch: usize) -> f64 {
        global_batch as f64 / self.dp() as f64
    }

    /// Microbatch size in samples: `B / (N_DP · N_ub)` — the `ub` that
    /// drives the efficiency model.
    pub fn microbatch_size(&self, global_batch: usize) -> f64 {
        self.replica_batch(global_batch) / self.num_microbatches(global_batch) as f64
    }

    /// Check the mapping fits `system` and `model`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Incompatible`] when intra degrees do not multiply to
    /// the node size, inter degrees to the node count, pipeline depth
    /// exceeds the layer count, or TP exceeds the head count.
    pub fn validate_against(&self, system: &SystemSpec, model: &TransformerModel) -> Result<()> {
        if self.intra_workers() != system.accels_per_node() {
            return Err(Error::incompatible(format!(
                "intra-node degrees multiply to {} but nodes have {} accelerators",
                self.intra_workers(),
                system.accels_per_node()
            )));
        }
        if self.inter_workers() != system.num_nodes() {
            return Err(Error::incompatible(format!(
                "inter-node degrees multiply to {} but the system has {} nodes",
                self.inter_workers(),
                system.num_nodes()
            )));
        }
        if self.pp() > model.num_layers() {
            return Err(Error::incompatible(format!(
                "pipeline depth {} exceeds the model's {} layers",
                self.pp(),
                model.num_layers()
            )));
        }
        if self.tp() > model.num_heads() {
            return Err(Error::incompatible(format!(
                "tensor-parallel degree {} exceeds the model's {} attention heads",
                self.tp(),
                model.num_heads()
            )));
        }
        Ok(())
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::single()
    }
}

/// Builder for [`Parallelism`]; see the type-level example.
#[derive(Debug, Clone)]
pub struct ParallelismBuilder {
    p: Parallelism,
}

impl ParallelismBuilder {
    /// Tensor-parallel degrees: intra-node × inter-node.
    pub fn tp(&mut self, intra: usize, inter: usize) -> &mut Self {
        self.p.tp_intra = intra;
        self.p.tp_inter = inter;
        self
    }

    /// Pipeline-parallel degrees: intra-node × inter-node.
    pub fn pp(&mut self, intra: usize, inter: usize) -> &mut Self {
        self.p.pp_intra = intra;
        self.p.pp_inter = inter;
        self
    }

    /// Data-parallel degrees: intra-node × inter-node.
    pub fn dp(&mut self, intra: usize, inter: usize) -> &mut Self {
        self.p.dp_intra = intra;
        self.p.dp_inter = inter;
        self
    }

    /// Microbatch policy (default: `N_ub = N_PP`).
    pub fn microbatches(&mut self, policy: MicrobatchPolicy) -> &mut Self {
        self.p.microbatches = policy;
        self
    }

    /// Bubble-overlap ratio `R` (default 1.0 = naive pipelining).
    pub fn bubble_ratio(&mut self, r: f64) -> &mut Self {
        self.p.bubble_ratio = r;
        self
    }

    /// Model a Megatron-style interleaved pipeline schedule with
    /// `virtual_stages` model chunks per device: the bubble shrinks by the
    /// interleaving factor (`R = 1/v`), which is how the paper suggests
    /// tuning `R` "as a function of pipeline stages and interleaving".
    ///
    /// # Panics
    ///
    /// Panics if `virtual_stages` is zero.
    pub fn interleaved(&mut self, virtual_stages: usize) -> &mut Self {
        assert!(virtual_stages > 0, "need at least one virtual stage");
        self.p.bubble_ratio = 1.0 / virtual_stages as f64;
        self
    }

    /// ZeRO configuration (default: none).
    pub fn zero(&mut self, cfg: ZeroConfig) -> &mut Self {
        self.p.zero = cfg;
        self
    }

    /// Validate and produce the mapping.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for zero degrees, an out-of-range
    /// bubble ratio or ZeRO overhead, or a zero explicit microbatch count.
    pub fn build(&self) -> Result<Parallelism> {
        let p = &self.p;
        let bad = |reason: String| Err(Error::invalid("parallelism", reason));
        for (name, d) in [
            ("tp_intra", p.tp_intra),
            ("tp_inter", p.tp_inter),
            ("pp_intra", p.pp_intra),
            ("pp_inter", p.pp_inter),
            ("dp_intra", p.dp_intra),
            ("dp_inter", p.dp_inter),
        ] {
            if d == 0 {
                return bad(format!("{name} must be at least 1"));
            }
        }
        if !(p.bubble_ratio >= 0.0 && p.bubble_ratio <= 1.0) {
            return bad(format!(
                "bubble ratio must be in [0, 1], got {}",
                p.bubble_ratio
            ));
        }
        if !(p.zero.comm_overhead >= 0.0 && p.zero.comm_overhead.is_finite()) {
            return bad("zero communication overhead must be non-negative".into());
        }
        if p.zero.stage != ZeroStage::None && p.zero.comm_overhead == 0.0 {
            // Permitted, but only ZeRO-1 is genuinely overhead-free.
        }
        if let MicrobatchPolicy::Explicit(0) = p.microbatches {
            return bad("explicit microbatch count must be at least 1".into());
        }
        Ok(*p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;

    fn system_128x8() -> SystemSpec {
        SystemSpec::new(128, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8).unwrap()
    }

    fn model() -> TransformerModel {
        TransformerModel::builder("m")
            .layers(80)
            .hidden_size(12288)
            .heads(96)
            .seq_len(2048)
            .vocab_size(51200)
            .build()
            .unwrap()
    }

    #[test]
    fn degrees_multiply() {
        let p = Parallelism::builder().tp(8, 1).pp(1, 2).dp(1, 64).build().unwrap();
        assert_eq!(p.tp(), 8);
        assert_eq!(p.pp(), 2);
        assert_eq!(p.dp(), 64);
        assert_eq!(p.total_workers(), 1024);
        assert_eq!(p.intra_workers(), 8);
        assert_eq!(p.inter_workers(), 128);
    }

    #[test]
    fn validate_against_system_shape() {
        let sys = system_128x8();
        let m = model();
        let good = Parallelism::builder().tp(8, 1).pp(1, 2).dp(1, 64).build().unwrap();
        assert!(good.validate_against(&sys, &m).is_ok());

        let wrong_intra = Parallelism::builder().tp(4, 1).pp(1, 2).dp(1, 128).build().unwrap();
        assert!(wrong_intra.validate_against(&sys, &m).is_err());

        let too_deep = Parallelism::builder().tp(8, 1).pp(1, 128).dp(1, 1).build().unwrap();
        assert!(too_deep.validate_against(&sys, &m).is_err());

        let too_wide_tp = Parallelism::builder().tp(8, 16).pp(1, 8).dp(1, 1).build().unwrap();
        assert!(too_wide_tp.validate_against(&sys, &m).is_err());
    }

    #[test]
    fn microbatch_policies() {
        let p = Parallelism::builder()
            .pp(4, 1)
            .microbatches(MicrobatchPolicy::EqualToPipelineDepth)
            .build()
            .unwrap();
        assert_eq!(p.num_microbatches(64), 4);
        assert_eq!(p.microbatch_size(64), 16.0);

        let p = Parallelism::builder()
            .pp(4, 1)
            .microbatches(MicrobatchPolicy::Explicit(32))
            .build()
            .unwrap();
        assert_eq!(p.num_microbatches(64), 32);

        let p = Parallelism::builder()
            .dp(2, 1)
            .microbatches(MicrobatchPolicy::TargetMicrobatch(8))
            .build()
            .unwrap();
        assert_eq!(p.num_microbatches(64), 4); // 32 per replica / 8 target
        assert_eq!(p.microbatch_size(64), 8.0);
    }

    #[test]
    fn microbatches_never_exceed_replica_batch() {
        let p = Parallelism::builder()
            .pp(16, 1)
            .dp(1, 4)
            .microbatches(MicrobatchPolicy::Explicit(1000))
            .build()
            .unwrap();
        // 64-sample batch, 4-way DP -> 16 per replica; cannot split further.
        assert_eq!(p.num_microbatches(64), 16);
        assert_eq!(p.microbatch_size(64), 1.0);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(Parallelism::builder().tp(0, 1).build().is_err());
        assert!(Parallelism::builder().bubble_ratio(1.5).build().is_err());
        assert!(Parallelism::builder()
            .microbatches(MicrobatchPolicy::Explicit(0))
            .build()
            .is_err());
        assert!(Parallelism::builder()
            .zero(ZeroConfig::stage(ZeroStage::Parameters, f64::NAN))
            .build()
            .is_err());
    }

    #[test]
    fn convenience_constructors() {
        assert_eq!(Parallelism::single().total_workers(), 1);
        assert_eq!(Parallelism::data_parallel_intra(8).unwrap().dp(), 8);
        assert_eq!(Parallelism::pipeline_parallel_intra(4).unwrap().pp(), 4);
    }

    #[test]
    fn zero_stages_order() {
        assert!(ZeroStage::None < ZeroStage::OptimizerStates);
        assert!(ZeroStage::Gradients < ZeroStage::Parameters);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Parallelism::builder()
            .tp(8, 1)
            .pp(1, 8)
            .dp(1, 16)
            .bubble_ratio(0.5)
            .zero(ZeroConfig::stage(ZeroStage::OptimizerStates, 0.1))
            .build()
            .unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Parallelism = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
