//! Inference-workload configuration: the serving analog of
//! [`TrainingConfig`](crate::TrainingConfig).
//!
//! AMPeD prices training; the successor work in the same lineage (Kundu et
//! al.) folds inference into the same analytical framework. An inference
//! request is described by its prompt length (the prefill phase), the
//! number of generated tokens (the decode phase), the serving batch size,
//! and the precision the KV cache is stored at. The cost model itself
//! lives in `amped-infer`; the configuration sits here so scenario
//! resolution (`amped-configs`) and every front-end can construct it
//! without depending on the backend crate.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// One inference workload: a batch of identical requests, each with
/// `prompt_tokens` of context to prefill and `decode_tokens` to generate.
///
/// # Example
///
/// ```
/// use amped_core::InferenceConfig;
/// let w = InferenceConfig::new(512, 128, 8).unwrap();
/// assert_eq!(w.max_context(), 640);
/// assert_eq!(w.kv_bits(), 16); // fp16 KV cache by default
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InferenceConfig {
    prompt_tokens: usize,
    decode_tokens: usize,
    batch: usize,
    kv_bits: u32,
}

impl InferenceConfig {
    /// A workload of `batch` concurrent requests, each prefilling
    /// `prompt_tokens` and generating `decode_tokens`, with an fp16 KV
    /// cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any count is zero.
    pub fn new(prompt_tokens: usize, decode_tokens: usize, batch: usize) -> Result<Self> {
        if prompt_tokens == 0 || decode_tokens == 0 || batch == 0 {
            return Err(Error::invalid(
                "inference",
                "prompt tokens, decode tokens and batch must be positive",
            ));
        }
        Ok(InferenceConfig {
            prompt_tokens,
            decode_tokens,
            batch,
            kv_bits: 16,
        })
    }

    /// Override the KV-cache element width in bits (8 for an int8/fp8
    /// quantized cache).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] for a zero width.
    pub fn with_kv_bits(mut self, kv_bits: u32) -> Result<Self> {
        if kv_bits == 0 {
            return Err(Error::invalid("inference", "kv_bits must be positive"));
        }
        self.kv_bits = kv_bits;
        Ok(self)
    }

    /// Prompt length in tokens (the prefill phase).
    pub fn prompt_tokens(&self) -> usize {
        self.prompt_tokens
    }

    /// Tokens generated per request (the decode phase).
    pub fn decode_tokens(&self) -> usize {
        self.decode_tokens
    }

    /// Concurrent requests per model replica.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// KV-cache element width in bits.
    pub fn kv_bits(&self) -> u32 {
        self.kv_bits
    }

    /// The longest context a request reaches: prompt plus every generated
    /// token. This is what the KV cache must hold at its peak.
    pub fn max_context(&self) -> usize {
        self.prompt_tokens + self.decode_tokens
    }

    /// The same workload at a different batch size — the per-candidate
    /// operation of the serving-mapping sweep.
    pub fn with_batch(mut self, batch: usize) -> Result<Self> {
        if batch == 0 {
            return Err(Error::invalid("inference", "batch must be positive"));
        }
        self.batch = batch;
        Ok(self)
    }

    /// Mean context length over the decode phase: token `i` of the decode
    /// attends to `prompt + i` cached positions, so per-token costs that
    /// scale with context use this average in closed form.
    pub fn mean_decode_context(&self) -> f64 {
        self.prompt_tokens as f64 + (self.decode_tokens as f64 - 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let w = InferenceConfig::new(1024, 256, 4).unwrap();
        assert_eq!(w.prompt_tokens(), 1024);
        assert_eq!(w.decode_tokens(), 256);
        assert_eq!(w.batch(), 4);
        assert_eq!(w.max_context(), 1280);
        let q = w.with_kv_bits(8).unwrap();
        assert_eq!(q.kv_bits(), 8);
    }

    #[test]
    fn rejects_zero_counts() {
        assert!(InferenceConfig::new(0, 1, 1).is_err());
        assert!(InferenceConfig::new(1, 0, 1).is_err());
        assert!(InferenceConfig::new(1, 1, 0).is_err());
        assert!(InferenceConfig::new(1, 1, 1).unwrap().with_kv_bits(0).is_err());
        assert!(InferenceConfig::new(1, 1, 1).unwrap().with_batch(0).is_err());
    }

    #[test]
    fn mean_decode_context_averages_the_growing_cache() {
        let w = InferenceConfig::new(100, 11, 1).unwrap();
        // Contexts 100..110 inclusive of the first token: mean = 105.
        assert_eq!(w.mean_decode_context(), 105.0);
        let single = InferenceConfig::new(100, 1, 1).unwrap();
        assert_eq!(single.mean_decode_context(), 100.0);
    }

    #[test]
    fn with_batch_swaps_only_the_batch() {
        let w = InferenceConfig::new(512, 128, 1).unwrap();
        let b8 = w.with_batch(8).unwrap();
        assert_eq!(b8.batch(), 8);
        assert_eq!(b8.prompt_tokens(), w.prompt_tokens());
    }

    #[test]
    fn serde_roundtrip() {
        let w = InferenceConfig::new(512, 128, 8).unwrap().with_kv_bits(8).unwrap();
        let json = serde_json::to_string(&w).unwrap();
        let back: InferenceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }
}
