//! Scenario diagnostics: non-fatal warnings about launch configurations
//! that are *valid* but likely regrettable.
//!
//! [`Parallelism::validate_against`](crate::Parallelism::validate_against)
//! rejects impossible mappings; this module flags the merely unwise ones —
//! the situations the paper's case studies warn about (inter-node TP over
//! thin links, microbatches starving efficiency, bubbles from too few
//! microbatches, degrees that do not divide the model's shape evenly).

use serde::{Deserialize, Serialize};

use crate::model::TransformerModel;
use crate::network::SystemSpec;
use crate::parallelism::Parallelism;
use crate::training::TrainingConfig;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Worth knowing; unlikely to dominate.
    Note,
    /// Probably costing real time or memory.
    Warning,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// How serious it is.
    pub severity: Severity,
    /// Stable machine-readable code (kebab-case).
    pub code: &'static str,
    /// Human-readable explanation with the numbers filled in.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = match self.severity {
            Severity::Note => "note",
            Severity::Warning => "warning",
        };
        write!(f, "{tag}[{}]: {}", self.code, self.message)
    }
}

/// Inspect a scenario and return everything worth flagging (possibly
/// empty). Inputs must already be individually valid.
pub fn check_scenario(
    model: &TransformerModel,
    system: &SystemSpec,
    parallelism: &Parallelism,
    training: &TrainingConfig,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let p = parallelism;

    // The case-study headline: TP across nodes over a slow network.
    let intra_bw = system.intra().bandwidth_bits_per_sec;
    let inter_bw_stream = (system.inter_bandwidth_per_accel() * p.tp_intra() as f64)
        .min(system.inter().bandwidth_bits_per_sec * system.nics_per_node() as f64);
    if p.tp_inter() > 1 && inter_bw_stream < 0.5 * intra_bw {
        out.push(Diagnostic {
            severity: Severity::Warning,
            code: "tp-inter-slow-links",
            message: format!(
                "tensor parallelism spans {} nodes but the inter-node stream \
                 ({:.1e} b/s) is far slower than the intra-node fabric ({intra_bw:.1e} b/s); \
                 the paper's case study I measures a ~2x slowdown for such mappings",
                p.tp_inter(),
                inter_bw_stream
            ),
        });
    }

    // Degrees that do not divide the model evenly.
    if !model.num_heads().is_multiple_of(p.tp()) {
        out.push(Diagnostic {
            severity: Severity::Warning,
            code: "tp-heads-indivisible",
            message: format!(
                "tensor-parallel degree {} does not divide {} attention heads; \
                 real implementations cannot shard this evenly",
                p.tp(),
                model.num_heads()
            ),
        });
    }
    let stack_len = model.layer_stack().len();
    if p.pp() > 1 && !stack_len.is_multiple_of(p.pp()) {
        out.push(Diagnostic {
            severity: Severity::Note,
            code: "pp-stages-imbalanced",
            message: format!(
                "{stack_len} layer-stack entries over {} pipeline stages leaves the \
                 slowest stage with extra work; consider EngineOptions::stage_imbalance_correction",
                p.pp()
            ),
        });
    }

    // Batch starvation: the efficiency collapse of case study I's §VI-D.
    if !training.global_batch().is_multiple_of(p.dp()) {
        out.push(Diagnostic {
            severity: Severity::Warning,
            code: "batch-dp-indivisible",
            message: format!(
                "global batch {} does not divide across {} data-parallel replicas",
                training.global_batch(),
                p.dp()
            ),
        });
    }
    let ub = p.microbatch_size(training.global_batch());
    if ub < 4.0 {
        out.push(Diagnostic {
            severity: Severity::Warning,
            code: "microbatch-starvation",
            message: format!(
                "microbatch of {ub:.1} samples will run the accelerators far below \
                 peak (the paper's DP-heavy mappings bottom out at a 25% efficiency floor)"
            ),
        });
    }

    // Bubble domination: too few microbatches per pipeline stage.
    let n_ub = p.num_microbatches(training.global_batch());
    if p.pp() > 1 && n_ub < 4 * p.pp() {
        out.push(Diagnostic {
            severity: Severity::Note,
            code: "pipeline-bubble-heavy",
            message: format!(
                "{n_ub} microbatches over {} pipeline stages gives a bubble fraction \
                 of ~{:.0}%; more microbatches or an interleaved schedule would shrink it",
                p.pp(),
                (p.pp() as f64 - 1.0) / n_ub as f64 * 100.0
            ),
        });
    }

    // Idle silicon: mapping does not use the whole system.
    if p.total_workers() < system.total_accelerators() {
        out.push(Diagnostic {
            severity: Severity::Note,
            code: "idle-accelerators",
            message: format!(
                "the mapping uses {} of {} accelerators",
                p.total_workers(),
                system.total_accelerators()
            ),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;

    fn model() -> TransformerModel {
        TransformerModel::builder("diag")
            .layers(16)
            .hidden_size(1024)
            .heads(16)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap()
    }

    fn system() -> SystemSpec {
        SystemSpec::new(4, 8, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 8).unwrap()
    }

    fn codes(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|x| x.code).collect()
    }

    #[test]
    fn clean_scenario_raises_nothing() {
        let p = Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap();
        let t = TrainingConfig::new(1024, 1).unwrap();
        let d = check_scenario(&model(), &system(), &p, &t);
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn flags_tp_over_thin_links() {
        let thin = SystemSpec::new(4, 8, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e10), 1)
            .unwrap();
        let p = Parallelism::builder().tp(4, 4).dp(2, 1).build().unwrap();
        let t = TrainingConfig::new(1024, 1).unwrap();
        let d = check_scenario(&model(), &thin, &p, &t);
        assert!(codes(&d).contains(&"tp-inter-slow-links"), "{d:?}");
    }

    #[test]
    fn flags_indivisible_heads_and_stages() {
        let m = TransformerModel::builder("odd")
            .layers(13)
            .hidden_size(1155)
            .heads(15)
            .seq_len(128)
            .vocab_size(1000)
            .include_head(false)
            .build()
            .unwrap();
        let sys = SystemSpec::new(1, 8, Link::new(1e-6, 1e12), Link::new(1e-5, 1e11), 1).unwrap();
        let p = Parallelism::builder().tp(2, 1).pp(4, 1).build().unwrap();
        let t = TrainingConfig::new(512, 1).unwrap();
        let d = check_scenario(&m, &sys, &p, &t);
        let c = codes(&d);
        assert!(c.contains(&"tp-heads-indivisible"), "{d:?}");
        assert!(c.contains(&"pp-stages-imbalanced"), "{d:?}");
    }

    #[test]
    fn flags_starved_microbatches_and_bubbles() {
        let p = Parallelism::builder()
            .dp(8, 4)
            .build()
            .unwrap();
        let t = TrainingConfig::new(64, 1).unwrap(); // 2 samples per replica
        let d = check_scenario(&model(), &system(), &p, &t);
        assert!(codes(&d).contains(&"microbatch-starvation"), "{d:?}");

        let pp = Parallelism::builder().pp(8, 4).dp(1, 1).tp(1, 1).build().unwrap();
        let d = check_scenario(&model(), &system(), &pp, &TrainingConfig::new(4096, 1).unwrap());
        // pp = 32 > 16 layers is invalid; use a legal depth instead.
        let pp = Parallelism::builder().pp(4, 2).dp(2, 2).build().unwrap();
        let d2 = check_scenario(&model(), &system(), &pp, &TrainingConfig::new(4096, 1).unwrap());
        let _ = d;
        assert!(codes(&d2).contains(&"pipeline-bubble-heavy"), "{d2:?}");
    }

    #[test]
    fn flags_idle_accelerators_and_odd_batches() {
        let p = Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap(); // 16 of 32
        let t = TrainingConfig::new(1023, 1).unwrap();
        let d = check_scenario(&model(), &system(), &p, &t);
        let c = codes(&d);
        assert!(c.contains(&"idle-accelerators"), "{d:?}");
        assert!(c.contains(&"batch-dp-indivisible"), "{d:?}");
    }

    #[test]
    fn display_includes_code() {
        let d = Diagnostic {
            severity: Severity::Warning,
            code: "test-code",
            message: "something".into(),
        };
        assert!(d.to_string().contains("warning[test-code]"));
        assert!(Severity::Note < Severity::Warning);
    }
}
