//! The cost-backend abstraction: one interface over every way of pricing
//! a training scenario.
//!
//! The analytical estimator (Eq. 1–12) and the discrete-event simulator in
//! `amped-sim` answer the same question — "how long does one optimizer step
//! of this scenario take, and where does the time go?" — with different
//! fidelity/cost trade-offs. [`CostBackend`] is the common contract:
//! evaluate an owned [`Scenario`] bundle for a training run and return the
//! standard [`Estimate`] with its [`Breakdown`](crate::Breakdown) taxonomy.
//! Downstream crates (`amped-search`, `amped-cli`, `amped-report`,
//! `amped-bench`) program against the trait and gain new backends without
//! per-crate plumbing.
//!
//! [`AnalyticalBackend`] lives here; the simulator-driven `SimBackend`
//! lives in `amped-sim` (core cannot depend on it).

use std::sync::Arc;

use amped_obs::Observer;

use crate::accelerator::AcceleratorSpec;
use crate::efficiency::EfficiencyModel;
use crate::engine::{EngineOptions, Estimate, EstimateCache, Estimator};
use crate::error::Result;
use crate::model::TransformerModel;
use crate::network::SystemSpec;
use crate::parallelism::Parallelism;
use crate::precision::Precision;
use crate::training::TrainingConfig;

/// A fully specified estimation scenario, owned in one bundle.
///
/// The [`Estimator`] borrows its four specifications, which is right for
/// tight per-candidate loops but forces every call site to thread six
/// arguments (plus precision/efficiency/options overrides) through each
/// layer. `Scenario` owns the whole configuration so it can be stored,
/// cloned, sent across threads, and handed to any [`CostBackend`].
///
/// # Example
///
/// ```
/// use amped_core::{
///     AcceleratorSpec, AnalyticalBackend, CostBackend, EfficiencyModel, Link, Parallelism,
///     Scenario, SystemSpec, TrainingConfig, TransformerModel,
/// };
///
/// # fn main() -> Result<(), amped_core::Error> {
/// let model = TransformerModel::builder("demo")
///     .layers(24).hidden_size(2048).heads(16).seq_len(1024).vocab_size(32000)
///     .build()?;
/// let accel = AcceleratorSpec::builder("A100")
///     .frequency_hz(1.41e9).cores(108).mac_units(4, 512, 8)
///     .nonlin_units(192, 4, 32).memory(80e9, 2.0e12)
///     .build()?;
/// let system = SystemSpec::new(2, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
/// let parallelism = Parallelism::builder().tp(8, 1).dp(1, 2).build()?;
///
/// let scenario = Scenario::new(model, accel, system, parallelism)
///     .with_efficiency(EfficiencyModel::Constant(0.5));
/// let estimate = AnalyticalBackend.evaluate(&scenario, &TrainingConfig::new(512, 100)?)?;
/// assert!(estimate.total_time.get() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The transformer under training.
    pub model: TransformerModel,
    /// The accelerator populating the cluster.
    pub accelerator: AcceleratorSpec,
    /// The cluster (nodes × accelerators, links).
    pub system: SystemSpec,
    /// The parallelism mapping.
    pub parallelism: Parallelism,
    /// Operand precisions.
    pub precision: Precision,
    /// Microbatch-efficiency model.
    pub efficiency: EfficiencyModel,
    /// Engine knobs shared by every backend.
    pub options: EngineOptions,
}

impl Scenario {
    /// Bundle the four specifications with default precision, efficiency
    /// and options.
    pub fn new(
        model: TransformerModel,
        accelerator: AcceleratorSpec,
        system: SystemSpec,
        parallelism: Parallelism,
    ) -> Self {
        Scenario {
            model,
            accelerator,
            system,
            parallelism,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            options: EngineOptions::default(),
        }
    }

    /// Override the operand precisions.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the microbatch-efficiency model.
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Override the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// The same scenario under a different parallelism mapping — the
    /// per-candidate operation of a design-space search.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// An [`Estimator`] borrowing this scenario, carrying its precision,
    /// efficiency and options overrides.
    pub fn estimator(&self) -> Estimator<'_> {
        Estimator::new(
            &self.model,
            &self.accelerator,
            &self.system,
            &self.parallelism,
        )
        .with_precision(self.precision)
        .with_efficiency(self.efficiency.clone())
        .with_options(self.options)
    }
}

/// How literally a backend's [`Breakdown`](crate::Breakdown) components can
/// be read — the capability probe of the [`CostBackend`] contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownFidelity {
    /// Every component is computed from its own closed form; component
    /// sums and totals are exact in the backend's own terms.
    Exact,
    /// Totals are faithful but some components are re-attributed from
    /// another representation (e.g. a simulator timeline where TP traffic
    /// is folded into compute task durations).
    Approximate,
}

/// A cost model that prices a [`Scenario`] for a training run.
///
/// Implementations must be deterministic: the same scenario and training
/// config return the same [`Estimate`] bit-for-bit, which is what lets the
/// search rank candidates reproducibly at any worker count. `Sync` is part
/// of the contract so one backend instance can serve a worker pool.
pub trait CostBackend: Sync {
    /// A short stable identifier (`"analytical"`, `"sim"`, …) used in CLI
    /// flags and report provenance.
    fn name(&self) -> &'static str;

    /// Whether breakdown components are individually exact or partially
    /// re-attributed. Totals are always faithful.
    fn breakdown_fidelity(&self) -> BreakdownFidelity;

    /// Price `scenario` for `training`.
    ///
    /// # Errors
    ///
    /// Returns an error when any scenario component fails validation or
    /// the parallelism mapping does not fit the system/model.
    fn evaluate(&self, scenario: &Scenario, training: &TrainingConfig) -> Result<Estimate>;

    /// Price many parallelism candidates under one scenario, returning one
    /// result per candidate in order (the scenario's own mapping is
    /// replaced by each candidate in turn).
    ///
    /// The default implementation loops [`evaluate`](Self::evaluate), so
    /// every backend batches correctly for free; backends with a real
    /// batch path (see [`AnalyticalBackend`] and
    /// [`BatchEvaluator`](crate::BatchEvaluator)) override it for speed.
    /// Overrides must stay bit-identical to the default loop.
    fn evaluate_many(
        &self,
        scenario: &Scenario,
        mappings: &[Parallelism],
        training: &TrainingConfig,
    ) -> Vec<Result<Estimate>> {
        let mut scenario = scenario.clone();
        mappings
            .iter()
            .map(|p| {
                scenario.parallelism = *p;
                self.evaluate(&scenario, training)
            })
            .collect()
    }
}

/// The AMPeD analytical model (Eq. 1–12) as a [`CostBackend`].
///
/// Evaluates through [`Estimator::estimate_cached`] with a private cache,
/// which is bit-identical to evaluating with any warmed cache for the same
/// scenario — so trait-based results match `amped-search`'s memoized
/// per-worker path exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticalBackend;

impl AnalyticalBackend {
    /// Evaluate against a caller-owned cache (the memoized hot path: reuse
    /// one cache across many parallelism variants of one scenario).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CostBackend::evaluate`].
    pub fn evaluate_with_cache(
        &self,
        cache: &mut EstimateCache,
        scenario: &Scenario,
        training: &TrainingConfig,
    ) -> Result<Estimate> {
        scenario.estimator().estimate_cached(cache, training)
    }

    /// Batch-evaluate many candidates against a caller-owned cache through
    /// [`BatchEvaluator`](crate::BatchEvaluator) — bit-identical to calling
    /// [`evaluate_with_cache`](Self::evaluate_with_cache) per candidate
    /// with the same cache, and fills the cache with the same entries.
    pub fn evaluate_many_with_cache(
        &self,
        cache: &mut EstimateCache,
        scenario: &Scenario,
        mappings: &[Parallelism],
        training: &TrainingConfig,
    ) -> Vec<Result<Estimate>> {
        crate::engine::BatchEvaluator::from_scenario(scenario).estimate_many(
            cache, mappings, training,
        )
    }
}

impl CostBackend for AnalyticalBackend {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn breakdown_fidelity(&self) -> BreakdownFidelity {
        BreakdownFidelity::Exact
    }

    fn evaluate(&self, scenario: &Scenario, training: &TrainingConfig) -> Result<Estimate> {
        let mut cache = EstimateCache::new();
        self.evaluate_with_cache(&mut cache, scenario, training)
    }

    fn evaluate_many(
        &self,
        scenario: &Scenario,
        mappings: &[Parallelism],
        training: &TrainingConfig,
    ) -> Vec<Result<Estimate>> {
        let mut cache = EstimateCache::new();
        self.evaluate_many_with_cache(&mut cache, scenario, mappings, training)
    }
}

/// A [`CostBackend`] decorator that records each evaluation on an
/// [`Observer`]: a timed span (category `"evaluate"`, named after the inner
/// backend) and a `backend.<name>.evaluations` counter.
///
/// Observation is passive — the wrapper forwards the call unchanged and the
/// observer only reads clocks and bumps atomics, so estimates are
/// bit-identical to the bare inner backend's.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use amped_core::{AnalyticalBackend, CostBackend, ObservedBackend};
/// use amped_obs::Observer;
///
/// let observer = Arc::new(Observer::new());
/// let backend = ObservedBackend::new(Box::new(AnalyticalBackend), observer.clone());
/// assert_eq!(backend.name(), "analytical");
/// // ... backend.evaluate(&scenario, &training) ...
/// assert_eq!(observer.counters().len(), 1); // registered eagerly at 0
/// ```
pub struct ObservedBackend {
    inner: Box<dyn CostBackend>,
    observer: Arc<Observer>,
    evaluations: amped_obs::Counter,
}

impl ObservedBackend {
    /// Wrap `inner` so every evaluation is recorded on `observer`. The
    /// `backend.<name>.evaluations` counter is registered immediately (at
    /// zero), so reports show the backend even before any evaluation.
    pub fn new(inner: Box<dyn CostBackend>, observer: Arc<Observer>) -> Self {
        let evaluations = observer.counter(&format!("backend.{}.evaluations", inner.name()));
        ObservedBackend {
            inner,
            observer,
            evaluations,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &dyn CostBackend {
        self.inner.as_ref()
    }
}

impl std::fmt::Debug for ObservedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedBackend")
            .field("inner", &self.inner.name())
            .finish_non_exhaustive()
    }
}

impl CostBackend for ObservedBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn breakdown_fidelity(&self) -> BreakdownFidelity {
        self.inner.breakdown_fidelity()
    }

    fn evaluate(&self, scenario: &Scenario, training: &TrainingConfig) -> Result<Estimate> {
        let _span = self.observer.span_with_cat(self.inner.name(), "evaluate");
        self.evaluations.incr();
        self.inner.evaluate(scenario, training)
    }

    fn evaluate_many(
        &self,
        scenario: &Scenario,
        mappings: &[Parallelism],
        training: &TrainingConfig,
    ) -> Vec<Result<Estimate>> {
        let _span = self
            .observer
            .span_with_cat(self.inner.name(), "evaluate_many");
        self.evaluations.add(mappings.len() as u64);
        self.inner.evaluate_many(scenario, mappings, training)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;

    fn scenario() -> Scenario {
        let model = TransformerModel::builder("backend-m")
            .layers(24)
            .hidden_size(2048)
            .heads(16)
            .seq_len(1024)
            .vocab_size(32000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .build()
            .unwrap();
        let system = SystemSpec::new(
            2,
            8,
            Link::new(5e-6, 2.4e12),
            Link::new(1e-5, 2e11),
            8,
        )
        .unwrap();
        let parallelism = Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap();
        Scenario::new(model, accel, system, parallelism)
            .with_efficiency(EfficiencyModel::Constant(0.5))
    }

    #[test]
    fn analytical_backend_matches_estimator_bitwise() {
        let s = scenario();
        let training = TrainingConfig::new(256, 10).unwrap();
        let via_trait = AnalyticalBackend.evaluate(&s, &training).unwrap();
        let mut cache = EstimateCache::new();
        let direct = s.estimator().estimate_cached(&mut cache, &training).unwrap();
        assert_eq!(
            via_trait.total_time.get().to_bits(),
            direct.total_time.get().to_bits()
        );
        assert_eq!(
            via_trait.time_per_iteration.get().to_bits(),
            direct.time_per_iteration.get().to_bits()
        );
        assert_eq!(via_trait.num_microbatches, direct.num_microbatches);
    }

    #[test]
    fn analytical_backend_is_deterministic_through_the_trait_object() {
        let s = scenario();
        let training = TrainingConfig::new(256, 10).unwrap();
        let backend: &dyn CostBackend = &AnalyticalBackend;
        assert_eq!(backend.name(), "analytical");
        assert_eq!(backend.breakdown_fidelity(), BreakdownFidelity::Exact);
        let a = backend.evaluate(&s, &training).unwrap();
        let b = backend.evaluate(&s, &training).unwrap();
        assert_eq!(
            a.total_time.get().to_bits(),
            b.total_time.get().to_bits()
        );
    }

    #[test]
    fn observed_backend_is_transparent_and_counts() {
        let s = scenario();
        let training = TrainingConfig::new(256, 10).unwrap();
        let bare = AnalyticalBackend.evaluate(&s, &training).unwrap();
        let obs = Arc::new(Observer::new());
        let wrapped = ObservedBackend::new(Box::new(AnalyticalBackend), obs.clone());
        assert_eq!(wrapped.name(), "analytical");
        assert_eq!(wrapped.breakdown_fidelity(), BreakdownFidelity::Exact);
        assert_eq!(obs.counters()["backend.analytical.evaluations"], 0);
        let a = wrapped.evaluate(&s, &training).unwrap();
        let b = wrapped.evaluate(&s, &training).unwrap();
        assert_eq!(a.total_time.get().to_bits(), bare.total_time.get().to_bits());
        assert_eq!(b.total_time.get().to_bits(), bare.total_time.get().to_bits());
        assert_eq!(obs.counters()["backend.analytical.evaluations"], 2);
        // Each evaluation left a timed span on the trace.
        let spans = obs.trace_events();
        assert_eq!(
            spans.iter().filter(|e| e.cat == "evaluate").count(),
            2,
            "spans: {spans:?}"
        );
    }

    #[test]
    fn scenario_with_parallelism_swaps_only_the_mapping() {
        let s = scenario();
        let p2 = Parallelism::builder().tp(4, 1).dp(2, 2).build().unwrap();
        let swapped = s.clone().with_parallelism(p2);
        assert_eq!(swapped.parallelism.tp_intra(), 4);
        assert_eq!(swapped.model.num_layers(), s.model.num_layers());
    }

    #[test]
    fn evaluate_many_override_matches_the_default_loop_bitwise() {
        let s = scenario();
        let training = TrainingConfig::new(256, 10).unwrap();
        let mappings = vec![
            Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap(),
            Parallelism::builder().tp(4, 1).dp(2, 2).build().unwrap(),
            Parallelism::builder().tp(4, 1).build().unwrap(), // invalid: 4 != 32
            Parallelism::builder().tp(2, 1).dp(4, 2).build().unwrap(),
        ];

        // A shim backend that forwards `evaluate` but keeps the trait's
        // default `evaluate_many` loop, as the reference.
        struct DefaultLoop;
        impl CostBackend for DefaultLoop {
            fn name(&self) -> &'static str {
                "default-loop"
            }
            fn breakdown_fidelity(&self) -> BreakdownFidelity {
                BreakdownFidelity::Exact
            }
            fn evaluate(&self, scenario: &Scenario, training: &TrainingConfig) -> Result<Estimate> {
                AnalyticalBackend.evaluate(scenario, training)
            }
        }

        let reference = DefaultLoop.evaluate_many(&s, &mappings, &training);
        let batched = AnalyticalBackend.evaluate_many(&s, &mappings, &training);
        assert_eq!(reference.len(), batched.len());
        for (r, b) in reference.iter().zip(&batched) {
            match (r, b) {
                (Ok(r), Ok(b)) => {
                    assert_eq!(
                        r.total_time.get().to_bits(),
                        b.total_time.get().to_bits()
                    );
                    assert_eq!(
                        r.time_per_iteration.get().to_bits(),
                        b.time_per_iteration.get().to_bits()
                    );
                }
                (Err(_), Err(_)) => {}
                (r, b) => panic!("outcome mismatch: {r:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn observed_backend_counts_batch_evaluations_per_candidate() {
        let s = scenario();
        let training = TrainingConfig::new(256, 10).unwrap();
        let mappings = vec![
            Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap(),
            Parallelism::builder().tp(4, 1).dp(2, 2).build().unwrap(),
        ];
        let obs = Arc::new(Observer::new());
        let wrapped = ObservedBackend::new(Box::new(AnalyticalBackend), obs.clone());
        let out = wrapped.evaluate_many(&s, &mappings, &training);
        assert_eq!(out.len(), 2);
        assert_eq!(obs.counters()["backend.analytical.evaluations"], 2);
        let spans = obs.trace_events();
        assert_eq!(
            spans.iter().filter(|e| e.cat == "evaluate_many").count(),
            1,
            "spans: {spans:?}"
        );
    }

    #[test]
    fn backend_propagates_invalid_mappings() {
        let s = scenario().with_parallelism(
            Parallelism::builder().tp(4, 1).build().unwrap(), // 4 != 32
        );
        let r = AnalyticalBackend.evaluate(&s, &TrainingConfig::new(8, 1).unwrap());
        assert!(r.is_err());
    }
}
