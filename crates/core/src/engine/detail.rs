//! Per-layer estimation detail — where every second of Eq. 1 comes from.
//!
//! The aggregate [`Breakdown`](crate::Breakdown) answers *what kind* of
//! time dominates; [`DetailedEstimate`] answers *which layers* it comes
//! from, which is what hardware–software co-design needs (e.g. "the head's
//! vocabulary projection is 4 % of compute", "MoE layers carry all the
//! all-to-all time").

use serde::{Deserialize, Serialize};

use crate::model::LayerKind;

/// One layer's contribution to an iteration, in seconds, already divided
/// by the parallel workers exactly as Eq. 1 divides it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerEstimate {
    /// Position in the layer stack (head last).
    pub index: usize,
    /// Layer role.
    pub kind: LayerKind,
    /// Forward compute share.
    pub compute_forward: f64,
    /// Backward compute share.
    pub compute_backward: f64,
    /// Weight-update share.
    pub weight_update: f64,
    /// Tensor-parallel communication (intra + inter, fwd + bwd).
    pub tp_comm: f64,
    /// Mixture-of-experts all-to-all (fwd + bwd).
    pub moe_comm: f64,
    /// Gradient synchronization for this layer's weights.
    pub dp_comm: f64,
}

impl LayerEstimate {
    /// The layer's total contribution.
    pub fn total(&self) -> f64 {
        self.compute_forward
            + self.compute_backward
            + self.weight_update
            + self.tp_comm
            + self.moe_comm
            + self.dp_comm
    }
}

/// A full estimate with per-layer attribution.
///
/// Produced by [`Estimator::estimate_detailed`](crate::Estimator::estimate_detailed);
/// the `estimate` field equals what [`Estimator::estimate`](crate::Estimator::estimate)
/// returns, and the per-layer rows sum back to its breakdown (pipeline
/// communication and bubble time are whole-pipeline quantities and appear
/// only in the aggregate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailedEstimate {
    /// The aggregate estimate.
    pub estimate: super::Estimate,
    /// Per-layer rows, stack order.
    pub layers: Vec<LayerEstimate>,
}

impl DetailedEstimate {
    /// The `n` most expensive layers, descending by total contribution.
    pub fn hottest_layers(&self, n: usize) -> Vec<&LayerEstimate> {
        let mut sorted: Vec<&LayerEstimate> = self.layers.iter().collect();
        sorted.sort_by(|a, b| b.total().partial_cmp(&a.total()).expect("finite"));
        sorted.truncate(n);
        sorted
    }

    /// Total attributed to layers of `kind`.
    pub fn total_for_kind(&self, kind: LayerKind) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.kind == kind)
            .map(LayerEstimate::total)
            .sum()
    }
}

impl std::fmt::Display for DetailedEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>5} {:<6} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "layer", "kind", "fwd", "bwd", "tp comm", "moe comm", "dp comm"
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "{:>5} {:<6} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e} {:>11.3e}",
                l.index,
                match l.kind {
                    LayerKind::Dense => "dense",
                    LayerKind::Moe => "moe",
                    LayerKind::Head => "head",
                },
                l.compute_forward,
                l.compute_backward,
                l.tp_comm,
                l.moe_comm,
                l.dp_comm
            )?;
        }
        write!(f, "{}", self.estimate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Estimate;
    use crate::units::Seconds;

    fn layer(index: usize, kind: LayerKind, scale: f64) -> LayerEstimate {
        LayerEstimate {
            index,
            kind,
            compute_forward: scale,
            compute_backward: 2.0 * scale,
            weight_update: 0.1 * scale,
            tp_comm: 0.2 * scale,
            moe_comm: if kind == LayerKind::Moe { 0.5 * scale } else { 0.0 },
            dp_comm: 0.1 * scale,
        }
    }

    fn detailed() -> DetailedEstimate {
        let layers = vec![
            layer(0, LayerKind::Dense, 1.0),
            layer(1, LayerKind::Moe, 2.0),
            layer(2, LayerKind::Head, 0.5),
        ];
        let total: f64 = layers.iter().map(LayerEstimate::total).sum();
        DetailedEstimate {
            estimate: Estimate {
                breakdown: Default::default(),
                time_per_iteration: Seconds::new(total),
                total_time: Seconds::new(total),
                microbatch_size: 1.0,
                num_microbatches: 1,
                efficiency: 1.0,
                model_flops_per_iteration: 1.0,
                tflops_per_gpu: 1.0,
                total_workers: 1,
                tokens_per_sec: 1.0,
            },
            layers,
        }
    }

    #[test]
    fn hottest_layers_sorted_descending() {
        let d = detailed();
        let hot = d.hottest_layers(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].index, 1); // the MoE layer, 2x scale
        assert_eq!(hot[1].index, 0);
        assert!(hot[0].total() >= hot[1].total());
    }

    #[test]
    fn totals_by_kind() {
        let d = detailed();
        assert!(d.total_for_kind(LayerKind::Moe) > d.total_for_kind(LayerKind::Head));
        let sum: f64 = [LayerKind::Dense, LayerKind::Moe, LayerKind::Head]
            .iter()
            .map(|&k| d.total_for_kind(k))
            .sum();
        let direct: f64 = d.layers.iter().map(LayerEstimate::total).sum();
        assert!((sum - direct).abs() < 1e-12);
    }

    #[test]
    fn display_has_one_row_per_layer() {
        let d = detailed();
        let text = d.to_string();
        assert!(text.contains("dense") && text.contains("moe") && text.contains("head"));
    }
}
