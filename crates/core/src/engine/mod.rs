//! The AMPeD estimation engine: Eq. 1–12 of the paper.
//!
//! [`Estimator`] combines a [`TransformerModel`](crate::TransformerModel),
//! an [`AcceleratorSpec`](crate::AcceleratorSpec), a
//! [`SystemSpec`](crate::SystemSpec) and a
//! [`Parallelism`](crate::Parallelism) mapping, and produces an
//! [`Estimate`]: the per-iteration and end-to-end training time with a full
//! [`Breakdown`] into compute, per-parallelism communication, and pipeline
//! bubbles.

mod backend;
mod batch;
mod breakdown;
mod cache;
mod cached;
mod detail;
mod estimator;
mod options;
mod pool;

pub use backend::{AnalyticalBackend, BreakdownFidelity, CostBackend, ObservedBackend, Scenario};
pub use batch::BatchEvaluator;
pub use breakdown::{Breakdown, Estimate};
pub use cache::EstimateCache;
pub use pool::{context_key, CacheLease, CachePool};
pub use detail::{DetailedEstimate, LayerEstimate};
pub use estimator::Estimator;
pub use options::{BubbleAccounting, EngineOptions};
