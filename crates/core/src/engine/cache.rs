//! Memoized sub-results for repeated estimation over one scenario.
//!
//! Design-space search evaluates thousands of `(Parallelism, TrainingConfig)`
//! points against a *fixed* model / accelerator / system / precision /
//! efficiency / engine-option context. Most of the work inside
//! [`Estimator::estimate`](super::Estimator::estimate) is invariant across
//! those points: per-layer operation counts depend only on `(kind, batch)`,
//! collective cost factors only on `(topology, collective, group size)`,
//! the gradient-sync volume only on `(TP, PP)`, and the stage-imbalance
//! ratio only on `(PP, eff)`. [`EstimateCache`] memoizes exactly those
//! sub-results so [`Estimator::estimate_cached`](super::Estimator::estimate_cached)
//! does O(distinct layer kinds) work per call instead of O(layers).
//!
//! # Context binding
//!
//! A cache carries no fingerprint of the scenario it was filled from. It
//! MUST only be reused across estimators that share the same model,
//! accelerator, system, precision, efficiency model and engine options —
//! the parallelism mapping and training configuration are the only inputs
//! allowed to vary (they are part of every key). `amped-search` upholds
//! this by creating one cache per worker per engine; ad-hoc callers should
//! create a fresh cache per scenario (construction is free).

use std::collections::HashMap;

use amped_topo::{Collective, CollectiveCost, Topology};

use crate::counts::LayerCounts;
use crate::model::{LayerKind, TransformerModel};

/// Memoized sub-results of the analytical model (see the module docs for
/// the context-binding contract).
///
/// # Example
///
/// ```
/// use amped_core::{
///     AcceleratorSpec, EstimateCache, Estimator, Link, Parallelism, SystemSpec,
///     TrainingConfig, TransformerModel,
/// };
/// # fn main() -> Result<(), amped_core::Error> {
/// let model = TransformerModel::builder("demo")
///     .layers(8).hidden_size(512).heads(8).seq_len(128).vocab_size(2000)
///     .build()?;
/// let accel = AcceleratorSpec::builder("A100")
///     .frequency_hz(1.41e9).cores(108).mac_units(4, 512, 8)
///     .nonlin_units(192, 4, 32).memory(80e9, 2.0e12)
///     .build()?;
/// let system = SystemSpec::new(1, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
/// let p = Parallelism::builder().tp(8, 1).build()?;
/// let training = TrainingConfig::new(64, 10)?;
///
/// let mut cache = EstimateCache::new();
/// let estimator = Estimator::new(&model, &accel, &system, &p);
/// let first = estimator.estimate_cached(&mut cache, &training)?;
/// let again = estimator.estimate_cached(&mut cache, &training)?;
/// assert_eq!(first.total_time, again.total_time);
/// assert!(cache.hits() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EstimateCache {
    /// Layer kinds with their multiplicities, in first-occurrence order.
    groups: Option<Vec<(LayerKind, usize)>>,
    /// Per-layer counts keyed by `(kind, batch.to_bits())`.
    counts: HashMap<(LayerKind, u64), LayerCounts>,
    /// Collective cost factors keyed by `(topology, collective, group size)`.
    collectives: HashMap<(Topology, Collective, usize), CollectiveCost>,
    /// Stage-imbalance ratio `t*/t̄ ≥ 1`, keyed by `(pp, eff.to_bits())`.
    imbalance: HashMap<(usize, u64), f64>,
    /// Fused gradient-sync volume `N_g` keyed by `(tp, pp)`.
    grad_volume: HashMap<(usize, usize), f64>,
    /// Model FLOPs per iteration keyed by `(global_batch, recompute)`.
    model_flops: HashMap<(usize, bool), f64>,
    hits: u64,
    misses: u64,
}

impl EstimateCache {
    /// An empty cache (construction allocates nothing).
    pub fn new() -> Self {
        EstimateCache::default()
    }

    /// How many sub-result lookups were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// How many sub-result lookups had to be computed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop every memoized value (e.g. before switching scenarios).
    pub fn clear(&mut self) {
        self.groups = None;
        self.counts.clear();
        self.collectives.clear();
        self.imbalance.clear();
        self.grad_volume.clear();
        self.model_flops.clear();
    }

    /// The model's layer kinds with multiplicities, first-occurrence order.
    /// The grouped order is what fixes the float summation association of
    /// the cached estimate (and of the lower bound, which must match it).
    pub(crate) fn groups(&mut self, model: &TransformerModel) -> Vec<(LayerKind, usize)> {
        if let Some(g) = &self.groups {
            self.hits += 1;
            return g.clone();
        }
        self.misses += 1;
        let mut groups: Vec<(LayerKind, usize)> = Vec::new();
        for kind in model.layer_stack() {
            match groups.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => groups.push((kind, 1)),
            }
        }
        self.groups = Some(groups.clone());
        groups
    }

    /// Per-layer counts at `batch` sequences.
    pub(crate) fn layer_counts(
        &mut self,
        model: &TransformerModel,
        kind: LayerKind,
        batch: f64,
    ) -> LayerCounts {
        let key = (kind, batch.to_bits());
        if let Some(c) = self.counts.get(&key) {
            self.hits += 1;
            return *c;
        }
        self.misses += 1;
        let c = LayerCounts::for_layer(model, kind, batch);
        self.counts.insert(key, c);
        c
    }

    /// Collective cost factor for `collective` over `n` ranks on `topology`.
    pub(crate) fn collective(
        &mut self,
        topology: Topology,
        collective: Collective,
        n: usize,
    ) -> CollectiveCost {
        let key = (topology, collective, n);
        if let Some(c) = self.collectives.get(&key) {
            self.hits += 1;
            return *c;
        }
        self.misses += 1;
        let c = topology.cost(collective, n);
        self.collectives.insert(key, c);
        c
    }

    /// Memoized stage-imbalance ratio for `(pp, eff)`.
    pub(crate) fn imbalance_ratio(
        &mut self,
        pp: usize,
        eff_bits: u64,
    ) -> Option<f64> {
        let r = self.imbalance.get(&(pp, eff_bits)).copied();
        if r.is_some() {
            self.hits += 1;
        }
        r
    }

    /// Record the stage-imbalance ratio for `(pp, eff)`.
    pub(crate) fn set_imbalance_ratio(&mut self, pp: usize, eff_bits: u64, r: f64) {
        self.misses += 1;
        self.imbalance.insert((pp, eff_bits), r);
    }

    /// Memoized gradient-sync volume for `(tp, pp)`.
    pub(crate) fn grad_volume(&mut self, tp: usize, pp: usize) -> Option<f64> {
        let v = self.grad_volume.get(&(tp, pp)).copied();
        if v.is_some() {
            self.hits += 1;
        }
        v
    }

    /// Record the gradient-sync volume for `(tp, pp)`.
    pub(crate) fn set_grad_volume(&mut self, tp: usize, pp: usize, v: f64) {
        self.misses += 1;
        self.grad_volume.insert((tp, pp), v);
    }

    /// Memoized model FLOPs for `(global_batch, recompute)`.
    pub(crate) fn model_flops(&mut self, global_batch: usize, recompute: bool) -> Option<f64> {
        let v = self.model_flops.get(&(global_batch, recompute)).copied();
        if v.is_some() {
            self.hits += 1;
        }
        v
    }

    /// Record the model FLOPs for `(global_batch, recompute)`.
    pub(crate) fn set_model_flops(&mut self, global_batch: usize, recompute: bool, v: f64) {
        self.misses += 1;
        self.model_flops.insert((global_batch, recompute), v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransformerModel {
        TransformerModel::builder("cache-m")
            .layers(6)
            .hidden_size(256)
            .heads(8)
            .seq_len(64)
            .vocab_size(1000)
            .moe(crate::model::MoeConfig::glam(4))
            .build()
            .unwrap()
    }

    #[test]
    fn groups_preserve_stack_multiplicities() {
        let m = model();
        let mut cache = EstimateCache::new();
        let groups = cache.groups(&m);
        let total: usize = groups.iter().map(|(_, n)| n).sum();
        assert_eq!(total, m.layer_stack().len());
        for (kind, n) in &groups {
            let expect = m.layer_stack().iter().filter(|k| *k == kind).count();
            assert_eq!(*n, expect, "{kind:?}");
        }
        // Second call is a hit and returns the same grouping.
        let again = cache.groups(&m);
        assert_eq!(groups, again);
        assert!(cache.hits() >= 1);
    }

    #[test]
    fn layer_counts_hit_on_repeat_and_distinguish_batches() {
        let m = model();
        let mut cache = EstimateCache::new();
        let a = cache.layer_counts(&m, LayerKind::Dense, 8.0);
        let misses = cache.misses();
        let b = cache.layer_counts(&m, LayerKind::Dense, 8.0);
        assert_eq!(a, b);
        assert_eq!(cache.misses(), misses, "repeat lookup must not recompute");
        let c = cache.layer_counts(&m, LayerKind::Dense, 16.0);
        assert!(c.macs_fwd > a.macs_fwd);
        assert_eq!(cache.misses(), misses + 1);
    }

    #[test]
    fn clear_forgets_everything() {
        let m = model();
        let mut cache = EstimateCache::new();
        cache.groups(&m);
        cache.layer_counts(&m, LayerKind::Head, 4.0);
        cache.collective(Topology::Ring, Collective::AllReduce, 8);
        cache.clear();
        let misses = cache.misses();
        cache.layer_counts(&m, LayerKind::Head, 4.0);
        assert_eq!(cache.misses(), misses + 1);
    }
}
