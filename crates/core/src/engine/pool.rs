//! A `Sync`-shareable pool of [`EstimateCache`]s for long-lived processes.
//!
//! One-shot tools build an [`EstimateCache`](super::EstimateCache) per run
//! and throw it away; a long-lived service answering many queries wants the
//! memoized sub-results of one request to survive into the next. The cache
//! itself is deliberately a plain `&mut self` structure with *no* context
//! fingerprint (see the context-binding contract in
//! [`cache`](super::cache)), so sharing it across requests that may differ
//! in model/accelerator/system would silently corrupt results.
//!
//! [`CachePool`] makes sharing safe: caches are shelved under a
//! [`context_key`] — a fingerprint of exactly the six context components a
//! cache may be reused across — and a checkout can only ever receive a
//! cache warmed by a compatible scenario. Checkouts hand out owned
//! [`CacheLease`]s, so concurrent requests never contend on a cache; each
//! lease returns its cache to the shelf on drop and folds its hit/miss
//! delta into the pool-wide counters.

use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use super::cache::EstimateCache;
use super::{EngineOptions, Scenario};
use crate::accelerator::AcceleratorSpec;
use crate::efficiency::EfficiencyModel;
use crate::model::TransformerModel;
use crate::network::SystemSpec;
use crate::precision::Precision;

/// Fingerprint of the cache-reuse context: the six scenario components an
/// [`EstimateCache`] may be shared across (everything *except* parallelism
/// and training, which are part of every cache key).
///
/// Computed as FNV-1a over the `Debug` rendering of each component. Debug
/// formatting covers every field of these plain-data specs, so two contexts
/// collide only if they are observationally identical — and a collision
/// between *different* contexts is vanishingly unlikely (and would only
/// cost correctness if it happened, which is why the pool is keyed on the
/// full 64-bit value rather than a truncation).
#[must_use]
pub fn context_key(
    model: &TransformerModel,
    accelerator: &AcceleratorSpec,
    system: &SystemSpec,
    precision: Precision,
    efficiency: &EfficiencyModel,
    options: EngineOptions,
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |text: String| {
        for byte in text.into_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    absorb(format!("{model:?}"));
    absorb(format!("{accelerator:?}"));
    absorb(format!("{system:?}"));
    absorb(format!("{precision:?}"));
    absorb(format!("{efficiency:?}"));
    absorb(format!("{options:?}"));
    hash
}

impl Scenario {
    /// The [`context_key`] of this scenario's cache-reuse context.
    #[must_use]
    pub fn cache_context_key(&self) -> u64 {
        context_key(
            &self.model,
            &self.accelerator,
            &self.system,
            self.precision,
            &self.efficiency,
            self.options,
        )
    }
}

/// A thread-safe pool of [`EstimateCache`]s shelved by [`context_key`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use amped_core::{CachePool, EstimateCache};
///
/// let pool = Arc::new(CachePool::new());
/// let key = 42; // normally Scenario::cache_context_key()
/// {
///     let mut lease = pool.checkout(key);
///     let cache: &mut EstimateCache = &mut lease;
///     let _ = cache; // warm it via Estimator::estimate_cached
/// } // lease drop returns the cache to the shelf
/// assert_eq!(pool.checkouts(), 1);
/// let again = pool.checkout(key); // receives the warmed cache back
/// drop(again);
/// assert_eq!(pool.warm_checkouts(), 1);
/// ```
#[derive(Debug)]
pub struct CachePool {
    shelves: Mutex<HashMap<u64, Vec<EstimateCache>>>,
    max_keys: usize,
    max_per_key: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    checkouts: AtomicU64,
    warm_checkouts: AtomicU64,
}

impl Default for CachePool {
    fn default() -> Self {
        Self::new()
    }
}

impl CachePool {
    /// A pool with default capacity: up to 64 contexts, 64 caches each.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(64, 64)
    }

    /// A pool bounded to `max_keys` distinct contexts with at most
    /// `max_per_key` shelved caches each. Overflow in either dimension
    /// drops returned caches instead of shelving them (the pool never
    /// blocks and never errors; a checkout past capacity simply starts
    /// cold).
    #[must_use]
    pub fn with_capacity(max_keys: usize, max_per_key: usize) -> Self {
        Self {
            shelves: Mutex::new(HashMap::new()),
            max_keys,
            max_per_key,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            checkouts: AtomicU64::new(0),
            warm_checkouts: AtomicU64::new(0),
        }
    }

    /// Check out a cache for the given context key: a previously warmed
    /// cache if one is shelved, otherwise a fresh one. The lease returns
    /// the cache on drop.
    pub fn checkout(&self, key: u64) -> CacheLease<'_> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let shelved = self
            .shelves
            .lock()
            .expect("cache pool lock poisoned")
            .get_mut(&key)
            .and_then(Vec::pop);
        let cache = match shelved {
            Some(cache) => {
                self.warm_checkouts.fetch_add(1, Ordering::Relaxed);
                cache
            }
            None => EstimateCache::new(),
        };
        let (hits_at_checkout, misses_at_checkout) = (cache.hits(), cache.misses());
        CacheLease {
            pool: self,
            key,
            cache,
            hits_at_checkout,
            misses_at_checkout,
        }
    }

    fn checkin(&self, key: u64, cache: EstimateCache, hits_delta: u64, misses_delta: u64) {
        self.hits.fetch_add(hits_delta, Ordering::Relaxed);
        self.misses.fetch_add(misses_delta, Ordering::Relaxed);
        let mut shelves = self.shelves.lock().expect("cache pool lock poisoned");
        if let Some(shelf) = shelves.get_mut(&key) {
            if shelf.len() < self.max_per_key {
                shelf.push(cache);
            }
        } else if shelves.len() < self.max_keys {
            shelves.insert(key, vec![cache]);
        }
    }

    /// Cumulative cache hits across all returned leases.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative cache misses across all returned leases.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cumulative lookups (`hits + misses`) across all returned leases.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses()
    }

    /// Total checkouts served.
    #[must_use]
    pub fn checkouts(&self) -> u64 {
        self.checkouts.load(Ordering::Relaxed)
    }

    /// Checkouts that received a previously warmed cache.
    #[must_use]
    pub fn warm_checkouts(&self) -> u64 {
        self.warm_checkouts.load(Ordering::Relaxed)
    }

    /// Number of distinct contexts currently shelved.
    #[must_use]
    pub fn contexts(&self) -> usize {
        self.shelves.lock().expect("cache pool lock poisoned").len()
    }

    /// Number of caches currently shelved across all contexts.
    #[must_use]
    pub fn shelved(&self) -> usize {
        self.shelves
            .lock()
            .expect("cache pool lock poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }
}

/// An exclusive loan of one [`EstimateCache`] from a [`CachePool`].
///
/// Dereferences to the cache; on drop, the cache (and the hit/miss delta
/// accumulated during the lease) returns to the pool.
#[derive(Debug)]
pub struct CacheLease<'pool> {
    pool: &'pool CachePool,
    key: u64,
    cache: EstimateCache,
    hits_at_checkout: u64,
    misses_at_checkout: u64,
}

impl CacheLease<'_> {
    /// Hits and misses accumulated so far during this lease.
    #[must_use]
    pub fn stats_delta(&self) -> (u64, u64) {
        (
            self.cache.hits() - self.hits_at_checkout,
            self.cache.misses() - self.misses_at_checkout,
        )
    }
}

impl Deref for CacheLease<'_> {
    type Target = EstimateCache;

    fn deref(&self) -> &EstimateCache {
        &self.cache
    }
}

impl DerefMut for CacheLease<'_> {
    fn deref_mut(&mut self) -> &mut EstimateCache {
        &mut self.cache
    }
}

impl Drop for CacheLease<'_> {
    fn drop(&mut self) {
        let (hits_delta, misses_delta) = self.stats_delta();
        let cache = std::mem::take(&mut self.cache);
        self.pool.checkin(self.key, cache, hits_delta, misses_delta);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::network::Link;
    use crate::parallelism::Parallelism;
    use crate::training::TrainingConfig;

    fn scenario() -> Scenario {
        let model = TransformerModel::builder("pool-test")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(128)
            .vocab_size(2000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(1, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8).unwrap();
        let parallelism = Parallelism::builder().tp(8, 1).build().unwrap();
        Scenario::new(model, accel, system, parallelism)
    }

    #[test]
    fn warm_checkout_is_bit_identical_and_counts_stats() {
        let scenario = scenario();
        let training = TrainingConfig::new(64, 10).unwrap();
        let key = scenario.cache_context_key();
        let pool = CachePool::new();

        let cold = {
            let mut lease = pool.checkout(key);
            scenario.estimator().estimate_cached(&mut lease, &training).unwrap()
        };
        let (warm, warm_delta) = {
            let mut lease = pool.checkout(key);
            let est = scenario.estimator().estimate_cached(&mut lease, &training).unwrap();
            (est, lease.stats_delta())
        };

        assert_eq!(cold.total_time.get().to_bits(), warm.total_time.get().to_bits());
        assert_eq!(pool.checkouts(), 2);
        assert_eq!(pool.warm_checkouts(), 1);
        // The warm lease only hit (every sub-result was memoized already).
        assert_eq!(warm_delta.1, 0, "warm lease should not miss");
        assert!(warm_delta.0 > 0, "warm lease should hit");
        assert_eq!(pool.lookups(), pool.hits() + pool.misses());
    }

    #[test]
    fn distinct_contexts_never_share_a_shelf() {
        let a = scenario();
        let b = {
            let mut s = scenario();
            s.efficiency = EfficiencyModel::Constant(0.5);
            s
        };
        assert_ne!(a.cache_context_key(), b.cache_context_key());

        let pool = CachePool::new();
        drop(pool.checkout(a.cache_context_key()));
        let lease = pool.checkout(b.cache_context_key());
        assert_eq!(pool.warm_checkouts(), 0);
        drop(lease);
        assert_eq!(pool.contexts(), 2);
    }

    #[test]
    fn capacity_bounds_are_respected() {
        let pool = CachePool::with_capacity(1, 1);
        // Two concurrent leases on one key: only one cache fits the shelf.
        let l1 = pool.checkout(7);
        let l2 = pool.checkout(7);
        drop(l1);
        drop(l2);
        assert_eq!(pool.shelved(), 1);
        // A second key does not fit the pool.
        drop(pool.checkout(8));
        assert_eq!(pool.contexts(), 1);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = Arc::new(CachePool::new());
        let scenario = Arc::new(scenario());
        let training = TrainingConfig::new(64, 10).unwrap();
        let baseline = scenario.estimator().estimate(&training).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let scenario = Arc::clone(&scenario);
                std::thread::spawn(move || {
                    let mut lease = pool.checkout(scenario.cache_context_key());
                    scenario
                        .estimator()
                        .estimate_cached(&mut lease, &training)
                        .unwrap()
                        .total_time
                        .get()
                        .to_bits()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), baseline.total_time.get().to_bits());
        }
        assert_eq!(pool.checkouts(), 4);
    }
}
