//! Batched, vectorized cost evaluation: many parallelism candidates priced
//! in one pass, bit-identical to [`Estimator::estimate_cached`].
//!
//! [`BatchEvaluator::estimate_many`] is the scalar memoized path unrolled
//! across candidates:
//!
//! - **Invariant hoisting** — everything that does not depend on the
//!   candidate (layer-kind groups, per-kind operation counts at the global
//!   batch, precision scales, the left-associated constant products of the
//!   per-kind compute terms, the model-FLOP count) is computed once per
//!   batch instead of once per candidate.
//! - **Struct-of-arrays compute loops** — the per-layer-kind compute
//!   arithmetic runs kind-outer/candidate-inner over flat `Vec<f64>`
//!   buffers, so the inner loop is straight-line arithmetic the compiler
//!   can auto-vectorize.
//! - **Communication term reuse** — every communication term depends on
//!   the mapping's degrees and the replica batch, never on the microbatch
//!   policy, so consecutive microbatch variants of one mapping share a
//!   single evaluation of the communication block.
//!
//! **Bit-identity contract**: every float operation happens with the same
//! values, the same association and the same order per candidate as in
//! `estimate_cached` — hoisting only moves *where* a product is computed,
//! never *how* — and all memoized sub-results go through the same
//! [`EstimateCache`] helpers, so a batch call fills the cache with exactly
//! the entries the scalar loop would. Differential tests pin
//! `estimate_many` against the scalar loop bitwise, cold and warm.

use amped_topo::Collective;

use crate::accelerator::AcceleratorSpec;
use crate::efficiency::EfficiencyModel;
use crate::engine::cached::{grad_sync_volume, stage_imbalance_ratio};
use crate::engine::{
    Breakdown, EngineOptions, Estimate, EstimateCache, Scenario,
};
use crate::error::{Error, Result};
use crate::metrics;
use crate::model::TransformerModel;
use crate::network::SystemSpec;
use crate::parallelism::{MicrobatchPolicy, Parallelism, ZeroStage};
use crate::precision::Precision;
use crate::training::TrainingConfig;
use crate::units::Seconds;

/// The communication components of one candidate's breakdown, all invariant
/// across the candidate's microbatch variants.
#[derive(Debug, Clone, Copy, Default)]
struct CommTerms {
    tp_comm_intra: f64,
    tp_comm_inter: f64,
    moe_comm: f64,
    pp_comm: f64,
    dp_comm_intra: f64,
    dp_comm_inter: f64,
    fwd_comm_for_bubble: f64,
}

/// The candidate-invariant slice of one layer kind's compute terms: the
/// constant left factors of `estimate_cached`'s `u_f`/`u_b`/`u_w` products,
/// precomputed once per batch with the scalar path's own association.
struct KindTerms {
    macs_fwd: f64,
    bwd_macs: f64,
    nl_f: f64,
    nl_b: f64,
    ww: f64,
    count: f64,
}

/// Batched analytical evaluation of many parallelism candidates under one
/// shared scenario (model, accelerator, system, precision, efficiency,
/// engine options).
///
/// # Example
///
/// ```
/// use amped_core::{
///     AcceleratorSpec, BatchEvaluator, EfficiencyModel, EstimateCache, Estimator, Link,
///     Parallelism, SystemSpec, TrainingConfig, TransformerModel,
/// };
///
/// # fn main() -> Result<(), amped_core::Error> {
/// let model = TransformerModel::builder("demo")
///     .layers(24).hidden_size(2048).heads(16).seq_len(1024).vocab_size(32000)
///     .build()?;
/// let accel = AcceleratorSpec::builder("A100")
///     .frequency_hz(1.41e9).cores(108).mac_units(4, 512, 8)
///     .nonlin_units(192, 4, 32).memory(80e9, 2.0e12)
///     .build()?;
/// let system = SystemSpec::new(2, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
/// let training = TrainingConfig::new(512, 100)?;
/// let mappings = vec![
///     Parallelism::builder().tp(8, 1).dp(1, 2).build()?,
///     Parallelism::builder().tp(4, 1).pp(2, 1).dp(1, 2).build()?,
/// ];
///
/// let mut cache = EstimateCache::new();
/// let batch = BatchEvaluator::new(&model, &accel, &system)
///     .with_efficiency(EfficiencyModel::Constant(0.5));
/// let estimates = batch.estimate_many(&mut cache, &mappings, &training);
///
/// // Bit-identical to the scalar loop over the same cache kind.
/// let mut scalar_cache = EstimateCache::new();
/// for (p, batched) in mappings.iter().zip(&estimates) {
///     let scalar = Estimator::new(&model, &accel, &system, p)
///         .with_efficiency(EfficiencyModel::Constant(0.5))
///         .estimate_cached(&mut scalar_cache, &training)?;
///     assert_eq!(
///         scalar.total_time.get().to_bits(),
///         batched.as_ref().unwrap().total_time.get().to_bits(),
///     );
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchEvaluator<'a> {
    model: &'a TransformerModel,
    accel: &'a AcceleratorSpec,
    system: &'a SystemSpec,
    precision: Precision,
    efficiency: EfficiencyModel,
    options: EngineOptions,
}

impl<'a> BatchEvaluator<'a> {
    /// A batch evaluator with default precision, efficiency and options —
    /// the same defaults as [`Estimator::new`](crate::Estimator::new).
    pub fn new(
        model: &'a TransformerModel,
        accel: &'a AcceleratorSpec,
        system: &'a SystemSpec,
    ) -> Self {
        BatchEvaluator {
            model,
            accel,
            system,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            options: EngineOptions::default(),
        }
    }

    /// A batch evaluator sharing a [`Scenario`]'s specifications (the
    /// scenario's own parallelism is ignored: candidates supply theirs).
    pub fn from_scenario(scenario: &'a Scenario) -> Self {
        BatchEvaluator {
            model: &scenario.model,
            accel: &scenario.accelerator,
            system: &scenario.system,
            precision: scenario.precision,
            efficiency: scenario.efficiency.clone(),
            options: scenario.options,
        }
    }

    /// Override the operand precisions.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the microbatch-efficiency model.
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Override the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Price every candidate mapping for `training`, returning one result
    /// per input in order. Equivalent to calling
    /// [`Estimator::estimate_cached`](crate::Estimator::estimate_cached)
    /// per candidate against the same cache — bit-identical estimates,
    /// same cache entries — at a fraction of the per-candidate cost.
    ///
    /// Per-candidate errors (an invalid mapping for the system/model) land
    /// in that candidate's slot; shared-input validation errors (bad
    /// precision/efficiency/options) fill every slot.
    pub fn estimate_many(
        &self,
        cache: &mut EstimateCache,
        mappings: &[Parallelism],
        training: &TrainingConfig,
    ) -> Vec<Result<Estimate>> {
        let n = mappings.len();
        if n == 0 {
            return Vec::new();
        }
        // Shared-input validation, in the scalar path's order.
        if let Err(e) = self
            .precision
            .validate()
            .and_then(|()| self.efficiency.validate())
            .and_then(|()| self.options.validate())
        {
            return mappings.iter().map(|_| Err(e.clone())).collect();
        }

        let (model, accel, system) = (self.model, self.accel, self.system);
        let opts = self.options;
        let global_batch = training.global_batch();

        // ---- Batch-invariant hoisting. ----
        let c_nonlin = accel.c_nonlin();
        let mac_scale = accel.mac_precision_scale(self.precision.mac_operand_bits());
        let param_scale = accel.mac_precision_scale(self.precision.param_bits);
        let nonlin_scale = accel.nonlin_precision_scale(self.precision.nonlin_bits);
        let bwd_c = opts.backward_compute_factor + if opts.activation_recompute { 1.0 } else { 0.0 };

        let groups = cache.groups(model);
        // Constant left factors of the per-kind compute terms. Each product
        // below is a prefix of the scalar expression's left-associated
        // chain, so completing it per candidate reproduces the scalar
        // result bit-for-bit.
        let kind_terms: Vec<KindTerms> = groups
            .iter()
            .map(|&(kind, count)| {
                let cg = cache.layer_counts(model, kind, global_batch as f64);
                KindTerms {
                    macs_fwd: cg.macs_fwd,
                    bwd_macs: bwd_c * cg.macs_fwd,
                    nl_f: cg.nonlin_fwd * c_nonlin * nonlin_scale,
                    nl_b: opts.backward_nonlin_factor * cg.nonlin_fwd * c_nonlin * nonlin_scale,
                    ww: opts.weight_update_factor * cg.weights,
                    count: count as f64,
                }
            })
            .collect();
        let stack_len: usize = groups.iter().map(|(_, n)| n).sum();
        let compute_scale = match opts.bubble_accounting {
            crate::engine::BubbleAccounting::GPipe => 1.0,
            crate::engine::BubbleAccounting::PaperEq8 => 1.0 / stack_len as f64,
        };
        let model_flops = match cache.model_flops(global_batch, opts.activation_recompute) {
            Some(v) => v,
            None => {
                let v = metrics::model_flops_per_iteration(
                    model,
                    global_batch,
                    opts.activation_recompute,
                );
                cache.set_model_flops(global_batch, opts.activation_recompute, v);
                v
            }
        };

        // ---- Per-candidate scalars (struct-of-arrays). ----
        let mut errs: Vec<Option<Error>> = (0..n).map(|_| None).collect();
        let mut workers = vec![1.0f64; n];
        let mut n_ub = vec![1usize; n];
        let mut ub = vec![0.0f64; n];
        let mut eff = vec![0.0f64; n];
        let mut replica_batch = vec![0.0f64; n];
        let mut c_mac = vec![0.0f64; n];
        let mut imbalance = vec![1.0f64; n];
        for (j, p) in mappings.iter().enumerate() {
            if let Err(e) = p.validate_against(system, model) {
                errs[j] = Some(e);
                continue;
            }
            workers[j] = p.total_workers() as f64;
            n_ub[j] = p.num_microbatches(global_batch);
            ub[j] = p.microbatch_size(global_batch);
            eff[j] = self.efficiency.eval(ub[j]);
            replica_batch[j] = p.replica_batch(global_batch);
            c_mac[j] = accel.c_mac(eff[j]);
            imbalance[j] = if opts.stage_imbalance_correction && p.pp() > 1 {
                let r = stage_imbalance_ratio(
                    cache,
                    model,
                    p.pp(),
                    eff[j].to_bits(),
                    c_mac[j],
                    mac_scale,
                    c_nonlin,
                    nonlin_scale,
                );
                let (m, pf) = (n_ub[j] as f64, p.pp() as f64);
                ((pf + (m - 1.0) * r) / (m + pf - 1.0)).max(1.0)
            } else {
                1.0
            };
        }

        // ---- Vectorized compute loops: kind-outer, candidate-inner. ----
        // Accumulation order per candidate matches the scalar loop (group
        // order), and each expression completes the scalar association.
        let mut sum_uf = vec![0.0f64; n];
        let mut sum_ub_ = vec![0.0f64; n];
        let mut cf = vec![0.0f64; n];
        let mut cb = vec![0.0f64; n];
        let mut wu = vec![0.0f64; n];
        for kt in &kind_terms {
            for j in 0..n {
                let u_f = kt.macs_fwd * c_mac[j] * mac_scale + kt.nl_f;
                let u_b = kt.bwd_macs * c_mac[j] * mac_scale + kt.nl_b;
                let u_w = kt.ww * c_mac[j] * param_scale;
                let iuf = imbalance[j] * u_f;
                let iub = imbalance[j] * u_b;
                sum_uf[j] += iuf * kt.count;
                sum_ub_[j] += iub * kt.count;
                cf[j] += iuf / workers[j] * kt.count;
                cb[j] += iub / workers[j] * kt.count;
                wu[j] += u_w / workers[j] * kt.count;
            }
        }

        // ---- Communication, shared across a mapping's variants. ----
        // All terms depend only on the mapping's degrees/ZeRO config and
        // the replica batch, never on the microbatch policy, so a run of
        // variants (adjacent by construction in the search) reuses one
        // evaluation. Keying on the policy-normalized mapping makes the
        // reuse exact rather than heuristic.
        let mut comm = vec![CommTerms::default(); n];
        let mut prev: Option<(Parallelism, CommTerms)> = None;
        for (j, p) in mappings.iter().enumerate() {
            if errs[j].is_some() {
                continue;
            }
            let norm = p.with_microbatches(MicrobatchPolicy::Explicit(1));
            comm[j] = match &prev {
                Some((key, t)) if *key == norm => *t,
                _ => {
                    let t = self.comm_terms(cache, p, replica_batch[j], &groups);
                    prev = Some((norm, t));
                    t
                }
            };
        }

        // ---- Per-candidate epilogue. ----
        let num_batches = training.num_batches() as f64;
        (0..n)
            .map(|j| {
                if let Some(e) = errs[j].take() {
                    return Err(e);
                }
                let p = &mappings[j];
                let t = comm[j];
                let mut b = Breakdown {
                    compute_forward: cf[j],
                    compute_backward: cb[j],
                    weight_update: wu[j],
                    tp_comm_intra: t.tp_comm_intra,
                    tp_comm_inter: t.tp_comm_inter,
                    pp_comm: t.pp_comm,
                    moe_comm: t.moe_comm,
                    dp_comm_intra: t.dp_comm_intra,
                    dp_comm_inter: t.dp_comm_inter,
                    bubble: 0.0,
                };
                if p.pp() > 1 {
                    b.bubble = p.bubble_ratio() * (p.pp() as f64 - 1.0) / n_ub[j] as f64
                        * (compute_scale * (sum_uf[j] + sum_ub_[j]) / workers[j]
                            + t.fwd_comm_for_bubble);
                }
                let time_per_iteration = b.total();
                let total_time = time_per_iteration * num_batches;
                let tflops_per_gpu =
                    metrics::tflops_per_gpu(model_flops, time_per_iteration, workers[j]);
                let tokens_per_sec = if time_per_iteration > 0.0 {
                    (global_batch * model.seq_len()) as f64 / time_per_iteration
                } else {
                    0.0
                };
                Ok(Estimate {
                    breakdown: b,
                    time_per_iteration: Seconds::new(time_per_iteration),
                    total_time: Seconds::new(total_time),
                    microbatch_size: ub[j],
                    num_microbatches: n_ub[j],
                    efficiency: eff[j],
                    model_flops_per_iteration: model_flops,
                    tflops_per_gpu,
                    total_workers: p.total_workers(),
                    tokens_per_sec,
                })
            })
            .collect()
    }

    /// One candidate's communication terms — a verbatim transcription of
    /// `estimate_cached`'s communication section (same expressions, same
    /// guards, same group order, same cache accessors).
    fn comm_terms(
        &self,
        cache: &mut EstimateCache,
        p: &Parallelism,
        replica_batch: f64,
        groups: &[(crate::model::LayerKind, usize)],
    ) -> CommTerms {
        let (model, system) = (self.model, self.system);
        let opts = self.options;
        let mut out = CommTerms::default();

        let zero_factor = 1.0 + p.zero().comm_overhead;
        let comm_passes = zero_factor * (1.0 + opts.backward_comm_factor);
        let intra = system.intra();
        let inter = system.inter();
        let inter_bw = system.inter_bandwidth_per_accel();
        let nic_aggregate = system.inter().bandwidth_bits_per_sec * system.nics_per_node() as f64;
        let inter_bw_tp_stream = (inter_bw * p.tp_intra() as f64).min(nic_aggregate);
        let act_bits = self.precision.act_bits as f64;
        let stage_share = 1.0 / p.pp() as f64;

        for &(kind, count) in groups {
            let cr = cache.layer_counts(model, kind, replica_batch);
            let n = count as f64;

            if p.tp_intra() > 1 {
                let cost = cache.collective(intra.topology, Collective::AllReduce, p.tp_intra());
                let t = cost.time(
                    cr.act_elems_tp * act_bits,
                    intra.latency_s,
                    intra.bandwidth_bits_per_sec,
                );
                out.tp_comm_intra += comm_passes * stage_share * t * n;
                out.fwd_comm_for_bubble +=
                    zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t * n;
            }
            if p.tp_inter() > 1 {
                let cost = cache.collective(inter.topology, Collective::AllReduce, p.tp_inter());
                let t = cost.time(cr.act_elems_tp * act_bits, inter.latency_s, inter_bw_tp_stream);
                out.tp_comm_inter += comm_passes * stage_share * t * n;
                out.fwd_comm_for_bubble +=
                    zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t * n;
            }
            if cr.act_elems_moe > 0.0 && system.num_nodes() >= 1 {
                let nodes = system.num_nodes() as f64;
                let cost =
                    cache.collective(inter.topology, Collective::AllToAll, system.num_nodes());
                let latency_term = 2.0 * inter.latency_s * cost.steps as f64;
                let volume_bits = cr.act_elems_moe * act_bits / p.tp() as f64;
                let bw_term = if nodes > 1.0 {
                    2.0 * volume_bits
                        * cost.factor
                        * (1.0 / (nodes * intra.bandwidth_bits_per_sec)
                            + (nodes - 1.0) / (nodes * inter_bw))
                } else {
                    2.0 * volume_bits / intra.bandwidth_bits_per_sec
                };
                let t = latency_term + bw_term;
                out.moe_comm += comm_passes * stage_share * t * n;
                out.fwd_comm_for_bubble +=
                    zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t * n;
            }
        }

        if p.pp() > 1 {
            let vol_bits =
                replica_batch * model.seq_len() as f64 * model.hidden_size() as f64 * act_bits;
            let t_intra = if p.pp_intra() > 1 {
                intra.latency_s + vol_bits / intra.bandwidth_bits_per_sec
            } else {
                0.0
            };
            let t_inter = if p.pp_inter() > 1 {
                inter.latency_s + vol_bits / inter_bw_tp_stream
            } else {
                0.0
            };
            let t = t_intra.max(t_inter);
            out.pp_comm = comm_passes * t;
            out.fwd_comm_for_bubble += zero_factor * (1.0 + opts.backward_comm_factor) * t;
        }

        let grad_collective = if p.zero().stage >= ZeroStage::Gradients {
            Collective::ReduceScatter
        } else {
            Collective::AllReduce
        };
        let grad_bits = self.precision.grad_bits as f64;
        let n_g_total = grad_sync_volume(cache, model, system, groups, p.tp(), p.pp());
        if p.dp_intra() > 1 {
            let cost = cache.collective(intra.topology, grad_collective, p.dp_intra());
            out.dp_comm_intra = cost.time(
                n_g_total * grad_bits,
                intra.latency_s,
                intra.bandwidth_bits_per_sec,
            );
        }
        if p.dp_inter() > 1 {
            let cost = cache.collective(inter.topology, grad_collective, p.dp_inter());
            out.dp_comm_inter = cost.time(
                n_g_total / p.dp_intra() as f64 * grad_bits,
                inter.latency_s,
                inter_bw,
            );
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::model::MoeConfig;
    use crate::network::Link;
    use crate::parallelism::ZeroConfig;
    use crate::Estimator;

    fn accel() -> AcceleratorSpec {
        AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .build()
            .unwrap()
    }

    fn system(nodes: usize, per_node: usize) -> SystemSpec {
        SystemSpec::new(
            nodes,
            per_node,
            Link::new(5e-6, 2.4e12),
            Link::new(1e-5, 2e11),
            per_node,
        )
        .unwrap()
    }

    fn dense_model() -> TransformerModel {
        TransformerModel::builder("batch-m")
            .layers(24)
            .hidden_size(2048)
            .heads(16)
            .seq_len(1024)
            .vocab_size(32000)
            .build()
            .unwrap()
    }

    fn moe_model() -> TransformerModel {
        TransformerModel::builder("batch-moe")
            .layers(12)
            .hidden_size(1024)
            .heads(16)
            .seq_len(512)
            .vocab_size(16000)
            .moe(MoeConfig::glam(8))
            .build()
            .unwrap()
    }

    /// Every valid 6-degree factorization of a 4x8 system, with microbatch
    /// variants interleaved the way the search tuner emits them.
    fn mappings_with_variants(global_batch: usize) -> Vec<Parallelism> {
        let mut out = Vec::new();
        for tp in [1usize, 2, 4, 8] {
            for pp in [1usize, 2, 4] {
                let rest = 32 / (tp * pp);
                let (dp_intra, dp_inter) = if rest >= 4 { (rest / 4, 4) } else { (rest, 1) };
                let Ok(p) = Parallelism::builder()
                    .tp(tp, 1)
                    .pp(pp, 1)
                    .dp(dp_intra, dp_inter)
                    .build()
                else {
                    continue;
                };
                let replica = (global_batch / p.dp()).max(1);
                let mut trial = 1usize;
                while trial <= replica {
                    out.push(
                        p.with_microbatches(MicrobatchPolicy::Explicit(replica.div_ceil(trial))),
                    );
                    trial *= 2;
                }
            }
        }
        out
    }

    fn assert_bit_identical(
        batch: &BatchEvaluator<'_>,
        scalar_of: impl Fn(&Parallelism, &mut EstimateCache) -> Result<Estimate>,
        mappings: &[Parallelism],
        training: &TrainingConfig,
    ) {
        // Cold shared cache for the batch, cold shared cache for the scalar
        // loop: both paths must produce the same estimates AND the same
        // cache behaviour.
        let mut batch_cache = EstimateCache::new();
        let batched = batch.estimate_many(&mut batch_cache, mappings, training);
        let mut scalar_cache = EstimateCache::new();
        assert_eq!(batched.len(), mappings.len());
        for (p, b) in mappings.iter().zip(&batched) {
            let s = scalar_of(p, &mut scalar_cache);
            match (s, b) {
                (Ok(s), Ok(b)) => {
                    assert_eq!(
                        s.total_time.get().to_bits(),
                        b.total_time.get().to_bits(),
                        "total_time for {p:?}"
                    );
                    assert_eq!(
                        s.time_per_iteration.get().to_bits(),
                        b.time_per_iteration.get().to_bits()
                    );
                    for ((name, x), (_, y)) in
                        s.breakdown.components().iter().zip(b.breakdown.components())
                    {
                        assert_eq!(x.to_bits(), y.to_bits(), "{name} for {p:?}");
                    }
                    assert_eq!(s.num_microbatches, b.num_microbatches);
                    assert_eq!(s.microbatch_size.to_bits(), b.microbatch_size.to_bits());
                    assert_eq!(s.efficiency.to_bits(), b.efficiency.to_bits());
                    assert_eq!(s.tflops_per_gpu.to_bits(), b.tflops_per_gpu.to_bits());
                    assert_eq!(s.tokens_per_sec.to_bits(), b.tokens_per_sec.to_bits());
                    assert_eq!(
                        s.model_flops_per_iteration.to_bits(),
                        b.model_flops_per_iteration.to_bits()
                    );
                    assert_eq!(s.total_workers, b.total_workers);
                }
                (Err(_), Err(_)) => {}
                (s, b) => panic!("outcome mismatch for {p:?}: scalar {s:?} vs batch {b:?}"),
            }
        }
        // Warm-cache rerun of the batch stays bit-identical.
        let again = batch.estimate_many(&mut batch_cache, mappings, training);
        for (x, y) in batched.iter().zip(&again) {
            if let (Ok(x), Ok(y)) = (x, y) {
                assert_eq!(x.total_time.get().to_bits(), y.total_time.get().to_bits());
            }
        }
    }

    #[test]
    fn batch_matches_scalar_loop_bitwise_dense() {
        let m = dense_model();
        let a = accel();
        let sys = system(4, 8);
        let effm = EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9);
        let opts = EngineOptions {
            stage_imbalance_correction: true,
            ..Default::default()
        };
        let training = TrainingConfig::new(512, 10).unwrap();
        let mappings = mappings_with_variants(512);
        assert!(mappings.len() > 20);
        let batch = BatchEvaluator::new(&m, &a, &sys)
            .with_efficiency(effm.clone())
            .with_options(opts);
        assert_bit_identical(
            &batch,
            |p, cache| {
                Estimator::new(&m, &a, &sys, p)
                    .with_efficiency(effm.clone())
                    .with_options(opts)
                    .estimate_cached(cache, &training)
            },
            &mappings,
            &training,
        );
    }

    #[test]
    fn batch_matches_scalar_loop_bitwise_moe_with_zero() {
        let m = moe_model();
        let a = accel();
        let sys = system(4, 8);
        let effm = EfficiencyModel::Constant(0.6);
        let training = TrainingConfig::new(128, 5).unwrap();
        let mut mappings = Vec::new();
        for (tp, dp_intra, dp_inter) in [(8, 1, 4), (4, 2, 4), (2, 4, 4), (1, 8, 4)] {
            mappings.push(
                Parallelism::builder()
                    .tp(tp, 1)
                    .dp(dp_intra, dp_inter)
                    .zero(ZeroConfig::stage(ZeroStage::Gradients, 0.5))
                    .build()
                    .unwrap(),
            );
        }
        let batch = BatchEvaluator::new(&m, &a, &sys).with_efficiency(effm.clone());
        assert_bit_identical(
            &batch,
            |p, cache| {
                Estimator::new(&m, &a, &sys, p)
                    .with_efficiency(effm.clone())
                    .estimate_cached(cache, &training)
            },
            &mappings,
            &training,
        );
    }

    #[test]
    fn batch_fills_the_cache_with_the_scalar_entries() {
        let m = dense_model();
        let a = accel();
        let sys = system(4, 8);
        let effm = EfficiencyModel::Constant(0.5);
        let training = TrainingConfig::new(512, 10).unwrap();
        let mappings = mappings_with_variants(512);

        // A cache warmed by the batch path serves the scalar path fully:
        // a scalar pass over a batch-warmed cache adds no new misses.
        let mut cache = EstimateCache::new();
        BatchEvaluator::new(&m, &a, &sys)
            .with_efficiency(effm.clone())
            .estimate_many(&mut cache, &mappings, &training);
        let misses = cache.misses();
        for p in &mappings {
            let _ = Estimator::new(&m, &a, &sys, p)
                .with_efficiency(effm.clone())
                .estimate_cached(&mut cache, &training);
        }
        assert_eq!(cache.misses(), misses, "batch path must pre-fill every entry");
    }

    #[test]
    fn invalid_candidates_error_in_place_without_poisoning_the_batch() {
        let m = dense_model();
        let a = accel();
        let sys = system(2, 8);
        let training = TrainingConfig::new(64, 1).unwrap();
        let good = Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap();
        let bad = Parallelism::builder().tp(4, 1).build().unwrap(); // 4 != 16
        let mut cache = EstimateCache::new();
        let out = BatchEvaluator::new(&m, &a, &sys).estimate_many(
            &mut cache,
            &[good, bad, good],
            &training,
        );
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
        assert_eq!(
            out[0].as_ref().unwrap().total_time.get().to_bits(),
            out[2].as_ref().unwrap().total_time.get().to_bits()
        );
        // The per-candidate error matches the scalar path's.
        let scalar = Estimator::new(&m, &a, &sys, &bad).estimate(&training);
        assert_eq!(
            format!("{}", out[1].as_ref().unwrap_err()),
            format!("{}", scalar.unwrap_err())
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let m = dense_model();
        let a = accel();
        let sys = system(2, 8);
        let mut cache = EstimateCache::new();
        let out = BatchEvaluator::new(&m, &a, &sys).estimate_many(
            &mut cache,
            &[],
            &TrainingConfig::new(64, 1).unwrap(),
        );
        assert!(out.is_empty());
    }
}
