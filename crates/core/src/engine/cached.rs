//! The memoized estimation path and the branch-and-bound lower bound.
//!
//! [`Estimator::estimate_cached`] is semantically
//! [`Estimator::estimate`] with its per-layer loops collapsed to one
//! iteration per *distinct layer kind* (weighted by multiplicity) and all
//! scenario-invariant sub-results served from an [`EstimateCache`]. The two
//! paths agree to float associativity: `estimate` sums 80 identical layer
//! terms one by one, the cached path multiplies one term by 80, so results
//! can differ by a few ulps (covered by a differential test below). The
//! uncached `estimate` stays byte-stable for golden pins.
//!
//! [`Estimator::compute_lower_bound`] evaluates the compute terms
//! (forward, backward, weight update) plus the tensor-parallel all-reduce
//! floor, with all other communication, the pipeline bubble and
//! stage-imbalance zeroed. It reuses the *same* grouped summation
//! association as `estimate_cached`, and every term it drops or shrinks is
//! non-negative under a monotone float operation — so the bound never
//! exceeds `estimate_cached`'s total time *exactly in f64*, not merely up
//! to an epsilon. That exactness is what lets `amped-search` prune
//! candidates against an incumbent best time without ever discarding the
//! true optimum.

use amped_topo::Collective;

use crate::engine::{Breakdown, Estimate, EstimateCache, Estimator};
use crate::error::Result;
use crate::metrics;
use crate::model::{LayerKind, TransformerModel};
use crate::network::SystemSpec;
use crate::parallelism::ZeroStage;
use crate::training::TrainingConfig;
use crate::units::Seconds;

/// The memoized stage-imbalance ratio `r = t*/t̄` for a `pp`-stage split of
/// the layer stack at per-layer weights priced with the given accelerator
/// constants. Shared verbatim by [`Estimator::estimate_cached`] and the
/// batch path so both fill and read the same cache entry and agree bitwise.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_imbalance_ratio(
    cache: &mut EstimateCache,
    model: &TransformerModel,
    pp: usize,
    eff_bits: u64,
    c_mac: f64,
    mac_scale: f64,
    c_nonlin: f64,
    nonlin_scale: f64,
) -> f64 {
    if let Some(r) = cache.imbalance_ratio(pp, eff_bits) {
        return r;
    }
    let stack = model.layer_stack();
    let weights: Vec<f64> = stack
        .iter()
        .map(|&kind| {
            let c = cache.layer_counts(model, kind, 1.0);
            c.macs_fwd * c_mac * mac_scale + c.nonlin_fwd * c_nonlin * nonlin_scale
        })
        .collect();
    let base = stack.len() / pp;
    let extra = stack.len() % pp;
    let mut cursor = 0;
    let mut max_stage = 0.0f64;
    let total: f64 = weights.iter().sum();
    for s in 0..pp {
        let take = base + usize::from(s < extra);
        let stage: f64 = weights[cursor..cursor + take].iter().sum();
        max_stage = max_stage.max(stage);
        cursor += take;
    }
    let r = if total > 0.0 {
        (max_stage * pp as f64 / total).max(1.0)
    } else {
        1.0
    };
    cache.set_imbalance_ratio(pp, eff_bits, r);
    r
}

/// The memoized Eq. 10 per-accelerator gradient-sync volume for a
/// `(tp, pp)` shard. Shared verbatim by [`Estimator::estimate_cached`] and
/// the batch path for the same bit-identity contract as
/// [`stage_imbalance_ratio`].
pub(crate) fn grad_sync_volume(
    cache: &mut EstimateCache,
    model: &TransformerModel,
    system: &SystemSpec,
    groups: &[(LayerKind, usize)],
    tp: usize,
    pp: usize,
) -> f64 {
    if let Some(v) = cache.grad_volume(tp, pp) {
        return v;
    }
    let expert_parallel = model
        .moe()
        .map(|cfg| cfg.num_experts.min(system.num_nodes()).max(1))
        .unwrap_or(1) as f64;
    let v: f64 = groups
        .iter()
        .map(|&(kind, count)| {
            let cg = cache.layer_counts(model, kind, 1.0);
            let dense_weights = cg.weights - cg.weights_expert;
            (dense_weights + cg.weights_expert / expert_parallel)
                / (tp as f64 * pp as f64)
                * count as f64
        })
        .sum();
    cache.set_grad_volume(tp, pp, v);
    v
}

impl<'a> Estimator<'a> {
    /// Like [`Estimator::estimate`], but memoizes scenario-invariant
    /// sub-results in `cache` and does O(distinct layer kinds) work per
    /// call instead of O(layers).
    ///
    /// Results agree with `estimate` up to float associativity (a few ulps
    /// on a deep stack); within one cache the path is fully deterministic.
    /// The cache must respect the context-binding contract described on
    /// [`EstimateCache`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn estimate_cached(
        &self,
        cache: &mut EstimateCache,
        training: &TrainingConfig,
    ) -> Result<Estimate> {
        self.precision().validate()?;
        self.efficiency().validate()?;
        self.options().validate()?;
        let (model, accel, system, p) = (self.model(), self.accel(), self.system(), self.parallelism());
        p.validate_against(system, model)?;

        let global_batch = training.global_batch();
        let workers = p.total_workers() as f64;
        let n_ub = p.num_microbatches(global_batch);
        let ub = p.microbatch_size(global_batch);
        let eff = self.efficiency().eval(ub);
        let replica_batch = p.replica_batch(global_batch);

        let c_mac = accel.c_mac(eff);
        let c_nonlin = accel.c_nonlin();
        let mac_scale = accel.mac_precision_scale(self.precision().mac_operand_bits());
        let param_scale = accel.mac_precision_scale(self.precision().param_bits);
        let nonlin_scale = accel.nonlin_precision_scale(self.precision().nonlin_bits);

        let opts = self.options();
        let bwd_c = opts.backward_compute_factor + if opts.activation_recompute { 1.0 } else { 0.0 };

        let groups = cache.groups(model);

        // Stage-imbalance correction (see `estimate`): the ratio r = t*/t̄
        // depends only on (pp, eff) for a fixed scenario, so it is memoized;
        // the n_ub-dependent scaling is recomputed per call. Clamped to ≥ 1
        // so the compute-only lower bound (which uses imbalance = 1) stays
        // exact under float rounding.
        let imbalance = if opts.stage_imbalance_correction && p.pp() > 1 {
            let r = stage_imbalance_ratio(
                cache,
                model,
                p.pp(),
                eff.to_bits(),
                c_mac,
                mac_scale,
                c_nonlin,
                nonlin_scale,
            );
            let (m, pf) = (n_ub as f64, p.pp() as f64);
            ((pf + (m - 1.0) * r) / (m + pf - 1.0)).max(1.0)
        } else {
            1.0
        };

        let mut b = Breakdown::default();
        let mut sum_uf = 0.0; // Σ U_f(l), undivided
        let mut sum_ub_ = 0.0; // Σ U_b(l), undivided

        // Grouped Eq. 2 / Eq. 12: one term per layer kind, weighted by its
        // multiplicity. The lower bound mirrors this loop term for term.
        for &(kind, count) in &groups {
            let cg = cache.layer_counts(model, kind, global_batch as f64);
            let u_f = cg.macs_fwd * c_mac * mac_scale + cg.nonlin_fwd * c_nonlin * nonlin_scale;
            let u_b = bwd_c * cg.macs_fwd * c_mac * mac_scale
                + opts.backward_nonlin_factor * cg.nonlin_fwd * c_nonlin * nonlin_scale;
            let u_w = opts.weight_update_factor * cg.weights * c_mac * param_scale;
            let n = count as f64;

            sum_uf += imbalance * u_f * n;
            sum_ub_ += imbalance * u_b * n;
            b.compute_forward += imbalance * u_f / workers * n;
            b.compute_backward += imbalance * u_b / workers * n;
            b.weight_update += u_w / workers * n;
        }

        // ---- Communication (grouped per layer kind; see `estimate`). ----
        let zero_factor = 1.0 + p.zero().comm_overhead;
        let comm_passes = zero_factor * (1.0 + opts.backward_comm_factor);
        let intra = system.intra();
        let inter = system.inter();
        let inter_bw = system.inter_bandwidth_per_accel();
        let nic_aggregate = system.inter().bandwidth_bits_per_sec * system.nics_per_node() as f64;
        let inter_bw_tp_stream = (inter_bw * p.tp_intra() as f64).min(nic_aggregate);
        let act_bits = self.precision().act_bits as f64;

        let mut fwd_comm_for_bubble = 0.0;
        let stage_share = 1.0 / p.pp() as f64;

        for &(kind, count) in &groups {
            let cr = cache.layer_counts(model, kind, replica_batch);
            let n = count as f64;

            if p.tp_intra() > 1 {
                let cost = cache.collective(intra.topology, Collective::AllReduce, p.tp_intra());
                let t = cost.time(
                    cr.act_elems_tp * act_bits,
                    intra.latency_s,
                    intra.bandwidth_bits_per_sec,
                );
                b.tp_comm_intra += comm_passes * stage_share * t * n;
                fwd_comm_for_bubble +=
                    zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t * n;
            }
            if p.tp_inter() > 1 {
                let cost = cache.collective(inter.topology, Collective::AllReduce, p.tp_inter());
                let t = cost.time(cr.act_elems_tp * act_bits, inter.latency_s, inter_bw_tp_stream);
                b.tp_comm_inter += comm_passes * stage_share * t * n;
                fwd_comm_for_bubble +=
                    zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t * n;
            }
            if cr.act_elems_moe > 0.0 && system.num_nodes() >= 1 {
                let nodes = system.num_nodes() as f64;
                let cost =
                    cache.collective(inter.topology, Collective::AllToAll, system.num_nodes());
                let latency_term = 2.0 * inter.latency_s * cost.steps as f64;
                let volume_bits = cr.act_elems_moe * act_bits / p.tp() as f64;
                let bw_term = if nodes > 1.0 {
                    2.0 * volume_bits
                        * cost.factor
                        * (1.0 / (nodes * intra.bandwidth_bits_per_sec)
                            + (nodes - 1.0) / (nodes * inter_bw))
                } else {
                    2.0 * volume_bits / intra.bandwidth_bits_per_sec
                };
                let t = latency_term + bw_term;
                b.moe_comm += comm_passes * stage_share * t * n;
                fwd_comm_for_bubble +=
                    zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t * n;
            }
        }

        // Eq. 7: pipeline stage-boundary transfer (whole-batch quantity).
        if p.pp() > 1 {
            let vol_bits =
                replica_batch * model.seq_len() as f64 * model.hidden_size() as f64 * act_bits;
            let t_intra = if p.pp_intra() > 1 {
                intra.latency_s + vol_bits / intra.bandwidth_bits_per_sec
            } else {
                0.0
            };
            let t_inter = if p.pp_inter() > 1 {
                inter.latency_s + vol_bits / inter_bw_tp_stream
            } else {
                0.0
            };
            let t = t_intra.max(t_inter);
            b.pp_comm = comm_passes * t;
            fwd_comm_for_bubble += zero_factor * (1.0 + opts.backward_comm_factor) * t;
        }

        // Eq. 10-11: fused gradient sync; the per-accelerator volume depends
        // only on (tp, pp) for a fixed scenario and is memoized.
        let grad_collective = if p.zero().stage >= ZeroStage::Gradients {
            Collective::ReduceScatter
        } else {
            Collective::AllReduce
        };
        let grad_bits = self.precision().grad_bits as f64;
        let n_g_total = grad_sync_volume(cache, model, system, &groups, p.tp(), p.pp());
        if p.dp_intra() > 1 {
            let cost = cache.collective(intra.topology, grad_collective, p.dp_intra());
            b.dp_comm_intra = cost.time(
                n_g_total * grad_bits,
                intra.latency_s,
                intra.bandwidth_bits_per_sec,
            );
        }
        if p.dp_inter() > 1 {
            let cost = cache.collective(inter.topology, grad_collective, p.dp_inter());
            b.dp_comm_inter = cost.time(
                n_g_total / p.dp_intra() as f64 * grad_bits,
                inter.latency_s,
                inter_bw,
            );
        }

        // Eq. 8: pipeline bubble.
        if p.pp() > 1 {
            let stack_len: usize = groups.iter().map(|(_, n)| n).sum();
            let compute_scale = match opts.bubble_accounting {
                crate::engine::BubbleAccounting::GPipe => 1.0,
                crate::engine::BubbleAccounting::PaperEq8 => 1.0 / stack_len as f64,
            };
            b.bubble = p.bubble_ratio() * (p.pp() as f64 - 1.0) / n_ub as f64
                * (compute_scale * (sum_uf + sum_ub_) / workers + fwd_comm_for_bubble);
        }

        let time_per_iteration = b.total();
        let total_time = time_per_iteration * training.num_batches() as f64;
        let model_flops = match cache.model_flops(global_batch, opts.activation_recompute) {
            Some(v) => v,
            None => {
                let v = metrics::model_flops_per_iteration(
                    model,
                    global_batch,
                    opts.activation_recompute,
                );
                cache.set_model_flops(global_batch, opts.activation_recompute, v);
                v
            }
        };
        let tflops_per_gpu = metrics::tflops_per_gpu(model_flops, time_per_iteration, workers);
        let tokens_per_sec = if time_per_iteration > 0.0 {
            (global_batch * model.seq_len()) as f64 / time_per_iteration
        } else {
            0.0
        };

        Ok(Estimate {
            breakdown: b,
            time_per_iteration: Seconds::new(time_per_iteration),
            total_time: Seconds::new(total_time),
            microbatch_size: ub,
            num_microbatches: n_ub,
            efficiency: eff,
            model_flops_per_iteration: model_flops,
            tflops_per_gpu,
            total_workers: p.total_workers(),
            tokens_per_sec,
        })
    }

    /// A lower bound on the total training time of this exact
    /// configuration: forward + backward + weight-update time at the
    /// configuration's own microbatch efficiency, plus the tensor-parallel
    /// all-reduce floor — with all other communication, the pipeline bubble
    /// and stage imbalance zeroed. The TP terms are microbatch-variant
    /// invariant, which is what lets `amped-search` bound a whole family of
    /// microbatch splits at once.
    ///
    /// Guaranteed `compute_lower_bound(..) <= estimate_cached(..).total_time`
    /// **exactly in f64** for the same cache/scenario: the bound reuses the
    /// cached path's grouped summation association (the TP floor repeats
    /// the estimate's own accumulation bitwise), and every dropped or
    /// shrunk term is non-negative under monotone float operations. This is
    /// what makes branch-and-bound pruning in `amped-search` lossless.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn compute_lower_bound(
        &self,
        cache: &mut EstimateCache,
        training: &TrainingConfig,
    ) -> Result<Seconds> {
        self.precision().validate()?;
        self.efficiency().validate()?;
        self.options().validate()?;
        let (model, accel, system, p) = (self.model(), self.accel(), self.system(), self.parallelism());
        p.validate_against(system, model)?;

        let global_batch = training.global_batch();
        let workers = p.total_workers() as f64;
        let ub = p.microbatch_size(global_batch);
        let eff = self.efficiency().eval(ub);

        let c_mac = accel.c_mac(eff);
        let c_nonlin = accel.c_nonlin();
        let mac_scale = accel.mac_precision_scale(self.precision().mac_operand_bits());
        let param_scale = accel.mac_precision_scale(self.precision().param_bits);
        let nonlin_scale = accel.nonlin_precision_scale(self.precision().nonlin_bits);
        let opts = self.options();
        let bwd_c = opts.backward_compute_factor + if opts.activation_recompute { 1.0 } else { 0.0 };

        // Mirrors the estimate_cached compute loop with imbalance = 1
        // (imbalance there is clamped to ≥ 1) and the same term order.
        let mut compute_forward = 0.0;
        let mut compute_backward = 0.0;
        let mut weight_update = 0.0;
        for &(kind, count) in &cache.groups(model) {
            let cg = cache.layer_counts(model, kind, global_batch as f64);
            let u_f = cg.macs_fwd * c_mac * mac_scale + cg.nonlin_fwd * c_nonlin * nonlin_scale;
            let u_b = bwd_c * cg.macs_fwd * c_mac * mac_scale
                + opts.backward_nonlin_factor * cg.nonlin_fwd * c_nonlin * nonlin_scale;
            let u_w = opts.weight_update_factor * cg.weights * c_mac * param_scale;
            let n = count as f64;

            compute_forward += u_f / workers * n;
            compute_backward += u_b / workers * n;
            weight_update += u_w / workers * n;
        }

        // TP-communication floor: the Eq. 6 all-reduce terms depend on the
        // replica batch (a function of the DP degree), never on how the
        // replica batch is split into microbatches — so like the compute
        // terms they are invariant across a mapping's microbatch variants
        // and may join the bound. They are accumulated with the exact
        // expressions, guards and term order of `estimate_cached`'s TP
        // loop, so each floor term equals the estimate's own
        // `tp_comm_intra`/`tp_comm_inter` bitwise; `Breakdown::comm_total`
        // only ever adds further non-negative components under monotone
        // float additions, keeping the bound exact in f64.
        let zero_factor = 1.0 + p.zero().comm_overhead;
        let comm_passes = zero_factor * (1.0 + opts.backward_comm_factor);
        let intra = system.intra();
        let inter = system.inter();
        let inter_bw = system.inter_bandwidth_per_accel();
        let nic_aggregate = system.inter().bandwidth_bits_per_sec * system.nics_per_node() as f64;
        let inter_bw_tp_stream = (inter_bw * p.tp_intra() as f64).min(nic_aggregate);
        let act_bits = self.precision().act_bits as f64;
        let stage_share = 1.0 / p.pp() as f64;
        let replica_batch = p.replica_batch(global_batch);

        let mut tp_comm_intra = 0.0;
        let mut tp_comm_inter = 0.0;
        if p.tp_intra() > 1 || p.tp_inter() > 1 {
            for &(kind, count) in &cache.groups(model) {
                let cr = cache.layer_counts(model, kind, replica_batch);
                let n = count as f64;
                if p.tp_intra() > 1 {
                    let cost =
                        cache.collective(intra.topology, Collective::AllReduce, p.tp_intra());
                    let t = cost.time(
                        cr.act_elems_tp * act_bits,
                        intra.latency_s,
                        intra.bandwidth_bits_per_sec,
                    );
                    tp_comm_intra += comm_passes * stage_share * t * n;
                }
                if p.tp_inter() > 1 {
                    let cost =
                        cache.collective(inter.topology, Collective::AllReduce, p.tp_inter());
                    let t =
                        cost.time(cr.act_elems_tp * act_bits, inter.latency_s, inter_bw_tp_stream);
                    tp_comm_inter += comm_passes * stage_share * t * n;
                }
            }
        }

        // Same association as Breakdown::compute_total(), the head of
        // Breakdown::comm_total()'s left fold, and Eq. 1's batch
        // multiplication, so the bound survives rounding exactly.
        let compute = compute_forward + compute_backward + weight_update;
        let per_iteration = compute + (tp_comm_intra + tp_comm_inter);
        Ok(Seconds::new(per_iteration * training.num_batches() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::AcceleratorSpec;
    use crate::efficiency::EfficiencyModel;
    use crate::engine::EngineOptions;
    use crate::model::{MoeConfig, TransformerModel};
    use crate::network::{Link, SystemSpec};
    use crate::parallelism::{MicrobatchPolicy, Parallelism, ZeroConfig};

    fn accel() -> AcceleratorSpec {
        AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .offchip_bandwidth_bits_per_sec(2.4e12)
            .build()
            .unwrap()
    }

    fn system(nodes: usize, per_node: usize) -> SystemSpec {
        SystemSpec::new(
            nodes,
            per_node,
            Link::new(5e-6, 2.4e12),
            Link::new(1e-5, 2e11),
            per_node,
        )
        .unwrap()
    }

    fn dense_model() -> TransformerModel {
        TransformerModel::builder("cached-m")
            .layers(24)
            .hidden_size(2048)
            .heads(16)
            .seq_len(1024)
            .vocab_size(32000)
            .build()
            .unwrap()
    }

    fn moe_model() -> TransformerModel {
        TransformerModel::builder("cached-moe")
            .layers(12)
            .hidden_size(1024)
            .heads(16)
            .seq_len(512)
            .vocab_size(16000)
            .moe(MoeConfig::glam(8))
            .build()
            .unwrap()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-300)
    }

    fn assert_agrees(estimator: &Estimator<'_>, training: &TrainingConfig) {
        let mut cache = EstimateCache::new();
        let plain = estimator.estimate(training).unwrap();
        let cached = estimator.estimate_cached(&mut cache, training).unwrap();
        assert!(
            close(plain.total_time.get(), cached.total_time.get()),
            "total: {} vs {}",
            plain.total_time.get(),
            cached.total_time.get()
        );
        for ((name, a), (_, b)) in plain
            .breakdown
            .components()
            .iter()
            .zip(cached.breakdown.components())
        {
            assert!(close(*a, b), "{name}: {a} vs {b}");
        }
        assert_eq!(plain.num_microbatches, cached.num_microbatches);
        assert!(close(plain.tflops_per_gpu, cached.tflops_per_gpu));
        // A second cached call is fully served from the cache and identical.
        let misses = cache.misses();
        let again = estimator.estimate_cached(&mut cache, training).unwrap();
        assert_eq!(again.total_time.get().to_bits(), cached.total_time.get().to_bits());
        assert_eq!(cache.misses(), misses);
    }

    #[test]
    fn cached_matches_plain_dense_tp() {
        let m = dense_model();
        let a = accel();
        let sys = system(2, 8);
        let p = Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap();
        let est = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        assert_agrees(&est, &TrainingConfig::new(256, 10).unwrap());
    }

    #[test]
    fn cached_matches_plain_pipelined_with_imbalance() {
        let m = dense_model();
        let a = accel();
        let sys = system(2, 8);
        let p = Parallelism::builder()
            .tp(2, 1)
            .pp(4, 2)
            .dp(1, 1)
            .microbatches(MicrobatchPolicy::Explicit(16))
            .build()
            .unwrap();
        let est = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9))
            .with_options(EngineOptions {
                stage_imbalance_correction: true,
                ..Default::default()
            });
        assert_agrees(&est, &TrainingConfig::new(512, 3).unwrap());
    }

    #[test]
    fn cached_matches_plain_moe_with_zero() {
        let m = moe_model();
        let a = accel();
        let sys = system(4, 8);
        let p = Parallelism::builder()
            .tp(8, 1)
            .dp(1, 4)
            .zero(ZeroConfig::stage(ZeroStage::Gradients, 0.5))
            .build()
            .unwrap();
        let est = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.6));
        assert_agrees(&est, &TrainingConfig::new(128, 5).unwrap());
    }

    #[test]
    fn cache_survives_parallelism_and_batch_changes() {
        // The same cache serves different mappings and batch sizes; keyed
        // sub-results keep the outputs equal to fresh-cache runs.
        let m = dense_model();
        let a = accel();
        let sys = system(2, 8);
        let training = TrainingConfig::new(256, 2).unwrap();
        let mut shared = EstimateCache::new();
        for (tp, pp, dp_intra, dp_inter) in [(8, 1, 1, 2), (4, 2, 1, 2), (1, 8, 1, 2), (2, 1, 4, 2)]
        {
            let p = Parallelism::builder()
                .tp(tp, 1)
                .pp(pp, 1)
                .dp(dp_intra, dp_inter)
                .build()
                .unwrap();
            let est = Estimator::new(&m, &a, &sys, &p)
                .with_efficiency(EfficiencyModel::Constant(0.5));
            let mut fresh = EstimateCache::new();
            let from_shared = est.estimate_cached(&mut shared, &training).unwrap();
            let from_fresh = est.estimate_cached(&mut fresh, &training).unwrap();
            assert_eq!(
                from_shared.total_time.get().to_bits(),
                from_fresh.total_time.get().to_bits()
            );
        }
        assert!(shared.hits() > 0);
    }

    #[test]
    fn lower_bound_never_exceeds_cached_estimate() {
        let m = moe_model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(256, 7).unwrap();
        for p in [
            Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap(),
            Parallelism::builder().tp(2, 1).pp(4, 2).dp(1, 2).build().unwrap(),
            Parallelism::builder().pp(8, 1).dp(1, 4).build().unwrap(),
        ] {
            let est = Estimator::new(&m, &a, &sys, &p)
                .with_efficiency(EfficiencyModel::saturating(0.95, 4.0, 0.25, 0.95))
                .with_options(EngineOptions {
                    stage_imbalance_correction: true,
                    ..Default::default()
                });
            let mut cache = EstimateCache::new();
            let lb = est.compute_lower_bound(&mut cache, &training).unwrap();
            let full = est.estimate_cached(&mut cache, &training).unwrap();
            assert!(
                lb.get() <= full.total_time.get(),
                "lb {} > total {} for {p:?}",
                lb.get(),
                full.total_time.get()
            );
            assert!(lb.get() > 0.0);
        }
    }

    #[test]
    fn lower_bound_tp_floor_matches_estimate_terms_bitwise() {
        // With pp = 1 the imbalance correction is off, so the bound's
        // compute terms match the estimate's bitwise — and the TP floor
        // repeats the estimate's own accumulation, so the whole bound is
        // reconstructable from the breakdown, exactly.
        let m = dense_model();
        let a = accel();
        let sys = system(2, 8);
        let training = TrainingConfig::new(256, 7).unwrap();
        let p = Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap();
        let est = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mut cache = EstimateCache::new();
        let lb = est.compute_lower_bound(&mut cache, &training).unwrap();
        let full = est.estimate_cached(&mut cache, &training).unwrap();
        let b = &full.breakdown;
        let expect =
            (b.compute_total() + (b.tp_comm_intra + b.tp_comm_inter)) * 7.0;
        assert_eq!(lb.get().to_bits(), expect.to_bits());
        // The floor genuinely tightens the old compute-only bound.
        assert!(b.tp_comm_intra > 0.0);
        assert!(lb.get() > b.compute_total() * 7.0);
        assert!(lb.get() <= full.total_time.get());
    }

    #[test]
    fn lower_bound_equals_compute_when_no_communication() {
        let m = dense_model();
        let a = accel();
        let sys = system(1, 1);
        let p = Parallelism::single();
        let training = TrainingConfig::new(32, 4).unwrap();
        let est = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mut cache = EstimateCache::new();
        let lb = est.compute_lower_bound(&mut cache, &training).unwrap();
        let full = est.estimate_cached(&mut cache, &training).unwrap();
        // Single worker: no comms, no bubble, imbalance off — the bound is
        // the whole answer.
        assert_eq!(lb.get().to_bits(), full.total_time.get().to_bits());
    }

    #[test]
    fn lower_bound_rejects_invalid_mappings() {
        let m = dense_model();
        let a = accel();
        let sys = system(1, 8);
        let p = Parallelism::builder().tp(4, 1).build().unwrap(); // 4 != 8
        let mut cache = EstimateCache::new();
        assert!(Estimator::new(&m, &a, &sys, &p)
            .compute_lower_bound(&mut cache, &TrainingConfig::new(8, 1).unwrap())
            .is_err());
    }
}
