//! Engine tuning knobs for the parts the paper parameterizes implicitly.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// How pipeline-bubble waiting time is accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[derive(Default)]
pub enum BubbleAccounting {
    /// The standard GPipe bubble: `R·(N_PP−1)/N_ub` of the full per-replica
    /// forward+backward time. Dimensionally consistent and what the
    /// simulator reproduces; the default.
    #[default]
    GPipe,
    /// The paper's Eq. 8 read literally, whose compute term carries an
    /// extra `1/L`: bubbles become nearly negligible for deep models. Kept
    /// as a knob to reproduce the paper's case-study numbers and for the
    /// bubble-accounting ablation.
    PaperEq8,
}


/// Scaling factors the paper describes in prose rather than equations.
///
/// All defaults follow standard practice for transformer training and the
/// paper's own choices:
///
/// * the backward pass costs twice the forward MACs (gradient w.r.t. weights
///   plus gradient w.r.t. inputs);
/// * backward communication mirrors forward communication 1:1
///   (“activations are replaced by error and gradient calculations”);
/// * the optimizer performs one MAC-equivalent per weight (plain SGD; Adam
///   variants can raise it);
/// * activation recomputation is off (the validation experiments use plain
///   GPipe/DDP without recompute) — turning it on adds one forward pass to
///   the backward compute and to the *model FLOPs* credited to the run, as
///   in Megatron-LM's 4/3 convention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Backward-pass MAC multiple of the forward pass.
    pub backward_compute_factor: f64,
    /// Backward-pass non-linear-op multiple of the forward pass.
    pub backward_nonlin_factor: f64,
    /// Backward-pass communication multiple of the forward pass.
    pub backward_comm_factor: f64,
    /// MAC-equivalents per weight in the optimizer step (Eq. 12 multiplier).
    pub weight_update_factor: f64,
    /// Recompute activations in the backward pass (adds one forward).
    pub activation_recompute: bool,
    /// Pipeline-bubble accounting variant.
    pub bubble_accounting: BubbleAccounting,
    /// Charge pipelined compute at the *slowest stage's* rate when the
    /// layer stack does not divide evenly into `N_PP` stages
    /// (`ceil(stack/N_PP) / (stack/N_PP)`). Off by default — the paper's
    /// model, like most analytical models, assumes balanced stages — but
    /// the discrete-event simulator shows a 13-entry stack forced through
    /// 8 stages runs ~46 % slower than the balanced assumption predicts
    /// (ablation 5).
    pub stage_imbalance_correction: bool,
}

impl EngineOptions {
    /// Validate all factors are non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] otherwise.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("backward_compute_factor", self.backward_compute_factor),
            ("backward_nonlin_factor", self.backward_nonlin_factor),
            ("backward_comm_factor", self.backward_comm_factor),
            ("weight_update_factor", self.weight_update_factor),
        ] {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(Error::invalid(
                    "engine options",
                    format!("{name} must be non-negative and finite, got {v}"),
                ));
            }
        }
        Ok(())
    }

    /// Total forward-equivalents of MAC work in fwd+bwd
    /// (1 + backward factor + 1 more if recomputing).
    pub fn compute_passes(&self) -> f64 {
        1.0 + self.backward_compute_factor + if self.activation_recompute { 1.0 } else { 0.0 }
    }
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            backward_compute_factor: 2.0,
            backward_nonlin_factor: 2.0,
            backward_comm_factor: 1.0,
            weight_update_factor: 1.0,
            activation_recompute: false,
            bubble_accounting: BubbleAccounting::GPipe,
            stage_imbalance_correction: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        EngineOptions::default().validate().unwrap();
        assert_eq!(EngineOptions::default().compute_passes(), 3.0);
    }

    #[test]
    fn recompute_adds_a_pass() {
        let opts = EngineOptions {
            activation_recompute: true,
            ..Default::default()
        };
        assert_eq!(opts.compute_passes(), 4.0);
    }

    #[test]
    fn rejects_negative_factors() {
        let opts = EngineOptions {
            backward_comm_factor: -1.0,
            ..Default::default()
        };
        assert!(opts.validate().is_err());
    }
}
