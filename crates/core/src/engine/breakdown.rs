//! The estimation result types: [`Breakdown`] and [`Estimate`].

use serde::{Deserialize, Serialize};

use crate::units::Seconds;

/// Per-iteration time breakdown in seconds, one field per component the
/// paper's Fig. 3 stacks.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Breakdown {
    /// Forward-pass compute (`ΣU_f / (N_TP·N_DP·N_PP)`).
    pub compute_forward: f64,
    /// Backward-pass compute (`ΣU_b / …`).
    pub compute_backward: f64,
    /// Weight-update compute (`ΣU_w / …`, Eq. 12).
    pub weight_update: f64,
    /// Intra-node tensor-parallel all-reduce time (fwd + bwd).
    pub tp_comm_intra: f64,
    /// Inter-node tensor-parallel all-reduce time (fwd + bwd).
    pub tp_comm_inter: f64,
    /// Pipeline stage-boundary communication (fwd + bwd, Eq. 7).
    pub pp_comm: f64,
    /// Mixture-of-experts all-to-all time (fwd + bwd, Eq. 9).
    pub moe_comm: f64,
    /// Intra-node gradient synchronization (Eq. 11).
    pub dp_comm_intra: f64,
    /// Inter-node gradient synchronization.
    pub dp_comm_inter: f64,
    /// Pipeline bubble waiting time (Eq. 8).
    pub bubble: f64,
}

impl Breakdown {
    /// Total compute time per iteration.
    pub fn compute_total(&self) -> f64 {
        self.compute_forward + self.compute_backward + self.weight_update
    }

    /// Total communication time per iteration (all parallelisms).
    pub fn comm_total(&self) -> f64 {
        self.tp_comm_intra
            + self.tp_comm_inter
            + self.pp_comm
            + self.moe_comm
            + self.dp_comm_intra
            + self.dp_comm_inter
    }

    /// Total per-iteration time: compute + communication + bubble.
    pub fn total(&self) -> f64 {
        self.compute_total() + self.comm_total() + self.bubble
    }

    /// Labelled components in display order (for tables and stacked bars).
    pub fn components(&self) -> [(&'static str, f64); 10] {
        [
            ("compute fwd", self.compute_forward),
            ("compute bwd", self.compute_backward),
            ("weight update", self.weight_update),
            ("TP comm intra", self.tp_comm_intra),
            ("TP comm inter", self.tp_comm_inter),
            ("PP comm", self.pp_comm),
            ("MoE comm", self.moe_comm),
            ("DP comm intra", self.dp_comm_intra),
            ("DP comm inter", self.dp_comm_inter),
            ("bubble", self.bubble),
        ]
    }

    /// The fraction each component contributes to the total (0 when the
    /// total is zero).
    pub fn fractions(&self) -> [(&'static str, f64); 10] {
        let total = self.total();
        let mut out = self.components();
        for (_, v) in &mut out {
            *v = if total > 0.0 { *v / total } else { 0.0 };
        }
        out
    }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<16} {:>12} {:>7}", "component", "time", "share")?;
        for ((name, secs), (_, frac)) in self.components().iter().zip(self.fractions()) {
            if *secs == 0.0 {
                continue;
            }
            writeln!(
                f,
                "{:<16} {:>12} {:>6.1}%",
                name,
                Seconds::new(*secs).to_string(),
                frac * 100.0
            )?;
        }
        write!(
            f,
            "{:<16} {:>12} {:>7}",
            "total",
            Seconds::new(self.total()).to_string(),
            ""
        )
    }
}

/// The result of one [`Estimator::estimate`](super::Estimator::estimate)
/// call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Per-iteration component breakdown (seconds).
    pub breakdown: Breakdown,
    /// Time for one batch (one optimizer step).
    pub time_per_iteration: Seconds,
    /// End-to-end time for the configured number of batches (Eq. 1).
    pub total_time: Seconds,
    /// Resolved microbatch size in samples (`ub`).
    pub microbatch_size: f64,
    /// Resolved number of microbatches per minibatch (`N_ub`).
    pub num_microbatches: usize,
    /// Microbatch efficiency `eff(ub)` used for MAC throughput.
    pub efficiency: f64,
    /// Useful model FLOPs per iteration (Megatron accounting; includes the
    /// recompute pass when enabled).
    pub model_flops_per_iteration: f64,
    /// Achieved model TFLOP/s per accelerator — the paper's Table II metric.
    pub tflops_per_gpu: f64,
    /// Total workers the mapping uses.
    pub total_workers: usize,
    /// Tokens processed per second of wall-clock time.
    pub tokens_per_sec: f64,
}

impl Estimate {
    /// End-to-end training time in days (how the case studies report it).
    pub fn days(&self) -> f64 {
        self.total_time.days()
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.breakdown)?;
        writeln!(
            f,
            "iteration: {}   total: {} ({:.2} d)",
            self.time_per_iteration,
            self.total_time,
            self.days()
        )?;
        write!(
            f,
            "ub = {:.2} x{}  eff = {:.1}%  {:.1} TFLOP/s/GPU  {:.0} tokens/s on {} workers",
            self.microbatch_size,
            self.num_microbatches,
            self.efficiency * 100.0,
            self.tflops_per_gpu,
            self.tokens_per_sec,
            self.total_workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Breakdown {
        Breakdown {
            compute_forward: 1.0,
            compute_backward: 2.0,
            weight_update: 0.5,
            tp_comm_intra: 0.25,
            tp_comm_inter: 0.0,
            pp_comm: 0.125,
            moe_comm: 0.0,
            dp_comm_intra: 0.1,
            dp_comm_inter: 0.2,
            bubble: 0.8,
        }
    }

    #[test]
    fn totals_sum_components() {
        let b = sample();
        assert!((b.compute_total() - 3.5).abs() < 1e-12);
        assert!((b.comm_total() - 0.675).abs() < 1e-12);
        assert!((b.total() - 4.975).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = sample();
        let sum: f64 = b.fractions().iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        let b = Breakdown::default();
        assert_eq!(b.total(), 0.0);
        assert!(b.fractions().iter().all(|(_, v)| *v == 0.0));
    }

    #[test]
    fn display_skips_zero_components() {
        let b = sample();
        let s = b.to_string();
        assert!(s.contains("compute fwd"));
        assert!(!s.contains("MoE"));
        assert!(s.contains("total"));
    }
}
