//! The estimator: Eq. 1 of the paper, assembled from Eq. 2–12.

use amped_topo::Collective;

use crate::accelerator::AcceleratorSpec;
use crate::counts::LayerCounts;
use crate::efficiency::EfficiencyModel;
use crate::engine::{Breakdown, DetailedEstimate, EngineOptions, Estimate, LayerEstimate};
use crate::error::Result;
use crate::metrics;
use crate::model::TransformerModel;
use crate::network::SystemSpec;
use crate::parallelism::{Parallelism, ZeroStage};
use crate::precision::Precision;
use crate::training::TrainingConfig;
use crate::units::Seconds;

/// The AMPeD analytical estimator.
///
/// Borrow the four specifications, optionally override precision,
/// efficiency and engine options, then call [`Estimator::estimate`].
///
/// # Example
///
/// ```
/// use amped_core::{
///     AcceleratorSpec, EfficiencyModel, Estimator, Link, Parallelism, SystemSpec,
///     TrainingConfig, TransformerModel,
/// };
///
/// # fn main() -> Result<(), amped_core::Error> {
/// let model = TransformerModel::builder("demo")
///     .layers(24).hidden_size(2048).heads(16).seq_len(1024).vocab_size(32000)
///     .build()?;
/// let accel = AcceleratorSpec::builder("A100")
///     .frequency_hz(1.41e9).cores(108).mac_units(4, 512, 8)
///     .nonlin_units(192, 4, 32).memory(80e9, 2.0e12)
///     .build()?;
/// let system = SystemSpec::new(2, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
/// let parallel = Parallelism::builder().tp(8, 1).dp(1, 2).build()?;
///
/// let estimate = Estimator::new(&model, &accel, &system, &parallel)
///     .with_efficiency(EfficiencyModel::Constant(0.5))
///     .estimate(&TrainingConfig::new(512, 100)?)?;
/// assert!(estimate.total_time.get() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Estimator<'a> {
    model: &'a TransformerModel,
    accel: &'a AcceleratorSpec,
    system: &'a SystemSpec,
    parallelism: &'a Parallelism,
    precision: Precision,
    efficiency: EfficiencyModel,
    options: EngineOptions,
}

impl<'a> Estimator<'a> {
    /// Create an estimator over the four specifications with default
    /// precision (fp16), efficiency and options.
    pub fn new(
        model: &'a TransformerModel,
        accel: &'a AcceleratorSpec,
        system: &'a SystemSpec,
        parallelism: &'a Parallelism,
    ) -> Self {
        Estimator {
            model,
            accel,
            system,
            parallelism,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            options: EngineOptions::default(),
        }
    }

    /// Override the operand precisions.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the microbatch-efficiency model.
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Override the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// The model under estimation.
    pub fn model(&self) -> &'a TransformerModel {
        self.model
    }

    /// The accelerator specification.
    pub fn accel(&self) -> &'a AcceleratorSpec {
        self.accel
    }

    /// The system (cluster) specification.
    pub fn system(&self) -> &'a SystemSpec {
        self.system
    }

    /// The parallelism mapping.
    pub fn parallelism(&self) -> &'a Parallelism {
        self.parallelism
    }

    /// The precision currently configured.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The efficiency model currently configured.
    pub fn efficiency(&self) -> &EfficiencyModel {
        &self.efficiency
    }

    /// The engine options currently configured.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// Run Eq. 1: predict the training time and its breakdown.
    ///
    /// # Errors
    ///
    /// Returns an error when any component fails validation or the
    /// parallelism mapping does not fit the system/model.
    pub fn estimate(&self, training: &TrainingConfig) -> Result<Estimate> {
        self.precision.validate()?;
        self.efficiency.validate()?;
        self.options.validate()?;
        self.parallelism.validate_against(self.system, self.model)?;

        let p = self.parallelism;
        let global_batch = training.global_batch();
        let workers = p.total_workers() as f64;
        let n_ub = p.num_microbatches(global_batch);
        let ub = p.microbatch_size(global_batch);
        let eff = self.efficiency.eval(ub);
        let replica_batch = p.replica_batch(global_batch);

        // Eq. 3-4 reciprocals and Eq. 2 precision de-ratings.
        let c_mac = self.accel.c_mac(eff);
        let c_nonlin = self.accel.c_nonlin();
        let mac_scale = self
            .accel
            .mac_precision_scale(self.precision.mac_operand_bits());
        let param_scale = self.accel.mac_precision_scale(self.precision.param_bits);
        let nonlin_scale = self
            .accel
            .nonlin_precision_scale(self.precision.nonlin_bits);

        let opts = self.options;
        let bwd_c = opts.backward_compute_factor + if opts.activation_recompute { 1.0 } else { 0.0 };

        let mut b = Breakdown::default();
        let stack = self.model.layer_stack();

        // With imbalance correction, the pipeline runs at the slowest
        // stage's rate. With per-microbatch stage times t_s over the
        // balanced contiguous partition (mean t̄, max t*), a GPipe-style
        // pipeline of m microbatches completes a pass in
        // `p·t̄ + (m−1)·t*`, while the balanced model charges
        // `(m+p−1)·t̄`; scaling the compute (and its bubble share) by the
        // ratio reproduces the slowest-stage behaviour exactly for
        // compute-bound pipelines (see ablation 5 and
        // tests/sim_agreement.rs).
        let imbalance = if opts.stage_imbalance_correction && p.pp() > 1 {
            let weights: Vec<f64> = stack
                .iter()
                .map(|&kind| {
                    let c = LayerCounts::for_layer(self.model, kind, 1.0);
                    c.macs_fwd * c_mac * mac_scale + c.nonlin_fwd * c_nonlin * nonlin_scale
                })
                .collect();
            let pp = p.pp();
            let base = stack.len() / pp;
            let extra = stack.len() % pp;
            let mut cursor = 0;
            let mut max_stage = 0.0f64;
            let total: f64 = weights.iter().sum();
            for s in 0..pp {
                let take = base + usize::from(s < extra);
                let stage: f64 = weights[cursor..cursor + take].iter().sum();
                max_stage = max_stage.max(stage);
                cursor += take;
            }
            if total > 0.0 {
                let r = max_stage * pp as f64 / total; // t*/t̄ ≥ 1
                let (m, pf) = (n_ub as f64, pp as f64);
                (pf + (m - 1.0) * r) / (m + pf - 1.0)
            } else {
                1.0
            }
        } else {
            1.0
        };

        // Compute terms use the *global* batch and are divided by the full
        // worker product (Eq. 1); communication volumes use the per-replica
        // batch (see DESIGN.md interpretation notes).
        let mut sum_uf = 0.0; // Σ U_f(l), undivided
        let mut sum_ub_ = 0.0; // Σ U_b(l), undivided

        for &kind in &stack {
            let cg = LayerCounts::for_layer(self.model, kind, global_batch as f64);
            // Eq. 2.
            let u_f = cg.macs_fwd * c_mac * mac_scale + cg.nonlin_fwd * c_nonlin * nonlin_scale;
            let u_b = bwd_c * cg.macs_fwd * c_mac * mac_scale
                + opts.backward_nonlin_factor * cg.nonlin_fwd * c_nonlin * nonlin_scale;
            // Eq. 12 (weights are batch-independent).
            let u_w = opts.weight_update_factor * cg.weights * c_mac * param_scale;

            sum_uf += imbalance * u_f;
            sum_ub_ += imbalance * u_b;
            b.compute_forward += imbalance * u_f / workers;
            b.compute_backward += imbalance * u_b / workers;
            b.weight_update += u_w / workers;
        }

        // ---- Communication (per layer, forward; backward mirrors it). ----
        let zero_factor = 1.0 + p.zero().comm_overhead;
        let comm_passes = zero_factor * (1.0 + opts.backward_comm_factor);
        let intra = self.system.intra();
        let inter = self.system.inter();
        let inter_bw = self.system.inter_bandwidth_per_accel();
        // Hierarchical collectives: when a whole intra-node TP group feeds a
        // single inter-node stream, that stream can drive the node's NICs in
        // parallel — tp_intra per-accelerator shares aggregate (capped at the
        // node's full NIC bandwidth).
        let nic_aggregate = self.system.inter().bandwidth_bits_per_sec
            * self.system.nics_per_node() as f64;
        let inter_bw_tp_stream = (inter_bw * p.tp_intra() as f64).min(nic_aggregate);
        let act_bits = self.precision.act_bits as f64;

        let mut fwd_comm_for_bubble = 0.0; // Σ_l (M_f + M_b) excluding DP sync
        // Layers are spread over the pipeline stages and their collectives
        // run concurrently, so the per-iteration critical path carries only
        // a 1/N_PP share of the summed per-layer communication (DESIGN.md
        // interpretation note 7).
        let stage_share = 1.0 / p.pp() as f64;

        for &kind in &stack {
            let cr = LayerCounts::for_layer(self.model, kind, replica_batch);

            // Eq. 6: intra-node TP all-reduce.
            if p.tp_intra() > 1 {
                let cost = intra.topology.cost(Collective::AllReduce, p.tp_intra());
                let t = cost.time(
                    cr.act_elems_tp * act_bits,
                    intra.latency_s,
                    intra.bandwidth_bits_per_sec,
                );
                b.tp_comm_intra += comm_passes * stage_share * t;
                fwd_comm_for_bubble += zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t;
            }
            // Eq. 6 applied inter-node.
            if p.tp_inter() > 1 {
                let cost = inter.topology.cost(Collective::AllReduce, p.tp_inter());
                let t = cost.time(
                    cr.act_elems_tp * act_bits,
                    inter.latency_s,
                    inter_bw_tp_stream,
                );
                b.tp_comm_inter += comm_passes * stage_share * t;
                fwd_comm_for_bubble += zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t;
            }
            // Eq. 9: MoE all-to-all over the node fabric. With tensor
            // parallelism each rank holds (and therefore routes) only its
            // h/N_TP feature shard of every token, so the per-accelerator
            // volume divides by the TP degree.
            if cr.act_elems_moe > 0.0 && self.system.num_nodes() >= 1 {
                let nodes = self.system.num_nodes() as f64;
                let cost = inter.topology.cost(Collective::AllToAll, self.system.num_nodes());
                let latency_term = 2.0 * inter.latency_s * cost.steps as f64;
                let volume_bits = cr.act_elems_moe * act_bits / p.tp() as f64;
                let bw_term = if nodes > 1.0 {
                    2.0 * volume_bits
                        * cost.factor
                        * (1.0 / (nodes * intra.bandwidth_bits_per_sec)
                            + (nodes - 1.0) / (nodes * inter_bw))
                } else {
                    // Single node: the all-to-all stays on the intra fabric.
                    2.0 * volume_bits / intra.bandwidth_bits_per_sec
                };
                let t = latency_term + bw_term;
                b.moe_comm += comm_passes * stage_share * t;
                fwd_comm_for_bubble += zero_factor * (1.0 + opts.backward_comm_factor) * stage_share * t;
            }
        }

        // Eq. 7: pipeline communication — one whole-batch stage transfer,
        // the per-layer 1/L folds away when summing over the stack. The
        // pipeline runs at the slower of its intra/inter hops (Eq. 5 max).
        if p.pp() > 1 {
            let vol_bits = replica_batch * self.model.seq_len() as f64
                * self.model.hidden_size() as f64
                * act_bits;
            let t_intra = if p.pp_intra() > 1 {
                intra.latency_s + vol_bits / intra.bandwidth_bits_per_sec
            } else {
                0.0
            };
            let t_inter = if p.pp_inter() > 1 {
                // The stage's tensor-parallel shards leave the node through
                // their NIC shares concurrently.
                inter.latency_s + vol_bits / inter_bw_tp_stream
            } else {
                0.0
            };
            let t = t_intra.max(t_inter);
            b.pp_comm = comm_passes * t;
            fwd_comm_for_bubble += zero_factor * (1.0 + opts.backward_comm_factor) * t;
        }

        // Eq. 10-11: hierarchical gradient all-reduce over the DP groups.
        // ZeRO >= stage 2 turns it into a reduce-scatter (half the volume).
        let grad_collective = if p.zero().stage >= ZeroStage::Gradients {
            Collective::ReduceScatter
        } else {
            Collective::AllReduce
        };
        let grad_bits = self.precision.grad_bits as f64;
        // Expert parallelism (GShard/GLaM): expert weights are sharded
        // across the nodes rather than replicated, so each accelerator only
        // synchronizes its 1/EP share of the expert gradients.
        let expert_parallel = self
            .model
            .moe()
            .map(|cfg| cfg.num_experts.min(self.system.num_nodes()).max(1))
            .unwrap_or(1) as f64;
        // Gradients are bucketed into one fused all-reduce per group (as
        // DDP implementations do), so the per-hop latency is paid once and
        // only the volume sums over layers.
        let n_g_total: f64 = stack
            .iter()
            .map(|&kind| {
                let cg = LayerCounts::for_layer(self.model, kind, 1.0);
                let dense_weights = cg.weights - cg.weights_expert;
                (dense_weights + cg.weights_expert / expert_parallel)
                    / (p.tp() as f64 * p.pp() as f64)
            })
            .sum();
        if p.dp_intra() > 1 {
            let cost = intra.topology.cost(grad_collective, p.dp_intra());
            b.dp_comm_intra = cost.time(
                n_g_total * grad_bits,
                intra.latency_s,
                intra.bandwidth_bits_per_sec,
            );
        }
        if p.dp_inter() > 1 {
            // Hierarchical all-reduce (Eq. 10): the intra-node phase
            // reduce-scatters, so each accelerator carries only its
            // 1/DP_intra shard across nodes.
            let cost = inter.topology.cost(grad_collective, p.dp_inter());
            b.dp_comm_inter = cost.time(
                n_g_total / p.dp_intra() as f64 * grad_bits,
                inter.latency_s,
                inter_bw,
            );
        }

        // Eq. 8 (see DESIGN.md): bubble = R·(N_PP−1)/N_ub ×
        //   [ Σ(U_f+U_b)/(N_TP·N_DP·N_PP) + Σ(M_f+M_b) ].
        if p.pp() > 1 {
            let compute_scale = match opts.bubble_accounting {
                crate::engine::BubbleAccounting::GPipe => 1.0,
                crate::engine::BubbleAccounting::PaperEq8 => 1.0 / stack.len() as f64,
            };
            b.bubble = p.bubble_ratio() * (p.pp() as f64 - 1.0) / n_ub as f64
                * (compute_scale * (sum_uf + sum_ub_) / workers + fwd_comm_for_bubble);
        }

        let time_per_iteration = b.total();
        let total_time = time_per_iteration * training.num_batches() as f64;
        let model_flops = metrics::model_flops_per_iteration(
            self.model,
            global_batch,
            opts.activation_recompute,
        );
        let tflops_per_gpu = metrics::tflops_per_gpu(model_flops, time_per_iteration, workers);
        let tokens_per_sec = if time_per_iteration > 0.0 {
            (global_batch * self.model.seq_len()) as f64 / time_per_iteration
        } else {
            0.0
        };

        Ok(Estimate {
            breakdown: b,
            time_per_iteration: Seconds::new(time_per_iteration),
            total_time: Seconds::new(total_time),
            microbatch_size: ub,
            num_microbatches: n_ub,
            efficiency: eff,
            model_flops_per_iteration: model_flops,
            tflops_per_gpu,
            total_workers: p.total_workers(),
            tokens_per_sec,
        })
    }
}

impl<'a> Estimator<'a> {
    /// Like [`Estimator::estimate`], but additionally attributes compute and
    /// communication to individual layers.
    ///
    /// Pipeline-boundary communication and bubble time are whole-pipeline
    /// quantities and appear only in the aggregate; every other breakdown
    /// component equals the sum of its per-layer rows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn estimate_detailed(&self, training: &TrainingConfig) -> Result<DetailedEstimate> {
        let estimate = self.estimate(training)?;

        let p = self.parallelism;
        let global_batch = training.global_batch();
        let workers = p.total_workers() as f64;
        let ub = p.microbatch_size(global_batch);
        let eff = self.efficiency.eval(ub);
        let replica_batch = p.replica_batch(global_batch);

        let c_mac = self.accel.c_mac(eff);
        let c_nonlin = self.accel.c_nonlin();
        let mac_scale = self
            .accel
            .mac_precision_scale(self.precision.mac_operand_bits());
        let param_scale = self.accel.mac_precision_scale(self.precision.param_bits);
        let nonlin_scale = self
            .accel
            .nonlin_precision_scale(self.precision.nonlin_bits);
        let opts = self.options;
        let bwd_c =
            opts.backward_compute_factor + if opts.activation_recompute { 1.0 } else { 0.0 };
        let zero_factor = 1.0 + p.zero().comm_overhead;
        let comm_passes = zero_factor * (1.0 + opts.backward_comm_factor);
        let intra = self.system.intra();
        let inter = self.system.inter();
        let inter_bw = self.system.inter_bandwidth_per_accel();
        let nic_aggregate = self.system.inter().bandwidth_bits_per_sec
            * self.system.nics_per_node() as f64;
        let inter_bw_tp_stream = (inter_bw * p.tp_intra() as f64).min(nic_aggregate);
        let act_bits = self.precision.act_bits as f64;
        let stage_share = 1.0 / p.pp() as f64;
        let expert_parallel = self
            .model
            .moe()
            .map(|cfg| cfg.num_experts.min(self.system.num_nodes()).max(1))
            .unwrap_or(1) as f64;
        let n_g_total: f64 = self
            .model
            .layer_stack()
            .iter()
            .map(|&kind| {
                let cg = LayerCounts::for_layer(self.model, kind, 1.0);
                let dense_weights = cg.weights - cg.weights_expert;
                (dense_weights + cg.weights_expert / expert_parallel)
                    / (p.tp() as f64 * p.pp() as f64)
            })
            .sum();

        let mut layers = Vec::new();
        for (index, &kind) in self.model.layer_stack().iter().enumerate() {
            let cg = LayerCounts::for_layer(self.model, kind, global_batch as f64);
            let cr = LayerCounts::for_layer(self.model, kind, replica_batch);

            let compute_forward =
                (cg.macs_fwd * c_mac * mac_scale + cg.nonlin_fwd * c_nonlin * nonlin_scale)
                    / workers;
            let compute_backward = (bwd_c * cg.macs_fwd * c_mac * mac_scale
                + opts.backward_nonlin_factor * cg.nonlin_fwd * c_nonlin * nonlin_scale)
                / workers;
            let weight_update =
                opts.weight_update_factor * cg.weights * c_mac * param_scale / workers;

            let mut tp_comm = 0.0;
            if p.tp_intra() > 1 {
                let cost = intra.topology.cost(Collective::AllReduce, p.tp_intra());
                tp_comm += comm_passes
                    * stage_share
                    * cost.time(
                        cr.act_elems_tp * act_bits,
                        intra.latency_s,
                        intra.bandwidth_bits_per_sec,
                    );
            }
            if p.tp_inter() > 1 {
                let cost = inter.topology.cost(Collective::AllReduce, p.tp_inter());
                tp_comm += comm_passes
                    * stage_share
                    * cost.time(cr.act_elems_tp * act_bits, inter.latency_s, inter_bw_tp_stream);
            }

            let mut moe_comm = 0.0;
            if cr.act_elems_moe > 0.0 {
                let nodes = self.system.num_nodes() as f64;
                let cost = inter
                    .topology
                    .cost(Collective::AllToAll, self.system.num_nodes());
                let latency_term = 2.0 * inter.latency_s * cost.steps as f64;
                let volume_bits = cr.act_elems_moe * act_bits / p.tp() as f64;
                let bw_term = if nodes > 1.0 {
                    2.0 * volume_bits
                        * cost.factor
                        * (1.0 / (nodes * intra.bandwidth_bits_per_sec)
                            + (nodes - 1.0) / (nodes * inter_bw))
                } else {
                    2.0 * volume_bits / intra.bandwidth_bits_per_sec
                };
                moe_comm = comm_passes * stage_share * (latency_term + bw_term);
            }

            // The fused gradient all-reduce is attributed to layers by
            // their share of the synchronized volume.
            let dense_weights = cg.weights - cg.weights_expert;
            let n_g = (dense_weights + cg.weights_expert / expert_parallel)
                / (p.tp() as f64 * p.pp() as f64);
            let dp_total =
                estimate.breakdown.dp_comm_intra + estimate.breakdown.dp_comm_inter;
            let dp_comm = if n_g_total > 0.0 {
                dp_total * n_g / n_g_total
            } else {
                0.0
            };

            layers.push(LayerEstimate {
                index,
                kind,
                compute_forward,
                compute_backward,
                weight_update,
                tp_comm,
                moe_comm,
                dp_comm,
            });
        }

        Ok(DetailedEstimate { estimate, layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;
    use crate::parallelism::{MicrobatchPolicy, ZeroConfig};

    fn model() -> TransformerModel {
        TransformerModel::builder("test-1.3B")
            .layers(24)
            .hidden_size(2048)
            .heads(16)
            .seq_len(1024)
            .vocab_size(32000)
            .build()
            .unwrap()
    }

    fn accel() -> AcceleratorSpec {
        AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .offchip_bandwidth_bits_per_sec(2.4e12)
            .build()
            .unwrap()
    }

    fn system(nodes: usize, per_node: usize) -> SystemSpec {
        SystemSpec::new(
            nodes,
            per_node,
            Link::new(5e-6, 2.4e12),
            Link::new(1e-5, 2e11),
            per_node,
        )
        .unwrap()
    }

    fn estimate_with(p: &Parallelism, sys: &SystemSpec, batch: usize) -> Estimate {
        let m = model();
        let a = accel();
        Estimator::new(&m, &a, sys, p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .estimate(&TrainingConfig::new(batch, 10).unwrap())
            .unwrap()
    }

    #[test]
    fn single_worker_has_no_communication() {
        let sys = system(1, 1);
        let p = Parallelism::single();
        let e = estimate_with(&p, &sys, 32);
        assert_eq!(e.breakdown.comm_total(), 0.0);
        assert_eq!(e.breakdown.bubble, 0.0);
        assert!(e.breakdown.compute_total() > 0.0);
    }

    #[test]
    fn total_time_is_batches_times_iteration() {
        let sys = system(1, 1);
        let p = Parallelism::single();
        let e = estimate_with(&p, &sys, 32);
        assert!(
            (e.total_time.get() - 10.0 * e.time_per_iteration.get()).abs()
                / e.total_time.get()
                < 1e-12
        );
    }

    #[test]
    fn dp_scales_compute_down() {
        let e1 = estimate_with(&Parallelism::single(), &system(1, 1), 64);
        let p8 = Parallelism::data_parallel_intra(8).unwrap();
        let e8 = estimate_with(&p8, &system(1, 8), 64);
        let ratio = e1.breakdown.compute_total() / e8.breakdown.compute_total();
        assert!((ratio - 8.0).abs() < 1e-6, "ratio = {ratio}");
        // DP adds gradient sync.
        assert!(e8.breakdown.dp_comm_intra > 0.0);
        assert_eq!(e8.breakdown.tp_comm_intra, 0.0);
    }

    #[test]
    fn tp_intra_adds_allreduce_per_layer() {
        let p = Parallelism::builder().tp(8, 1).build().unwrap();
        let e = estimate_with(&p, &system(1, 8), 64);
        assert!(e.breakdown.tp_comm_intra > 0.0);
        assert_eq!(e.breakdown.tp_comm_inter, 0.0);
        assert_eq!(e.breakdown.dp_comm_intra, 0.0);
        assert_eq!(e.breakdown.bubble, 0.0);
    }

    #[test]
    fn tp_inter_is_slower_than_tp_intra() {
        // Conclusion 2 of case study I: TP over slow inter-node links is
        // communication-bound.
        let intra = Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap();
        let inter = Parallelism::builder().tp(1, 2).dp(8, 1).build().unwrap();
        let sys = system(2, 8);
        let e_intra = estimate_with(&intra, &sys, 256);
        let e_inter = estimate_with(&inter, &sys, 256);
        assert!(e_inter.breakdown.tp_comm_inter > e_intra.breakdown.tp_comm_intra);
    }

    #[test]
    fn pp_creates_bubble_that_shrinks_with_microbatches() {
        let sys = system(1, 8);
        let few = Parallelism::builder()
            .pp(8, 1)
            .microbatches(MicrobatchPolicy::Explicit(8))
            .build()
            .unwrap();
        let many = Parallelism::builder()
            .pp(8, 1)
            .microbatches(MicrobatchPolicy::Explicit(64))
            .build()
            .unwrap();
        let e_few = estimate_with(&few, &sys, 512);
        let e_many = estimate_with(&many, &sys, 512);
        assert!(e_few.breakdown.bubble > 0.0);
        assert!(
            e_many.breakdown.bubble < e_few.breakdown.bubble,
            "more microbatches must shrink the bubble"
        );
    }

    #[test]
    fn bubble_ratio_scales_bubble_linearly() {
        let sys = system(1, 8);
        let naive = Parallelism::builder().pp(8, 1).build().unwrap();
        let interleaved = Parallelism::builder()
            .pp(8, 1)
            .bubble_ratio(0.25)
            .build()
            .unwrap();
        let e_n = estimate_with(&naive, &sys, 512);
        let e_i = estimate_with(&interleaved, &sys, 512);
        assert!((e_i.breakdown.bubble / e_n.breakdown.bubble - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_overhead_inflates_fwd_bwd_comm_only() {
        let sys = system(1, 8);
        let plain = Parallelism::builder().tp(8, 1).build().unwrap();
        let zero = Parallelism::builder()
            .tp(8, 1)
            .zero(ZeroConfig::stage(crate::parallelism::ZeroStage::OptimizerStates, 0.5))
            .build()
            .unwrap();
        let e_p = estimate_with(&plain, &sys, 64);
        let e_z = estimate_with(&zero, &sys, 64);
        assert!((e_z.breakdown.tp_comm_intra / e_p.breakdown.tp_comm_intra - 1.5).abs() < 1e-9);
        assert_eq!(e_z.breakdown.compute_total(), e_p.breakdown.compute_total());
    }

    #[test]
    fn moe_layers_add_alltoall() {
        let m = TransformerModel::builder("moe")
            .layers(24)
            .hidden_size(2048)
            .heads(16)
            .seq_len(1024)
            .vocab_size(32000)
            .moe(crate::model::MoeConfig::glam(8))
            .build()
            .unwrap();
        let a = accel();
        let sys = system(4, 8);
        let p = Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap();
        let e = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .estimate(&TrainingConfig::new(256, 1).unwrap())
            .unwrap();
        assert!(e.breakdown.moe_comm > 0.0);
    }

    #[test]
    fn more_bandwidth_never_hurts() {
        let m = model();
        let a = accel();
        let p = Parallelism::builder().tp(8, 1).pp(1, 2).dp(1, 2).build().unwrap();
        let slow = SystemSpec::new(4, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 8).unwrap();
        let fast = SystemSpec::new(4, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 4e11), 8).unwrap();
        let t = TrainingConfig::new(256, 1).unwrap();
        let e_slow = Estimator::new(&m, &a, &slow, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .estimate(&t)
            .unwrap();
        let e_fast = Estimator::new(&m, &a, &fast, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .estimate(&t)
            .unwrap();
        assert!(e_fast.time_per_iteration.get() <= e_slow.time_per_iteration.get());
    }

    #[test]
    fn invalid_mapping_is_rejected() {
        let m = model();
        let a = accel();
        let sys = system(1, 8);
        let p = Parallelism::builder().tp(4, 1).build().unwrap(); // 4 != 8
        let r = Estimator::new(&m, &a, &sys, &p).estimate(&TrainingConfig::new(8, 1).unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn detailed_layers_sum_to_aggregate_components() {
        let m = TransformerModel::builder("detail")
            .layers(8)
            .hidden_size(512)
            .heads(8)
            .seq_len(128)
            .vocab_size(2000)
            .moe(crate::model::MoeConfig::glam(4))
            .build()
            .unwrap();
        let a = accel();
        let sys = system(4, 8);
        let p = Parallelism::builder().tp(4, 1).pp(2, 2).dp(1, 2).build().unwrap();
        let t = TrainingConfig::new(128, 1).unwrap();
        let d = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .estimate_detailed(&t)
            .unwrap();
        let b = &d.estimate.breakdown;
        let sum = |f: fn(&crate::engine::LayerEstimate) -> f64| -> f64 {
            d.layers.iter().map(f).sum()
        };
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(1e-12);
        assert!(close(sum(|l| l.compute_forward), b.compute_forward));
        assert!(close(sum(|l| l.compute_backward), b.compute_backward));
        assert!(close(sum(|l| l.weight_update), b.weight_update));
        assert!(close(sum(|l| l.tp_comm), b.tp_comm_intra + b.tp_comm_inter));
        assert!(close(sum(|l| l.moe_comm), b.moe_comm));
        assert!(close(sum(|l| l.dp_comm), b.dp_comm_intra + b.dp_comm_inter));
        // Only MoE layers carry all-to-all time; the head is attention-free.
        for l in &d.layers {
            if l.kind != crate::model::LayerKind::Moe {
                assert_eq!(l.moe_comm, 0.0);
            }
        }
        assert_eq!(d.layers.len(), 9);
    }

    #[test]
    fn detailed_hottest_layer_is_moe() {
        let m = TransformerModel::builder("detail-hot")
            .layers(4)
            .hidden_size(256)
            .heads(8)
            .seq_len(64)
            .vocab_size(500)
            .moe(crate::model::MoeConfig::glam(8))
            .build()
            .unwrap();
        let a = accel();
        let sys = system(2, 8);
        let p = Parallelism::builder().tp(8, 1).dp(1, 2).build().unwrap();
        let d = Estimator::new(&m, &a, &sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .estimate_detailed(&TrainingConfig::new(16, 1).unwrap())
            .unwrap();
        let hot = d.hottest_layers(1);
        assert_eq!(hot[0].kind, crate::model::LayerKind::Moe);
    }

    #[test]
    fn imbalance_correction_matches_slowest_stage_share() {
        // 25 entries (24 layers + head) through 8 stages. The partition is
        // 7 stages of 3 entries and 1 stage of 4; the correction scales the
        // pipelined compute by max-stage work over mean-stage work.
        let sys = system(1, 8);
        let p = Parallelism::builder().pp(8, 1).build().unwrap();
        let m = model();
        let a = accel();
        let t = TrainingConfig::new(64, 1).unwrap();
        let run = |correct: bool| {
            Estimator::new(&m, &a, &sys, &p)
                .with_efficiency(EfficiencyModel::Constant(0.5))
                .with_options(EngineOptions {
                    stage_imbalance_correction: correct,
                    ..Default::default()
                })
                .estimate(&t)
                .unwrap()
                .breakdown
                .compute_forward
        };
        let ratio = run(true) / run(false);
        // The first stage holds 4 of 25 entries; layers dominate the head
        // here, so the factor sits between the naive 4/3.125 count ratio
        // shifted by the head's weight, and must exceed 1.
        assert!(ratio > 1.05 && ratio < 1.5, "ratio = {ratio}");
        // Balanced stacks are untouched: pp = 1.
        let p1 = Parallelism::single();
        let sys1 = system(1, 1);
        let e = |correct: bool| {
            Estimator::new(&m, &a, &sys1, &p1)
                .with_efficiency(EfficiencyModel::Constant(0.5))
                .with_options(EngineOptions {
                    stage_imbalance_correction: correct,
                    ..Default::default()
                })
                .estimate(&t)
                .unwrap()
                .time_per_iteration
                .get()
        };
        assert_eq!(e(true), e(false));
    }

    #[test]
    fn interleaving_shrinks_bubble() {
        let sys = system(1, 8);
        let naive = Parallelism::builder().pp(8, 1).build().unwrap();
        let interleaved = Parallelism::builder().pp(8, 1).interleaved(4).build().unwrap();
        assert!((interleaved.bubble_ratio() - 0.25).abs() < 1e-12);
        let e_n = estimate_with(&naive, &sys, 512);
        let e_i = estimate_with(&interleaved, &sys, 512);
        assert!((e_i.breakdown.bubble / e_n.breakdown.bubble - 0.25).abs() < 1e-9);
    }

    #[test]
    fn tflops_metric_is_consistent() {
        let sys = system(1, 8);
        let p = Parallelism::builder().tp(8, 1).build().unwrap();
        let e = estimate_with(&p, &sys, 64);
        let expect = e.model_flops_per_iteration / (e.time_per_iteration.get() * 8.0) / 1e12;
        assert!((e.tflops_per_gpu - expect).abs() < 1e-9);
        assert!(e.tflops_per_gpu > 0.0);
    }
}
