//! Operand precisions (the paper's `S_p`, `S_act`, `S_nonlin`, `S_g`).
//!
//! Eq. 2 scales the busy time of a functional unit by
//! `ceil(max(S_p, S_act) / S_FU)` — i.e. running 16-bit operands through a
//! unit whose native lane width is 8 bits halves its effective rate — and
//! Eq. 6/9/11 multiply communication volumes by the operand width in bits.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Bit widths of the numeric formats used during training.
///
/// # Example
///
/// ```
/// use amped_core::Precision;
/// let p = Precision::fp16();
/// assert_eq!(p.param_bits, 16);
/// assert_eq!(p.grad_bits, 16);
/// p.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Precision {
    /// Width of model parameters, the paper's `S_p` (bits).
    pub param_bits: u32,
    /// Width of activations, the paper's `S_act` (bits).
    pub act_bits: u32,
    /// Width of non-linear-operation operands, the paper's `S_nonlin` (bits).
    pub nonlin_bits: u32,
    /// Width of gradients, the paper's `S_g` (bits).
    pub grad_bits: u32,
}

impl Precision {
    /// Uniform precision: every tensor class uses `bits`.
    pub fn uniform(bits: u32) -> Self {
        Precision {
            param_bits: bits,
            act_bits: bits,
            nonlin_bits: bits,
            grad_bits: bits,
        }
    }

    /// IEEE single precision everywhere (classic FP32 training).
    pub fn fp32() -> Self {
        Self::uniform(32)
    }

    /// Half precision everywhere (mixed-precision training with FP16
    /// compute, gradients communicated in FP16 — the common Megatron setup).
    pub fn fp16() -> Self {
        Self::uniform(16)
    }

    /// bfloat16 everywhere. Identical widths to [`Precision::fp16`]; kept as
    /// a separate constructor for self-documenting configs.
    pub fn bf16() -> Self {
        Self::uniform(16)
    }

    /// 8-bit everywhere (case study III assumes 8-bit training).
    pub fn int8() -> Self {
        Self::uniform(8)
    }

    /// The wider of parameter and activation width — the operand width that
    /// gates MAC-unit throughput in Eq. 2.
    pub fn mac_operand_bits(&self) -> u32 {
        self.param_bits.max(self.act_bits)
    }

    /// Check all widths are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any width is zero.
    pub fn validate(&self) -> Result<()> {
        for (name, bits) in [
            ("param_bits", self.param_bits),
            ("act_bits", self.act_bits),
            ("nonlin_bits", self.nonlin_bits),
            ("grad_bits", self.grad_bits),
        ] {
            if bits == 0 {
                return Err(Error::invalid("precision", format!("{name} must be > 0")));
            }
        }
        Ok(())
    }
}

impl Default for Precision {
    /// Mixed half precision, the configuration of all paper experiments
    /// except case study III.
    fn default() -> Self {
        Self::fp16()
    }
}

/// `ceil(operand_bits / unit_bits)` — the Eq. 2 throughput de-rating factor
/// for running wide operands through narrow functional-unit lanes.
///
/// # Panics
///
/// Panics if `unit_bits` is zero.
pub fn precision_scale(operand_bits: u32, unit_bits: u32) -> f64 {
    assert!(unit_bits > 0, "functional unit width must be positive");
    operand_bits.div_ceil(unit_bits) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_widths() {
        assert_eq!(Precision::fp32().act_bits, 32);
        assert_eq!(Precision::fp16().mac_operand_bits(), 16);
        assert_eq!(Precision::int8().grad_bits, 8);
        assert_eq!(Precision::default(), Precision::fp16());
    }

    #[test]
    fn mac_operand_is_max_of_param_and_act() {
        let p = Precision {
            param_bits: 8,
            act_bits: 16,
            nonlin_bits: 32,
            grad_bits: 16,
        };
        assert_eq!(p.mac_operand_bits(), 16);
    }

    #[test]
    fn precision_scale_is_ceiling() {
        assert_eq!(precision_scale(16, 8), 2.0);
        assert_eq!(precision_scale(16, 16), 1.0);
        assert_eq!(precision_scale(8, 16), 1.0);
        assert_eq!(precision_scale(17, 8), 3.0);
    }

    #[test]
    fn zero_width_rejected() {
        let mut p = Precision::fp16();
        p.grad_bits = 0;
        assert!(p.validate().is_err());
        assert!(Precision::fp16().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_unit_width_panics() {
        precision_scale(16, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Precision::int8();
        let json = serde_json::to_string(&p).unwrap();
        let back: Precision = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
