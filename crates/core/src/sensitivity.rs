//! Sensitivity analysis: which knob moves the training time most?
//!
//! AMPeD's pitch is hardware–software co-design over "tunable knobs"; this
//! module quantifies each knob's leverage. For a scenario, every knob is
//! scaled by a factor (default 2×) one at a time, and the resulting change
//! in iteration time is reported — tornado-chart data for deciding whether
//! the next dollar goes into faster links, faster clocks, or a bigger
//! batch.

use serde::{Deserialize, Serialize};

use crate::accelerator::AcceleratorSpec;
use crate::efficiency::EfficiencyModel;
use crate::engine::{EngineOptions, Estimator};
use crate::error::Result;
use crate::network::{Link, SystemSpec};
use crate::parallelism::Parallelism;
use crate::precision::Precision;
use crate::training::TrainingConfig;
use crate::TransformerModel;

/// A knob the analysis can scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Knob {
    /// Intra-node link bandwidth.
    IntraBandwidth,
    /// Inter-node (per-NIC) bandwidth.
    InterBandwidth,
    /// Intra-node link latency (scaling *down* helps).
    IntraLatency,
    /// Inter-node link latency.
    InterLatency,
    /// Accelerator clock frequency.
    Frequency,
    /// Global batch size.
    GlobalBatch,
}

impl Knob {
    /// All knobs, in display order.
    pub fn all() -> [Knob; 6] {
        [
            Knob::IntraBandwidth,
            Knob::InterBandwidth,
            Knob::IntraLatency,
            Knob::InterLatency,
            Knob::Frequency,
            Knob::GlobalBatch,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Knob::IntraBandwidth => "intra-node bandwidth",
            Knob::InterBandwidth => "inter-node bandwidth",
            Knob::IntraLatency => "intra-node latency",
            Knob::InterLatency => "inter-node latency",
            Knob::Frequency => "accelerator frequency",
            Knob::GlobalBatch => "global batch size",
        }
    }
}

/// One knob's measured leverage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityResult {
    /// The knob that was scaled.
    pub knob: Knob,
    /// The factor it was scaled by (latencies are *divided* by it, so every
    /// row answers "what if this resource were `factor`× better?").
    pub factor: f64,
    /// Baseline per-sample time in seconds.
    pub baseline_per_sample: f64,
    /// Per-sample time with the knob improved.
    pub improved_per_sample: f64,
}

impl SensitivityResult {
    /// Fractional speedup: `baseline/improved − 1` (0 = knob is irrelevant).
    pub fn speedup(&self) -> f64 {
        self.baseline_per_sample / self.improved_per_sample - 1.0
    }
}

/// The scenario under analysis, borrowing the same inputs the estimator
/// takes.
#[derive(Debug, Clone)]
pub struct SensitivityAnalysis<'a> {
    model: &'a TransformerModel,
    accel: &'a AcceleratorSpec,
    system: &'a SystemSpec,
    parallelism: &'a Parallelism,
    precision: Precision,
    efficiency: EfficiencyModel,
    options: EngineOptions,
}

impl<'a> SensitivityAnalysis<'a> {
    /// Analyze the given scenario with default precision/efficiency/options.
    pub fn new(
        model: &'a TransformerModel,
        accel: &'a AcceleratorSpec,
        system: &'a SystemSpec,
        parallelism: &'a Parallelism,
    ) -> Self {
        SensitivityAnalysis {
            model,
            accel,
            system,
            parallelism,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            options: EngineOptions::default(),
        }
    }

    /// Override the efficiency model.
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Override the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    fn per_sample(
        &self,
        accel: &AcceleratorSpec,
        system: &SystemSpec,
        training: &TrainingConfig,
    ) -> Result<f64> {
        let e = Estimator::new(self.model, accel, system, self.parallelism)
            .with_precision(self.precision)
            .with_efficiency(self.efficiency.clone())
            .with_options(self.options)
            .estimate(training)?;
        Ok(e.time_per_iteration.get() / training.global_batch() as f64)
    }

    /// Improve one knob by `factor` and measure the per-sample speedup.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (the scaled configurations remain valid
    /// by construction).
    pub fn probe(
        &self,
        knob: Knob,
        factor: f64,
        training: &TrainingConfig,
    ) -> Result<SensitivityResult> {
        assert!(factor > 1.0, "improvement factor must exceed 1");
        let baseline = self.per_sample(self.accel, self.system, training)?;
        let scale_link = |l: Link, bw: f64, lat: f64| {
            Link::new(l.latency_s * lat, l.bandwidth_bits_per_sec * bw)
                .with_topology(l.topology)
        };
        let (accel, system, training_mod);
        let improved = match knob {
            Knob::IntraBandwidth => {
                system = self
                    .system
                    .clone()
                    .with_intra(scale_link(self.system.intra(), factor, 1.0));
                self.per_sample(self.accel, &system, training)?
            }
            Knob::InterBandwidth => {
                system = self
                    .system
                    .clone()
                    .with_inter(scale_link(self.system.inter(), factor, 1.0));
                self.per_sample(self.accel, &system, training)?
            }
            Knob::IntraLatency => {
                system = self
                    .system
                    .clone()
                    .with_intra(scale_link(self.system.intra(), 1.0, 1.0 / factor));
                self.per_sample(self.accel, &system, training)?
            }
            Knob::InterLatency => {
                system = self
                    .system
                    .clone()
                    .with_inter(scale_link(self.system.inter(), 1.0, 1.0 / factor));
                self.per_sample(self.accel, &system, training)?
            }
            Knob::Frequency => {
                accel = AcceleratorSpec::builder(self.accel.name())
                    .frequency_hz(self.accel.frequency_hz() * factor)
                    .cores(self.accel.num_cores())
                    .mac_units(
                        self.accel.mac_units_per_core(),
                        self.accel.mac_unit_width(),
                        self.accel.mac_unit_bits(),
                    )
                    .nonlin_units(
                        self.accel.nonlin_units(),
                        self.accel.nonlin_unit_width(),
                        self.accel.nonlin_unit_bits(),
                    )
                    .memory(
                        self.accel.memory_bytes(),
                        self.accel.memory_bandwidth_bytes_per_sec(),
                    )
                    .offchip_bandwidth_bits_per_sec(self.accel.offchip_bandwidth_bits_per_sec())
                    .power(self.accel.tdp_watts(), self.accel.idle_power_fraction())
                    .build()?;
                self.per_sample(&accel, self.system, training)?
            }
            Knob::GlobalBatch => {
                training_mod = TrainingConfig::new(
                    (training.global_batch() as f64 * factor) as usize,
                    training.num_batches(),
                )?;
                self.per_sample(self.accel, self.system, &training_mod)?
            }
        };
        Ok(SensitivityResult {
            knob,
            factor,
            baseline_per_sample: baseline,
            improved_per_sample: improved,
        })
    }

    /// Probe every knob at `factor`, sorted by descending speedup — the
    /// tornado chart.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn tornado(&self, factor: f64, training: &TrainingConfig) -> Result<Vec<SensitivityResult>> {
        let mut out = Vec::with_capacity(Knob::all().len());
        for knob in Knob::all() {
            out.push(self.probe(knob, factor, training)?);
        }
        out.sort_by(|a, b| b.speedup().partial_cmp(&a.speedup()).expect("finite"));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Link;

    fn fixture() -> (TransformerModel, AcceleratorSpec, SystemSpec, Parallelism) {
        let model = TransformerModel::builder("sens")
            .layers(16)
            .hidden_size(1024)
            .heads(16)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("sens-a")
            .frequency_hz(1e9)
            .cores(32)
            .mac_units(4, 128, 8)
            .nonlin_units(32, 8, 32)
            .memory(32e9, 1e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(4, 8, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 8).unwrap();
        let p = Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap();
        (model, accel, system, p)
    }

    #[test]
    fn every_knob_helps_or_is_neutral() {
        let (model, accel, system, p) = fixture();
        let analysis = SensitivityAnalysis::new(&model, &accel, &system, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let training = TrainingConfig::new(256, 1).unwrap();
        for r in analysis.tornado(2.0, &training).unwrap() {
            assert!(
                r.speedup() >= -1e-9,
                "{} must not hurt, speedup {}",
                r.knob.name(),
                r.speedup()
            );
            assert!(r.baseline_per_sample > 0.0 && r.improved_per_sample > 0.0);
        }
    }

    #[test]
    fn frequency_dominates_a_compute_bound_scenario() {
        let (model, accel, system, p) = fixture();
        let analysis = SensitivityAnalysis::new(&model, &accel, &system, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let training = TrainingConfig::new(256, 1).unwrap();
        let tornado = analysis.tornado(2.0, &training).unwrap();
        assert_eq!(tornado[0].knob, Knob::Frequency, "tornado: {tornado:?}");
        // Doubling the clock roughly halves the compute-dominated time.
        assert!(tornado[0].speedup() > 0.5);
    }

    #[test]
    fn inter_bandwidth_dominates_a_comm_bound_scenario() {
        let (_, accel, _, _) = fixture();
        // TP across nodes over thin links: inter bandwidth is the wall.
        let model = TransformerModel::builder("sens-wide")
            .layers(16)
            .hidden_size(1024)
            .heads(32)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(4, 8, Link::new(1e-6, 2.4e12), Link::new(1e-5, 5e9), 1).unwrap();
        let p = Parallelism::builder().tp(8, 4).build().unwrap();
        let analysis = SensitivityAnalysis::new(&model, &accel, &system, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let training = TrainingConfig::new(256, 1).unwrap();
        let tornado = analysis.tornado(2.0, &training).unwrap();
        assert_eq!(tornado[0].knob, Knob::InterBandwidth, "tornado: {tornado:?}");
    }

    #[test]
    fn batch_knob_amortizes_fixed_costs() {
        let (model, accel, system, p) = fixture();
        let analysis = SensitivityAnalysis::new(&model, &accel, &system, &p);
        let training = TrainingConfig::new(64, 1).unwrap();
        let r = analysis.probe(Knob::GlobalBatch, 4.0, &training).unwrap();
        // Bigger batches raise eff(ub) under the default saturating model.
        assert!(r.speedup() > 0.0);
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn factor_below_one_rejected() {
        let (model, accel, system, p) = fixture();
        let analysis = SensitivityAnalysis::new(&model, &accel, &system, &p);
        let _ = analysis.probe(
            Knob::Frequency,
            0.5,
            &TrainingConfig::new(64, 1).unwrap(),
        );
    }
}
