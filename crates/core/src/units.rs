//! Small unit newtypes used in the public API.
//!
//! Internal equation code works in plain `f64` seconds / bits / operations;
//! the public [`Estimate`](crate::engine::Estimate) surfaces durations as
//! [`Seconds`], which knows how to convert and pretty-print itself at
//! human scales (the paper reports training times in days).

use serde::{Deserialize, Serialize};

/// A non-negative duration in seconds.
///
/// # Example
///
/// ```
/// use amped_core::units::Seconds;
/// let t = Seconds::new(90.0 * 86_400.0);
/// assert!((t.days() - 90.0).abs() < 1e-12);
/// assert_eq!(t.to_string(), "90.00 d");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// Wrap a duration.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite — model outputs must be
    /// physical durations.
    pub fn new(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        Seconds(secs)
    }

    /// The zero duration.
    pub fn zero() -> Self {
        Seconds(0.0)
    }

    /// The raw value in seconds.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Duration in hours.
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Duration in days.
    pub fn days(self) -> f64 {
        self.0 / 86_400.0
    }

    /// Duration in milliseconds.
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl From<Seconds> for f64 {
    fn from(s: Seconds) -> f64 {
        s.0
    }
}

impl std::ops::Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl std::iter::Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl std::fmt::Display for Seconds {
    /// Renders at the most natural scale: `µs`, `ms`, `s`, `min`, `h` or `d`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.0;
        if s == 0.0 {
            write!(f, "0 s")
        } else if s < 1e-3 {
            write!(f, "{:.2} µs", s * 1e6)
        } else if s < 1.0 {
            write!(f, "{:.2} ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{s:.2} s")
        } else if s < 2.0 * 3600.0 {
            write!(f, "{:.2} min", s / 60.0)
        } else if s < 48.0 * 3600.0 {
            write!(f, "{:.2} h", s / 3600.0)
        } else {
            write!(f, "{:.2} d", s / 86_400.0)
        }
    }
}

/// Format a quantity of bytes at a human scale (KiB/MiB/GiB/TiB).
///
/// # Example
///
/// ```
/// use amped_core::units::format_bytes;
/// assert_eq!(format_bytes(32.0 * 1024.0 * 1024.0 * 1024.0), "32.00 GiB");
/// ```
pub fn format_bytes(bytes: f64) -> String {
    const UNITS: &[(f64, &str)] = &[
        (1024f64 * 1024.0 * 1024.0 * 1024.0, "TiB"),
        (1024f64 * 1024.0 * 1024.0, "GiB"),
        (1024f64 * 1024.0, "MiB"),
        (1024f64, "KiB"),
    ];
    for &(scale, unit) in UNITS {
        if bytes >= scale {
            return format!("{:.2} {unit}", bytes / scale);
        }
    }
    format!("{bytes:.0} B")
}

/// Format an operation count at engineering scale (K/M/G/T/P).
///
/// # Example
///
/// ```
/// use amped_core::units::format_count;
/// assert_eq!(format_count(1.75e14), "175.00 T");
/// ```
pub fn format_count(count: f64) -> String {
    const UNITS: &[(f64, &str)] = &[
        (1e15, "P"),
        (1e12, "T"),
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "K"),
    ];
    for &(scale, unit) in UNITS {
        if count >= scale {
            return format!("{:.2} {unit}", count / scale);
        }
    }
    format!("{count:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_picks_natural_scale() {
        assert_eq!(Seconds::new(0.0).to_string(), "0 s");
        assert_eq!(Seconds::new(2.5e-6).to_string(), "2.50 µs");
        assert_eq!(Seconds::new(0.25).to_string(), "250.00 ms");
        assert_eq!(Seconds::new(42.0).to_string(), "42.00 s");
        assert_eq!(Seconds::new(600.0).to_string(), "10.00 min");
        assert_eq!(Seconds::new(3.0 * 3600.0).to_string(), "3.00 h");
        assert_eq!(Seconds::new(7.0 * 86_400.0).to_string(), "7.00 d");
    }

    #[test]
    fn conversions_are_consistent() {
        let t = Seconds::new(86_400.0);
        assert!((t.days() - 1.0).abs() < 1e-12);
        assert!((t.hours() - 24.0).abs() < 1e-12);
        assert!((t.millis() - 86_400_000.0).abs() < 1e-6);
        assert_eq!(f64::from(t), 86_400.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        Seconds::new(-1.0);
    }

    #[test]
    fn sum_and_add() {
        let total: Seconds = [1.0, 2.0, 3.0].into_iter().map(Seconds::new).sum();
        assert_eq!(total.get(), 6.0);
        assert_eq!((Seconds::new(1.0) + Seconds::new(0.5)).get(), 1.5);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(2048.0), "2.00 KiB");
        assert_eq!(format_bytes(1.5 * 1024.0 * 1024.0), "1.50 MiB");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(format_count(999.0), "999");
        assert_eq!(format_count(1e6), "1.00 M");
        assert_eq!(format_count(3.12e14), "312.00 T");
    }
}
