//! Property tests over the op-count algebra — the arithmetic Eq. 2 feeds
//! on must behave like the closed forms it implements.

use amped_core::counts::LayerCounts;
use amped_core::{metrics, LayerKind, MoeConfig, TransformerModel};
use proptest::prelude::*;

fn model_strategy() -> impl Strategy<Value = TransformerModel> {
    (
        1usize..=32,  // layers
        1usize..=16,  // heads
        1usize..=64,  // hidden per head
        5usize..=10,  // log2 seq
        100usize..=60_000,
        prop::option::of(2usize..=32), // experts
    )
        .prop_map(|(layers, heads, per_head, log_seq, vocab, experts)| {
            let mut b = TransformerModel::builder("prop");
            b.layers(layers)
                .hidden_size(heads * per_head)
                .heads(heads)
                .seq_len(1 << log_seq)
                .vocab_size(vocab);
            if let Some(e) = experts {
                b.moe(MoeConfig::glam(e));
            }
            b.build().expect("valid model")
        })
}

proptest! {
    #[test]
    fn macs_are_exactly_linear_in_batch(model in model_strategy(), batch in 1u32..=512) {
        let b = batch as f64;
        for kind in [LayerKind::Dense, LayerKind::Head] {
            let c1 = LayerCounts::for_layer(&model, kind, 1.0);
            let cb = LayerCounts::for_layer(&model, kind, b);
            prop_assert!((cb.macs_fwd - b * c1.macs_fwd).abs() <= 1e-9 * cb.macs_fwd);
            prop_assert!((cb.nonlin_fwd - b * c1.nonlin_fwd).abs() <= 1e-9 * cb.nonlin_fwd);
            prop_assert_eq!(cb.weights, c1.weights);
            prop_assert_eq!(cb.weights_expert, c1.weights_expert);
        }
    }

    #[test]
    fn dense_layer_macs_match_the_megatron_form(model in model_strategy(), batch in 1u32..=64) {
        let b = batch as f64;
        let (h, s) = (model.hidden_size() as f64, model.seq_len() as f64);
        let c = LayerCounts::for_layer(&model, LayerKind::Dense, b);
        let expect = 12.0 * b * s * h * h + 2.0 * b * s * s * h;
        prop_assert!((c.macs_fwd - expect).abs() <= 1e-9 * expect);
    }

    #[test]
    fn layerwise_flops_track_the_closed_form_for_dense_models(
        layers in 4usize..=64,
        heads in 4usize..=32,
        per_head in 32usize..=128,
        batch in 1usize..=128,
    ) {
        let h = heads * per_head;
        let model = TransformerModel::builder("closed")
            .layers(layers)
            .hidden_size(h)
            .heads(heads)
            .seq_len(512)
            .vocab_size(32_000)
            .build()
            .expect("valid");
        let ours = metrics::model_flops_per_iteration(&model, batch, true);
        let theirs =
            metrics::megatron_closed_form_flops(layers, h, 512, 32_000, batch);
        let rel = (ours - theirs).abs() / theirs;
        // The closed form drops small terms (softmax MACs, biases, LN).
        prop_assert!(rel < 0.06, "relative difference {rel}");
    }

    #[test]
    fn total_parameters_bound_activated(model in model_strategy()) {
        let total = model.total_parameters();
        let active = model.activated_parameters();
        prop_assert!(total >= active - 1e-6);
        prop_assert!(active > 0.0);
        if model.moe().is_none() {
            prop_assert!((total - active).abs() <= 1e-9 * total);
        }
    }

    #[test]
    fn stack_counts_are_consistent(model in model_strategy(), batch in 1u32..=32) {
        let stack = LayerCounts::for_stack(&model, batch as f64);
        prop_assert_eq!(stack.len(), model.num_layers() + 1); // + head
        let moe_rows = stack.iter().filter(|(k, _)| *k == LayerKind::Moe).count();
        prop_assert_eq!(moe_rows, model.num_moe_layers());
        for (kind, c) in &stack {
            if *kind != LayerKind::Moe {
                prop_assert_eq!(c.weights_expert, 0.0);
                prop_assert_eq!(c.act_elems_moe, 0.0);
            } else {
                prop_assert!(c.weights_expert > 0.0);
                prop_assert!(c.weights_expert < c.weights);
            }
        }
        let total: f64 = stack.iter().map(|(_, c)| c.macs_fwd).sum();
        prop_assert!((LayerCounts::total_macs_fwd(&model, batch as f64) - total).abs()
            <= 1e-9 * total);
    }
}
