//! Property tests over the checkpoint/restart expected-time model.
//!
//! Two laws the Young/Daly analysis promises, checked over a broad random
//! parameter space:
//!
//! * the closed-form optimal interval `sqrt(2 C M)` really minimizes the
//!   expected time — perturbing it in either direction never does better;
//! * more reliable hardware never hurts — expected time is monotonically
//!   nonincreasing in the unit MTBF.

use amped_core::ResilienceParams;
use proptest::prelude::*;

/// A parameter space where the first-order model is meaningful:
/// `C ≪ τ* ≪ M_sys` holds across the generated range.
fn params_strategy() -> impl Strategy<Value = (f64, usize, f64, f64, f64)> {
    (
        1e5f64..1e8,   // unit MTBF, seconds (~1 day to ~3 years)
        1usize..=512,  // units
        1e-1f64..1e3,  // checkpoint write cost, seconds
        0f64..3600.0,  // restart cost, seconds
        1e3f64..1e8,   // fault-free run time, seconds
    )
}

proptest! {
    #[test]
    fn young_daly_interval_is_never_beaten_by_a_perturbation(
        (mtbf, units, ckpt, restart, fault_free) in params_strategy(),
        raw_perturbation in -0.5f64..=0.5,
    ) {
        // Keep the perturbation bounded away from zero (the shimmed
        // proptest has no prop_assume!).
        let perturbation = if raw_perturbation.abs() < 1e-3 {
            0.25
        } else {
            raw_perturbation
        };
        let params = ResilienceParams::new(mtbf, units)
            .unwrap()
            .with_checkpoint_cost(ckpt)
            .with_restart(restart);
        let optimal = params.young_daly_interval_s();
        prop_assert!(optimal > 0.0);
        let at_optimal = params.expected_time_s(fault_free, optimal);
        let perturbed = optimal * (1.0 + perturbation);
        let at_perturbed = params.expected_time_s(fault_free, perturbed);
        // Strictly worse up to float round-off.
        prop_assert!(
            at_optimal <= at_perturbed * (1.0 + 1e-12),
            "tau*={optimal} gives {at_optimal}, tau={perturbed} gives {at_perturbed}"
        );
    }

    #[test]
    fn expected_time_is_nonincreasing_in_mtbf(
        (mtbf, units, ckpt, restart, fault_free) in params_strategy(),
        improvement in 1.0f64..=100.0,
    ) {
        let worse = ResilienceParams::new(mtbf, units)
            .unwrap()
            .with_checkpoint_cost(ckpt)
            .with_restart(restart);
        let better = ResilienceParams::new(mtbf * improvement, units)
            .unwrap()
            .with_checkpoint_cost(ckpt)
            .with_restart(restart);
        // Each at its own optimal interval (the operator re-tunes)...
        let t_worse = worse.report(fault_free).unwrap().expected_s;
        let t_better = better.report(fault_free).unwrap().expected_s;
        prop_assert!(t_better <= t_worse * (1.0 + 1e-12));
        // ...and at any single shared interval too.
        let shared = worse.young_daly_interval_s();
        prop_assert!(
            better.expected_time_s(fault_free, shared)
                <= worse.expected_time_s(fault_free, shared) * (1.0 + 1e-12)
        );
    }

    #[test]
    fn expected_time_never_undercuts_the_fault_free_time(
        (mtbf, units, ckpt, restart, fault_free) in params_strategy(),
    ) {
        let report = ResilienceParams::new(mtbf, units)
            .unwrap()
            .with_checkpoint_cost(ckpt)
            .with_restart(restart)
            .report(fault_free)
            .unwrap();
        prop_assert!(report.expected_s >= fault_free);
        prop_assert!(report.goodput() <= 1.0 + 1e-12);
        prop_assert!(report.slowdown() >= 1.0 - 1e-12);
    }
}
