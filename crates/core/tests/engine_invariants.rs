//! Engine-knob invariants: every tuning factor must act exactly where and
//! how its documentation says.

use amped_core::prelude::*;

fn fixture() -> (TransformerModel, AcceleratorSpec, SystemSpec) {
    let model = TransformerModel::builder("inv")
        .layers(16)
        .hidden_size(1024)
        .heads(16)
        .seq_len(256)
        .vocab_size(8000)
        .build()
        .unwrap();
    let accel = AcceleratorSpec::builder("inv-a")
        .frequency_hz(1e9)
        .cores(32)
        .mac_units(4, 128, 8)
        .nonlin_units(32, 8, 32)
        .memory(32e9, 1e12)
        .build()
        .unwrap();
    let system = SystemSpec::new(4, 8, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 8).unwrap();
    (model, accel, system)
}

fn estimate(opts: EngineOptions, p: &Parallelism, batch: usize) -> Estimate {
    let (model, accel, system) = fixture();
    Estimator::new(&model, &accel, &system, p)
        .with_efficiency(EfficiencyModel::Constant(0.5))
        .with_options(opts)
        .estimate(&TrainingConfig::new(batch, 1).unwrap())
        .unwrap()
}

#[test]
fn backward_factor_scales_backward_compute_linearly() {
    let p = Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap();
    let base = estimate(EngineOptions::default(), &p, 128);
    let doubled = estimate(
        EngineOptions {
            backward_compute_factor: 4.0,
            backward_nonlin_factor: 4.0,
            ..Default::default()
        },
        &p,
        128,
    );
    let ratio = doubled.breakdown.compute_backward / base.breakdown.compute_backward;
    assert!((ratio - 2.0).abs() < 1e-9, "ratio = {ratio}");
    assert_eq!(doubled.breakdown.compute_forward, base.breakdown.compute_forward);
}

#[test]
fn weight_update_factor_scales_only_the_update() {
    let p = Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap();
    let base = estimate(EngineOptions::default(), &p, 128);
    let heavy = estimate(
        EngineOptions {
            weight_update_factor: 5.0,
            ..Default::default()
        },
        &p,
        128,
    );
    assert!((heavy.breakdown.weight_update / base.breakdown.weight_update - 5.0).abs() < 1e-9);
    assert_eq!(heavy.breakdown.compute_total() - heavy.breakdown.weight_update,
               base.breakdown.compute_total() - base.breakdown.weight_update);
}

#[test]
fn backward_comm_factor_scales_fwd_bwd_communication() {
    let p = Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap();
    let base = estimate(EngineOptions::default(), &p, 128); // factor 1: fwd+bwd = 2x fwd
    let silent = estimate(
        EngineOptions {
            backward_comm_factor: 0.0,
            ..Default::default()
        },
        &p,
        128,
    );
    let ratio = base.breakdown.tp_comm_intra / silent.breakdown.tp_comm_intra;
    assert!((ratio - 2.0).abs() < 1e-9, "ratio = {ratio}");
    // DP gradient sync is not forward/backward communication.
    assert_eq!(base.breakdown.dp_comm_inter, silent.breakdown.dp_comm_inter);
}

#[test]
fn zero_stage_two_reduce_scatters_the_gradients() {
    // Ring reduce-scatter moves half of a ring all-reduce.
    let plain = Parallelism::builder().tp(8, 1).dp(1, 4).build().unwrap();
    let zero2 = Parallelism::builder()
        .tp(8, 1)
        .dp(1, 4)
        .zero(ZeroConfig::stage(ZeroStage::Gradients, 0.0))
        .build()
        .unwrap();
    let base = estimate(EngineOptions::default(), &plain, 128);
    let sharded = estimate(EngineOptions::default(), &zero2, 128);
    let ratio = base.breakdown.dp_comm_inter / sharded.breakdown.dp_comm_inter;
    assert!(ratio > 1.8 && ratio < 2.2, "ratio = {ratio}");
}

#[test]
fn bubble_vanishes_at_ratio_zero() {
    let naive = Parallelism::builder().tp(4, 1).pp(2, 1).dp(1, 4).build().unwrap();
    let overlapped = Parallelism::builder()
        .tp(4, 1)
        .pp(2, 1)
        .dp(1, 4)
        .bubble_ratio(0.0)
        .build()
        .unwrap();
    let base = estimate(EngineOptions::default(), &naive, 128);
    let none = estimate(EngineOptions::default(), &overlapped, 128);
    assert!(base.breakdown.bubble > 0.0);
    assert_eq!(none.breakdown.bubble, 0.0);
    assert_eq!(base.breakdown.compute_total(), none.breakdown.compute_total());
}

#[test]
fn nic_aggregation_caps_at_the_node_total() {
    // With tp_intra = accels_per_node the TP-inter stream may use every
    // NIC, but never more than the node has.
    let (model, accel, _) = fixture();
    let few_nics =
        SystemSpec::new(4, 8, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 2).unwrap();
    let many_nics =
        SystemSpec::new(4, 8, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 8).unwrap();
    let p = Parallelism::builder().tp(8, 2).dp(1, 2).build().unwrap();
    let run = |sys: &SystemSpec| {
        Estimator::new(&model, &accel, sys, &p)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .estimate(&TrainingConfig::new(128, 1).unwrap())
            .unwrap()
            .breakdown
            .tp_comm_inter
    };
    let few = run(&few_nics);
    let many = run(&many_nics);
    // 2 NICs vs 8 NICs: the aggregated stream is 4x slower (latency terms
    // aside), never better.
    assert!(few > 3.0 * many, "few = {few}, many = {many}");
}

#[test]
fn paper_eq8_bubble_is_stack_length_smaller() {
    let p = Parallelism::builder().tp(4, 1).pp(2, 1).dp(1, 4).build().unwrap();
    let standard = estimate(EngineOptions::default(), &p, 128);
    let literal = estimate(
        EngineOptions {
            bubble_accounting: BubbleAccounting::PaperEq8,
            ..Default::default()
        },
        &p,
        128,
    );
    // Compute-dominated scenario: the ratio approaches the 17-entry stack.
    let ratio = standard.breakdown.bubble / literal.breakdown.bubble;
    assert!(ratio > 10.0 && ratio < 17.5, "ratio = {ratio}");
}
