//! Criterion benches of the design-space exploration engine: enumeration
//! and full ranked searches at two system sizes.
//!
//! `search/rank_all_16x8` exercises the default engine (memoized
//! estimation, worker pool sized to the host); `search/rank_all_16x8_serial`
//! pins the original single-thread, uncached path so the speedup of the
//! optimised path stays measurable — `cargo bin bench_search` records the
//! same comparison into `BENCH_search.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::TrainingConfig;
use amped_search::{enumerate_mappings, EnumerationOptions, SearchEngine};

fn bench_enumeration(c: &mut Criterion) {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    c.bench_function("search/enumerate_128x8", |b| {
        b.iter(|| {
            black_box(enumerate_mappings(
                black_box(&system),
                black_box(&model),
                &EnumerationOptions::default(),
            ))
            .len()
        })
    });
}

fn bench_full_search(c: &mut Criterion) {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let engine =
        SearchEngine::new(&model, &a100, &system).with_efficiency(efficiency::case_study());
    c.bench_function("search/rank_all_16x8", |b| {
        b.iter(|| black_box(engine.search(black_box(&training)).expect("searches")).len())
    });
    let serial = engine
        .clone()
        .with_memoization(false)
        .with_parallelism(1);
    c.bench_function("search/rank_all_16x8_serial", |b| {
        b.iter(|| black_box(serial.search(black_box(&training)).expect("searches")).len())
    });
    let pruned = engine.clone().with_pruning(true);
    c.bench_function("search/rank_all_16x8_pruned", |b| {
        b.iter(|| black_box(pruned.search(black_box(&training)).expect("searches")).len())
    });
}

criterion_group!(benches, bench_enumeration, bench_full_search);
criterion_main!(benches);
