//! Criterion benches of the discrete-event simulator: event throughput for
//! DP and pipelined iterations, and collective-schedule generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::{MicrobatchPolicy, Parallelism};
use amped_sim::{PipelineSchedule, SimConfig};
use amped_topo::Schedule;

fn bench_dp_iteration(c: &mut Criterion) {
    let model = models::mingpt_85m();
    let v100 = accelerators::v100();
    let system = systems::hgx2(8);
    let p = Parallelism::data_parallel_intra(8).expect("valid");
    c.bench_function("sim/dp8_iteration", |b| {
        b.iter(|| {
            let r = SimConfig::new(&model, &v100, &system, &p)
                .with_efficiency(efficiency::v100_mingpt())
                .simulate_iteration(black_box(64))
                .expect("simulates");
            black_box(r.iteration_time)
        })
    });
}

fn bench_pipeline_iteration(c: &mut Criterion) {
    let model = models::mingpt_pp();
    let v100 = accelerators::v100();
    let system = systems::hgx2(16);
    let p = Parallelism::builder()
        .pp(16, 1)
        .microbatches(MicrobatchPolicy::Explicit(32))
        .build()
        .expect("valid");
    c.bench_function("sim/pp16_x32ub_iteration", |b| {
        b.iter(|| {
            let r = SimConfig::new(&model, &v100, &system, &p)
                .with_efficiency(efficiency::v100_mingpt())
                .with_schedule(PipelineSchedule::OneFOneB)
                .simulate_iteration(black_box(64))
                .expect("simulates");
            black_box(r.iteration_time)
        })
    });
}

fn bench_ring_schedule(c: &mut Criterion) {
    c.bench_function("topo/ring_allreduce_schedule_64", |b| {
        b.iter(|| black_box(Schedule::ring_all_reduce(black_box(64), 1 << 28)).total_bytes())
    });
}

criterion_group!(
    benches,
    bench_dp_iteration,
    bench_pipeline_iteration,
    bench_ring_schedule
);
criterion_main!(benches);
