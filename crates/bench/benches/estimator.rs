//! Criterion benches of the analytical engine: a single estimate, a tuned
//! (microbatch-swept) estimate, and the closed-form FLOP counting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use amped_bench::{case_study_estimate, tuned_case_study_estimate};
use amped_configs::{accelerators, models, systems};
use amped_core::{metrics, AnalyticalBackend, CostBackend, Parallelism, Scenario, TrainingConfig};
use amped_search::{enumerate_mappings, EnumerationOptions};

fn bench_single_estimate(c: &mut Criterion) {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .tp(8, 1)
        .pp(1, 8)
        .dp(1, 16)
        .build()
        .expect("valid");
    c.bench_function("estimate/megatron145b_1024gpu", |b| {
        b.iter(|| {
            let e = case_study_estimate(
                black_box(&model),
                black_box(&system),
                black_box(&p),
                8192,
            )
            .expect("estimates");
            black_box(e.tflops_per_gpu)
        })
    });
}

fn bench_tuned_estimate(c: &mut Criterion) {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .tp(8, 1)
        .pp(1, 8)
        .dp(1, 16)
        .build()
        .expect("valid");
    c.bench_function("estimate/tuned_microbatch_sweep", |b| {
        b.iter(|| {
            let e = tuned_case_study_estimate(
                black_box(&model),
                black_box(&system),
                black_box(&p),
                8192,
            )
            .expect("estimates");
            black_box(e.days())
        })
    });
}

/// The batched fast path against the one-at-a-time loop over the same
/// candidate grid: every mapping of the 16x8 cluster, priced through
/// `CostBackend::evaluate` per candidate versus one `evaluate_many` call.
/// The two produce bit-identical estimates (pinned by the engine's tests);
/// this pair measures what the batching buys.
fn bench_scalar_vs_batched(c: &mut Criterion) {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(16, 8);
    let mappings = enumerate_mappings(&system, &model, &EnumerationOptions::default());
    assert!(!mappings.is_empty());
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let scenario = Scenario::new(model, accelerators::a100(), system, mappings[0]);
    c.bench_function("scalar_vs_batched/evaluate_loop", |b| {
        b.iter(|| {
            let mut priced = 0usize;
            for p in &mappings {
                let mut s = scenario.clone();
                s.parallelism = *p;
                if AnalyticalBackend.evaluate(black_box(&s), &training).is_ok() {
                    priced += 1;
                }
            }
            black_box(priced)
        })
    });
    c.bench_function("scalar_vs_batched/evaluate_many", |b| {
        b.iter(|| {
            let results =
                AnalyticalBackend.evaluate_many(black_box(&scenario), &mappings, &training);
            black_box(results.iter().filter(|r| r.is_ok()).count())
        })
    });
}

fn bench_model_flops(c: &mut Criterion) {
    let model = models::gpt3_175b();
    c.bench_function("metrics/model_flops_gpt3", |b| {
        b.iter(|| black_box(metrics::model_flops_per_iteration(black_box(&model), 1536, true)))
    });
}

criterion_group!(
    benches,
    bench_single_estimate,
    bench_tuned_estimate,
    bench_scalar_vs_batched,
    bench_model_flops
);
criterion_main!(benches);
