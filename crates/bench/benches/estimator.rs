//! Criterion benches of the analytical engine: a single estimate, a tuned
//! (microbatch-swept) estimate, and the closed-form FLOP counting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use amped_bench::{case_study_estimate, tuned_case_study_estimate};
use amped_configs::{models, systems};
use amped_core::{metrics, Parallelism};

fn bench_single_estimate(c: &mut Criterion) {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .tp(8, 1)
        .pp(1, 8)
        .dp(1, 16)
        .build()
        .expect("valid");
    c.bench_function("estimate/megatron145b_1024gpu", |b| {
        b.iter(|| {
            let e = case_study_estimate(
                black_box(&model),
                black_box(&system),
                black_box(&p),
                8192,
            )
            .expect("estimates");
            black_box(e.tflops_per_gpu)
        })
    });
}

fn bench_tuned_estimate(c: &mut Criterion) {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .tp(8, 1)
        .pp(1, 8)
        .dp(1, 16)
        .build()
        .expect("valid");
    c.bench_function("estimate/tuned_microbatch_sweep", |b| {
        b.iter(|| {
            let e = tuned_case_study_estimate(
                black_box(&model),
                black_box(&system),
                black_box(&p),
                8192,
            )
            .expect("estimates");
            black_box(e.days())
        })
    });
}

fn bench_model_flops(c: &mut Criterion) {
    let model = models::gpt3_175b();
    c.bench_function("metrics/model_flops_gpt3", |b| {
        b.iter(|| black_box(metrics::model_flops_per_iteration(black_box(&model), 1536, true)))
    });
}

criterion_group!(
    benches,
    bench_single_estimate,
    bench_tuned_estimate,
    bench_model_flops
);
criterion_main!(benches);
