//! Records service-level telemetry into `BENCH_serve.json` at the repo
//! root: boots an in-process `amped-serve` server on an ephemeral port,
//! replays concurrent mixed traffic (estimate/search/sweep/resilience)
//! through the load-test driver, and writes the versioned report —
//! per-endpoint latency quantiles, request rate, error/backpressure
//! rates, and the measured cache hit rate. Run with
//! `cargo run --release -p amped-bench --bin bench_serve`.

use amped_serve::{LoadTestConfig, ServeConfig, Server};

fn main() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        handle_sigint: false,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    let config = LoadTestConfig {
        addr: addr.to_string(),
        clients: 4,
        requests_per_client: 8,
        ..LoadTestConfig::default()
    };
    let report = amped_serve::loadtest::run(&config).expect("loadtest runs");

    handle.shutdown();
    let summary = thread
        .join()
        .expect("server thread joins")
        .expect("clean shutdown");

    let text = serde_json::to_string_pretty(&report.to_value()).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, format!("{text}\n")).expect("writes BENCH_serve.json");
    println!("{text}");
    println!(
        "{} requests at {:.1} req/s, error rate {:.1}%, cache hit rate {:.1}%; server: {summary}",
        report.requests,
        report.req_per_sec,
        report.error_rate * 100.0,
        report.cache_hit_rate * 100.0
    );
    assert_eq!(report.error_rate, 0.0, "benchmark traffic must all succeed");
}
