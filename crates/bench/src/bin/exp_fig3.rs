//! Fig. 3: training-time breakdown for two example configurations of
//! Megatron-145B on 1024 A100s (128 nodes × 8), both with DPintra = 8 and
//! DPinter = 64: config A adds PPinter = 2, config B adds TPinter = 2.
//!
//! The paper's observation: the pipeline-bubble time in config A is
//! negligible next to the inter-node TP communication in config B.

use amped_bench::{case_study_training, tuned_case_study_estimate};
use amped_configs::{models, systems};
use amped_core::Parallelism;
use amped_report::{BarChart, Table};

fn main() {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let batch = 8192;

    let config_a = Parallelism::builder().dp(8, 64).pp(1, 2).build().expect("valid");
    let config_b = Parallelism::builder().dp(8, 64).tp(1, 2).build().expect("valid");

    let est_a = tuned_case_study_estimate(&model, &system, &config_a, batch).expect("estimates");
    let est_b = tuned_case_study_estimate(&model, &system, &config_b, batch).expect("estimates");
    let batches = case_study_training(batch).num_batches() as f64;

    let mut t = Table::new(["component", "A: PPinter=2 (days)", "B: TPinter=2 (days)"]);
    let mut csv_chart = BarChart::new("per-component training time (days)", "d");
    for ((name, a), (_, b)) in est_a
        .breakdown
        .components()
        .iter()
        .zip(est_b.breakdown.components())
    {
        let (da, db) = (a * batches / 86_400.0, b * batches / 86_400.0);
        if da == 0.0 && db == 0.0 {
            continue;
        }
        t.row([name.to_string(), format!("{da:.2}"), format!("{db:.2}")]);
        csv_chart.bar(format!("B {name}"), db);
    }
    t.row([
        "TOTAL".to_string(),
        format!("{:.2}", est_a.days()),
        format!("{:.2}", est_b.days()),
    ]);
    println!("== Fig. 3: training-time breakdown, Megatron-145B, 1024 A100s, batch {batch} ==");
    println!("(config A: DP 8x64 + PPinter 2; config B: DP 8x64 + TPinter 2)\n");
    println!("{t}");
    println!("\n{csv_chart}");

    // Structural claims of the figure. Note on the paper's wording: its
    // literal Eq. 8 carries an extra 1/L on the bubble's compute term, which
    // is what makes config A's bubble "negligible" in its Fig. 3; we use the
    // dimensionally consistent bubble (DESIGN.md note 1 — the form the
    // paper's own Fig. 2b validation requires), under which the bubble is a
    // real cost. The communication structure the figure illustrates is
    // unchanged:
    // (a) config B's inter-node TP all-reduce dominates its communication
    //     and exceeds config A's entire communication budget;
    let comm_a = est_a.breakdown.comm_total() * batches;
    let comm_b = est_b.breakdown.comm_total() * batches;
    println!(
        "\nconfig A communication: {:.2} d   config B communication: {:.2} d",
        comm_a / 86_400.0,
        comm_b / 86_400.0,
    );
    assert!(comm_b > 2.0 * comm_a, "TP-inter must dominate communication");
    assert!(
        est_b.breakdown.tp_comm_inter > est_b.breakdown.dp_comm_intra
            && est_b.breakdown.tp_comm_inter > est_b.breakdown.dp_comm_inter
            && est_b.breakdown.tp_comm_inter > est_b.breakdown.pp_comm,
        "inter-node TP must be config B's largest communication component"
    );
    // (b) config A's only idle time is the pipeline bubble; config B has
    //     none.
    assert!(est_a.breakdown.bubble > 0.0);
    assert_eq!(est_b.breakdown.bubble, 0.0);

    amped_bench::write_result_file("fig3.csv", &t.to_csv());
}
