//! Fig. 11 (case study III): optical communication substrates for training
//! GLaM (64-expert MoE) on 3072 H100-class accelerators at 8-bit precision,
//! batch 8192, TP inside the node and DP across nodes.
//!
//! Bars: (1) reference — 8 accels/node, NVLink4 + 8× NDR InfiniBand;
//! (2) Opt. 1 — 4×2 optical substrate: every edge accelerator gets a fiber
//! and inter-node bandwidth jumps to the off-chip bandwidth; (3–5) Opt. 2 —
//! 4×4 / 4×8 / 6×8 substrates: more accelerators per node means more TP
//! and a bigger per-replica batch, so higher efficiency; (6–7) Opt. 3 —
//! 6×8 with 2× and 4× off-chip bandwidth.
//!
//! Expected shape: Opt. 1 delivers a large gain by relieving the MoE
//! all-to-all (paper: +42 %), bigger substrates raise the microbatch
//! efficiency (paper: +29 % at 48/node), and off-chip scaling keeps adding
//! until compute dominates (paper total: ~4×; ours: >2× — our model charges
//! the TP all-reduce traffic growth that comes with fewer DP replicas,
//! which the paper's "intra-node TP stays equal" accounting does not, so
//! our Opt. 2 middle is flatter. See EXPERIMENTS.md).

use amped_configs::{accelerators, efficiency, models, optical, systems};
use amped_core::{
    AcceleratorSpec, EngineOptions, Estimate, Estimator, Parallelism, Precision, SystemSpec,
    TrainingConfig,
};
use amped_report::{BarChart, Table};

const BATCH: usize = 8192;
const TOTAL: usize = 3072;

fn estimate(accel: &AcceleratorSpec, system: &SystemSpec) -> Estimate {
    let model = models::glam_64e();
    let per_node = system.accels_per_node();
    let nodes = system.num_nodes();
    let p = Parallelism::builder()
        .tp(per_node, 1)
        .dp(1, nodes)
        .build()
        .expect("valid mapping");
    Estimator::new(&model, accel, system, &p)
        .with_precision(Precision::int8())
        .with_efficiency(efficiency::case_study())
        .with_options(EngineOptions {
            activation_recompute: true,
            ..Default::default()
        })
        .estimate(&TrainingConfig::single_batch(BATCH).expect("valid"))
        .expect("estimates")
}

fn main() {
    println!("case study III: GLaM-64E on {TOTAL} H100s, 8-bit, batch {BATCH}, TP intra + DP inter\n");
    let h100 = accelerators::h100();
    let h100_2x = h100.with_offchip_bandwidth_scaled(2.0);
    let h100_4x = h100.with_offchip_bandwidth_scaled(4.0);

    let bars: Vec<(&str, AcceleratorSpec, SystemSpec)> = vec![
        ("reference 8/node NDR", h100.clone(), systems::h100_ndr_cluster(TOTAL / 8, 8)),
        ("Opt.1 optical 4x2", h100.clone(), optical::optical_cluster(&h100, TOTAL, 4, 2)),
        ("Opt.2 optical 4x4", h100.clone(), optical::optical_cluster(&h100, TOTAL, 4, 4)),
        ("Opt.2 optical 4x8", h100.clone(), optical::optical_cluster(&h100, TOTAL, 4, 8)),
        ("Opt.2 optical 6x8", h100.clone(), optical::optical_cluster(&h100, TOTAL, 6, 8)),
        ("Opt.3 6x8 2x offchip", h100_2x.clone(), optical::optical_cluster(&h100_2x, TOTAL, 6, 8)),
        ("Opt.3 6x8 4x offchip", h100_4x.clone(), optical::optical_cluster(&h100_4x, TOTAL, 6, 8)),
    ];

    let mut t = Table::new([
        "configuration",
        "iter (s)",
        "rel. perf",
        "eff",
        "MoE comm (s)",
        "TP comm (s)",
    ]);
    let mut chart = BarChart::new("relative performance vs reference", "x");
    let mut estimates = Vec::new();
    for (label, accel, system) in &bars {
        let e = estimate(accel, system);
        estimates.push((label.to_string(), e));
    }
    let reference_time = estimates[0].1.time_per_iteration.get();
    let mut rel = Vec::new();
    for (label, e) in &estimates {
        let r = reference_time / e.time_per_iteration.get();
        rel.push(r);
        t.row([
            label.clone(),
            format!("{:.3}", e.time_per_iteration.get()),
            format!("{r:.2}x"),
            format!("{:.0}%", e.efficiency * 100.0),
            format!("{:.3}", e.breakdown.moe_comm),
            format!("{:.3}", e.breakdown.tp_comm_intra),
        ]);
        chart.bar(label.clone(), r);
    }
    println!("{t}");
    println!("\n{chart}");
    amped_bench::write_result_file("fig11.csv", &t.to_csv());

    // ---- the paper's claims ----
    // Opt. 1: big gain from fiber-level inter-node bandwidth (paper: +42%),
    // driven by MoE all-to-all relief (paper: ~6x less MoE comm time).
    let moe_ref = estimates[0].1.breakdown.moe_comm;
    let moe_opt1 = estimates[1].1.breakdown.moe_comm;
    println!(
        "\nOpt.1: {:.2}x overall, MoE comm reduced {:.1}x",
        rel[1],
        moe_ref / moe_opt1.max(1e-12)
    );
    assert!(rel[1] > 1.25, "Opt.1 must deliver a large gain");
    assert!(moe_ref > 6.0 * moe_opt1, "MoE all-to-all must shrink by multiples");

    // Opt. 2: more accelerators per node => more TP, higher efficiency. The
    // gain peaks at 4x4 in our accounting because the per-accelerator TP
    // all-reduce volume grows with the per-replica batch (the tradeoff the
    // paper's "TP stays equal" reading hides).
    println!(
        "Opt.2 (4x4 vs 4x2): {:.2}x on top of Opt.1; efficiency 4x2 {:.0}% -> 6x8 {:.0}%",
        rel[2] / rel[1],
        estimates[1].1.efficiency * 100.0,
        estimates[4].1.efficiency * 100.0
    );
    assert!(rel[2] > rel[1], "a bigger substrate must add performance");
    assert!(
        estimates[4].1.efficiency > estimates[3].1.efficiency
            && estimates[3].1.efficiency > estimates[2].1.efficiency
            && estimates[2].1.efficiency > estimates[1].1.efficiency,
        "efficiency must rise with the per-replica batch"
    );
    assert!(
        estimates[4].1.breakdown.tp_comm_intra > estimates[1].1.breakdown.tp_comm_intra,
        "the TP-traffic tradeoff must be visible"
    );

    // Opt. 3: doubling/quadrupling off-chip bandwidth keeps helping…
    assert!(rel[5] > rel[4] && rel[6] > rel[5]);
    // …but compute starts to dominate (the paper notes compute is unchanged
    // and eventually dominates): the 2x->4x step gains less than Opt.1 did.
    let gain_last = rel[6] / rel[5];
    println!(
        "Opt.3: 2x offchip {:.2}x, 4x offchip {:.2}x (diminishing step {:.2}x)",
        rel[5], rel[6], gain_last
    );

    // Total: approaching the paper's ~4x headline.
    println!("total gain: {:.2}x (paper: ~4x)", rel[6]);
    assert!(
        rel[6] > 1.8,
        "the full optical stack must multiply performance, got {:.2}x",
        rel[6]
    );
    let compute_share = estimates[6].1.breakdown.compute_total()
        / estimates[6].1.breakdown.total();
    println!(
        "compute share of the final system: {:.0}% (compute-dominated)",
        compute_share * 100.0
    );
    assert!(
        compute_share > 0.5,
        "the fully optical system must be compute-dominated"
    );
}
