//! Fig. 1: device-utilization traces during DP and PP validation runs.
//!
//! The paper shows `nvidia-smi` GPU-usage screenshots for minGPT trained
//! with 8-way DP and 4-way PP on an HGX-2 node; here the discrete-event
//! simulator produces the equivalent traces: DP devices are uniformly busy
//! (compute + all-reduce), PP devices show the staggered ramp-up and
//! bubbles of a pipeline.

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::Parallelism;
use amped_sim::{PipelineSchedule, SimConfig};

fn main() {
    let v100 = accelerators::v100();
    let mingpt = models::mingpt_85m();

    println!("== Fig. 1a: minGPT with 8-way data parallelism (one HGX-2 node) ==");
    let sys_dp = systems::hgx2(8);
    let dp = Parallelism::data_parallel_intra(8).expect("valid mapping");
    let r = SimConfig::new(&mingpt, &v100, &sys_dp, &dp)
        .with_efficiency(efficiency::v100_mingpt())
        .simulate_iteration(64)
        .expect("simulates");
    println!("iteration {:.4} s, mean utilization {:.0}%", r.iteration_time, r.mean_utilization * 100.0);
    for d in 0..8 {
        println!("GPU {d} |{}|", r.timeline.ascii_trace(d, 64));
    }

    println!("\n== Fig. 1b: minGPT-PP with 4-way pipeline parallelism ==");
    let sys_pp = systems::hgx2(4);
    let pp = Parallelism::pipeline_parallel_intra(4).expect("valid mapping");
    let r = SimConfig::new(&models::mingpt_pp(), &v100, &sys_pp, &pp)
        .with_efficiency(efficiency::v100_mingpt())
        .with_schedule(PipelineSchedule::GPipe)
        .simulate_iteration(16)
        .expect("simulates");
    println!("iteration {:.4} s, mean utilization {:.0}%", r.iteration_time, r.mean_utilization * 100.0);
    let mut csv = String::from("device,trace\n");
    for d in 0..4 {
        let trace = r.timeline.ascii_trace(d, 64);
        println!("GPU {d} |{trace}|");
        csv.push_str(&format!("{d},\"{trace}\"\n"));
    }

    // Structural assertions matching what Fig. 1 illustrates.
    let first_start = |d: usize| {
        r.timeline
            .entries()
            .iter()
            .filter(|e| e.device == d && e.activity == amped_sim::Activity::Compute)
            .map(|e| e.start_s)
            .fold(f64::INFINITY, f64::min)
    };
    assert!(
        first_start(3) > first_start(0),
        "pipeline stages must ramp up in a staggered fashion"
    );
    amped_bench::write_result_file("fig1_pp_traces.csv", &csv);
}
