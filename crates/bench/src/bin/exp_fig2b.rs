//! Fig. 2b: normalized minGPT-PP training time vs number of pipeline
//! stages, with `N_ub = N_PP` and the paper's 8→16-GPU saturation caused by
//! the last GPU gathering every microbatch (torchgpipe), which caps the
//! global batch.

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::{Estimator, Parallelism, TrainingConfig};
use amped_report::{chart::series_to_csv, ExperimentRecord, Series, Table};
use amped_sim::{PipelineSchedule, SimConfig};

/// Per-stage batch contribution the paper scales with GPU count…
const BATCH_PER_STAGE: usize = 4;
/// …until the last GPU's memory caps the global batch (the paper's
/// implementation gathers all microbatches there), which is what flattens
/// the curve from 8 to 16 GPUs.
const BATCH_CAP: usize = 32;

fn batch_for(pp: usize) -> usize {
    (BATCH_PER_STAGE * pp).min(BATCH_CAP)
}

fn main() {
    let v100 = accelerators::v100();
    let model = models::mingpt_pp();
    let eff = efficiency::v100_mingpt();

    let gpu_counts = [2usize, 4, 8, 16];
    let mut sim_rate = Vec::new(); // samples per second
    let mut model_rate = Vec::new();
    for &pp in &gpu_counts {
        let batch = batch_for(pp);
        let system = systems::hgx2(pp);
        let p = Parallelism::pipeline_parallel_intra(pp).expect("valid mapping");
        let sim = SimConfig::new(&model, &v100, &system, &p)
            .with_efficiency(eff.clone())
            .with_schedule(PipelineSchedule::GPipe)
            .simulate_iteration(batch)
            .expect("simulates");
        sim_rate.push(batch as f64 / sim.iteration_time);
        let est = Estimator::new(&model, &v100, &system, &p)
            .with_efficiency(eff.clone())
            .estimate(&TrainingConfig::single_batch(batch).expect("valid"))
            .expect("estimates");
        model_rate.push(batch as f64 / est.time_per_iteration.get());
    }

    // The paper normalizes training time for a fixed amount of data to the
    // 2-GPU run: normalized time = rate(2) / rate(n).
    let sim_norm: Vec<f64> = sim_rate.iter().map(|r| sim_rate[0] / r).collect();
    let model_norm: Vec<f64> = model_rate.iter().map(|r| model_rate[0] / r).collect();

    let mut t = Table::new(["GPUs", "batch", "experimental (sim)", "predicted (model)", "gap"]);
    let mut record = ExperimentRecord::new("Fig. 2b", "minGPT-PP scaling, simulator vs model");
    for (i, &n) in gpu_counts.iter().enumerate() {
        t.row([
            n.to_string(),
            batch_for(n).to_string(),
            format!("{:.3}", sim_norm[i]),
            format!("{:.3}", model_norm[i]),
            format!("{:+.1}%", (model_norm[i] - sim_norm[i]) / sim_norm[i] * 100.0),
        ]);
        record.compare(format!("{n} GPUs normalized time"), sim_norm[i], model_norm[i]);
    }
    println!("== Fig. 2b: normalized training time vs pipeline GPUs (minGPT-PP) ==");
    println!("{t}");
    println!("\nmax model-vs-simulator gap: {:.1}%", record.max_error() * 100.0);

    assert!(
        record.within(0.12),
        "analytical model diverged from the simulated experiment"
    );
    // Scaling up to 8 GPUs…
    assert!(sim_norm[1] < sim_norm[0] && sim_norm[2] < sim_norm[1]);
    // …then saturation 8→16 because the batch stops growing.
    let saturation = (sim_norm[2] - sim_norm[3]).abs() / sim_norm[2];
    assert!(
        saturation < 0.25,
        "8 to 16 GPUs must show performance saturation, got {saturation:.2}"
    );

    let xs: Vec<f64> = gpu_counts.iter().map(|&n| n as f64).collect();
    let csv = series_to_csv(&[
        Series::new(
            "experimental",
            xs.iter().copied().zip(sim_norm.iter().copied()).collect(),
        ),
        Series::new(
            "predicted",
            xs.iter().copied().zip(model_norm.iter().copied()).collect(),
        ),
    ]);
    amped_bench::write_result_file("fig2b.csv", &csv);
    amped_bench::write_result_file("fig2b.md", &record.to_markdown());
}
