//! Table III: normalized GPipe training throughput on P100/PCIe with 32
//! microbatches — published vs our model, plus a simulator cross-check the
//! paper could not run.

use amped_configs::{accelerators, efficiency, models, published, systems};
use amped_core::{Estimator, MicrobatchPolicy, Parallelism, TrainingConfig};
use amped_report::{ExperimentRecord, Table};
use amped_sim::{PipelineSchedule, SimConfig};

const MICROBATCHES: usize = 32;
const GLOBAL_BATCH: usize = 64; // 32 microbatches of 2 samples

fn main() {
    let p100 = accelerators::p100();
    let model = models::gpipe_transformer_24l();
    let eff = efficiency::p100_gpipe();

    let mut model_rate = Vec::new();
    let mut sim_rate = Vec::new();
    let gpu_counts: Vec<usize> = published::table3_rows().iter().map(|r| r.0).collect();
    for &pp in &gpu_counts {
        let system = systems::p100_pcie_node(pp);
        let p = Parallelism::builder()
            .pp(pp, 1)
            .microbatches(MicrobatchPolicy::Explicit(MICROBATCHES))
            .build()
            .expect("valid mapping");
        let est = Estimator::new(&model, &p100, &system, &p)
            .with_efficiency(eff.clone())
            .estimate(&TrainingConfig::single_batch(GLOBAL_BATCH).expect("valid"))
            .expect("estimates");
        model_rate.push(GLOBAL_BATCH as f64 / est.time_per_iteration.get());
        let sim = SimConfig::new(&model, &p100, &system, &p)
            .with_efficiency(eff.clone())
            .with_schedule(PipelineSchedule::GPipe)
            .simulate_iteration(GLOBAL_BATCH)
            .expect("simulates");
        sim_rate.push(GLOBAL_BATCH as f64 / sim.iteration_time);
    }

    let mut t = Table::new([
        "GPUs",
        "published (GPipe)",
        "paper AMPeD",
        "ours (model)",
        "ours (sim)",
        "our err",
    ]);
    let mut record = ExperimentRecord::new("Table III", "GPipe normalized throughput, M=32");
    for (i, (gpus, published_speedup, paper_pred)) in published::table3_rows().iter().enumerate() {
        let ours = model_rate[i] / model_rate[0];
        let ours_sim = sim_rate[i] / sim_rate[0];
        t.row([
            gpus.to_string(),
            format!("{published_speedup:.2}"),
            format!("{paper_pred:.2}"),
            format!("{ours:.2}"),
            format!("{ours_sim:.2}"),
            format!(
                "{:.1}%",
                published::relative_error(ours, *published_speedup) * 100.0
            ),
        ]);
        record.compare(format!("{gpus} GPUs speedup"), *published_speedup, ours);
    }
    println!("== Table III: GPipe (PP) normalized training throughput, P100 + PCIe, M=32 ==");
    println!("{t}");
    println!("\nmax error vs published: {:.1}%", record.max_error() * 100.0);
    assert!(
        record.within(published::MAX_VALIDATION_ERROR),
        "Table III reproduction exceeded the paper's 12% bound"
    );

    amped_bench::write_result_file("table3.csv", &t.to_csv());
    amped_bench::write_result_file("table3.md", &record.to_markdown());
}
