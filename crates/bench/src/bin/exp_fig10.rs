//! Fig. 10 (case study II): DP vs PP across nodes on low-end systems —
//! Megatron-145B, batch 8192, 1024 A100s total, reshaped into nodes of
//! 1/2/4/8 accelerators with as many EDR NICs, TP filling the node.
//!
//! Expected shape (paper §VII): with one accelerator + one EDR NIC per
//! node, DP's gradient all-reduce strangles on the thin NIC and PP wins
//! (paper: +80 %, ours: smaller but positive — our hierarchical all-reduce
//! and efficiency model price DP's downside more mildly, see
//! EXPERIMENTS.md); the gap shrinks with more NICs and DP takes over by
//! 4–8 per node. PP's idle bubbles also make it a candidate for better
//! *energy* when idle power is below the break-even fraction.

use amped_bench::{case_study_training, tuned_case_study_estimate};
use amped_configs::{models, systems};
use amped_core::{Estimate, Parallelism};
use amped_energy::{break_even_idle_fraction, PowerModel};
use amped_report::Table;

const BATCH: usize = 8192;
const TOTAL_ACCELS: usize = 1024;
/// The model has 80 layers; pipeline depth cannot exceed it, so the
/// deepest-PP configuration uses PP = 64 with the remainder in DP.
const MAX_PP: usize = 64;

fn estimate(per_node: usize, use_pp: bool) -> Estimate {
    let model = models::megatron_145b();
    let system = systems::a100_edr_lowend(TOTAL_ACCELS, per_node);
    let nodes = TOTAL_ACCELS / per_node;
    let p = if use_pp {
        let pp_x = nodes.min(MAX_PP);
        Parallelism::builder()
            .tp(per_node, 1)
            .pp(1, pp_x)
            .dp(1, nodes / pp_x)
            .build()
            .expect("valid mapping")
    } else {
        Parallelism::builder()
            .tp(per_node, 1)
            .dp(1, nodes)
            .build()
            .expect("valid mapping")
    };
    tuned_case_study_estimate(&model, &system, &p, BATCH).expect("estimates")
}

fn main() {
    println!("case study II: Megatron-145B, batch {BATCH}, 1024 A100s, EDR NICs, TP intra");
    let mut t = Table::new([
        "accels+NICs/node",
        "DP-inter (days)",
        "PP-inter (days)",
        "PP advantage",
        "PP bubble share",
    ]);
    let mut advantages = Vec::new();
    let mut estimates = Vec::new();
    for per_node in [1usize, 2, 4, 8] {
        let dp = estimate(per_node, false);
        let pp = estimate(per_node, true);
        let advantage = dp.days() / pp.days() - 1.0;
        let bubble_share = pp.breakdown.bubble / pp.breakdown.total();
        t.row([
            per_node.to_string(),
            format!("{:.1}", dp.days()),
            format!("{:.1}", pp.days()),
            format!("{:+.0}%", advantage * 100.0),
            format!("{:.0}%", bubble_share * 100.0),
        ]);
        advantages.push(advantage);
        estimates.push((dp, pp));
    }
    println!("{t}");
    amped_bench::write_result_file("fig10.csv", &t.to_csv());

    // Shape: PP wins big at 1 NIC/node, the gap narrows at 2, and DP takes
    // over by 8.
    assert!(
        advantages[0] > 0.0,
        "PP must win with one NIC per node, got {:+.0}%",
        advantages[0] * 100.0
    );
    assert!(
        advantages[1] < advantages[0],
        "the PP advantage must shrink with more NICs"
    );
    assert!(
        advantages[2] < 0.0 && advantages[3] < 0.0,
        "DP must win at 4 and 8 accelerators+NICs per node"
    );

    // The energy argument at the paper's crossover scale: PP idles in
    // bubbles, so below a break-even idle-power fraction the slower PP
    // config consumes less energy.
    let crossover = advantages
        .iter()
        .position(|&a| a < 0.0)
        .unwrap_or(estimates.len() - 1);
    let (dp, pp) = &estimates[crossover];
    let power = PowerModel::new(400.0, 0.3, 0.6);
    let batches = case_study_training(BATCH).num_batches();
    let be = break_even_idle_fraction(&dp.breakdown, &pp.breakdown, 1024, &power);
    match be {
        Some(f) => {
            println!(
                "\nat {} accels/node: PP is {:+.1}% slower but idles {:.0}% of the time;",
                [1, 2, 4, 8][crossover],
                (pp.days() / dp.days() - 1.0) * 100.0,
                estimates[crossover].1.breakdown.bubble / estimates[crossover].1.breakdown.total()
                    * 100.0
            );
            println!(
                "PP becomes the more energy-efficient choice when idle power < {:.0}% of TDP",
                f.clamp(0.0, 1.0) * 100.0
            );
            let _ = batches;
        }
        None => println!("\nPP has no extra bubble at the crossover configuration"),
    }

    println!("\ncase-study-II conclusions hold: the optimal inter-node strategy flips on low-end systems");
}
