//! Fig. 2c: TFLOP/s/GPU as a function of batch (microbatch) size for
//! GPT-3 175B on 96 GPUs with pipeline parallelism — published vs AMPeD.

use amped_bench::fig2c_estimate;
use amped_configs::published;
use amped_report::{chart::series_to_csv, ExperimentRecord, LineChart, Series, Table};

fn main() {
    let mut t = Table::new(["microbatch", "batch", "eff", "predicted", "published", "err"]);
    let mut record = ExperimentRecord::new("Fig. 2c", "GPT-3 175B batch-size sweep on 96 GPUs");
    let mut predicted_pts = Vec::new();
    let published_pts = published::fig2c_published();
    for &(ub, published_tflops) in &published_pts {
        let e = fig2c_estimate(ub).expect("fig2c estimates");
        predicted_pts.push((ub, e.tflops_per_gpu));
        t.row([
            format!("{ub:.0}"),
            format!("{:.0}", 96.0 * ub),
            format!("{:.3}", e.efficiency),
            format!("{:.1}", e.tflops_per_gpu),
            format!("{published_tflops:.1}"),
            format!(
                "{:+.1}%",
                (e.tflops_per_gpu - published_tflops) / published_tflops * 100.0
            ),
        ]);
        record.compare(format!("ub={ub:.0}"), published_tflops, e.tflops_per_gpu);
    }
    println!("== Fig. 2c: performance vs batch size, GPT-3 175B, 96 GPUs, PP ==");
    println!("{t}");

    // The paper highlights two points: ~11% error at ub = 12, converging to
    // ~2% at ub = 60.
    let err_at = |ub: f64| {
        let e = fig2c_estimate(ub).expect("estimates");
        let p = published_pts.iter().find(|p| p.0 == ub).expect("published point");
        ((e.tflops_per_gpu - p.1) / p.1).abs()
    };
    println!(
        "\nerror at ub=12: {:.1}% (paper: ~11%)   error at ub=60: {:.1}% (paper: ~2%)",
        err_at(12.0) * 100.0,
        err_at(60.0) * 100.0
    );
    assert!(err_at(12.0) < 0.15, "ub=12 error left the paper's regime");
    assert!(err_at(60.0) < 0.05, "ub=60 must converge like the paper's");

    // Saturation shape: the predicted curve's tail gain is a small fraction
    // of its initial gain.
    let first_gain = predicted_pts[1].1 - predicted_pts[0].1;
    let n = predicted_pts.len();
    let last_gain = predicted_pts[n - 1].1 - predicted_pts[n - 2].1;
    assert!(
        last_gain < first_gain / 4.0,
        "prediction must saturate with microbatch size"
    );

    let mut chart = LineChart::new("TFLOP/s/GPU vs microbatch size");
    chart.series(Series::new("predicted", predicted_pts.clone()));
    chart.series(Series::new("published", published_pts.clone()));
    println!("\n{}", chart.to_ascii(64, 14));

    let csv = series_to_csv(&[
        Series::new("predicted", predicted_pts),
        Series::new("published", published_pts),
    ]);
    amped_bench::write_result_file("fig2c.csv", &csv);
    amped_bench::write_result_file("fig2c.md", &record.to_markdown());
}
