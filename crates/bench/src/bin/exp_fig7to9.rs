//! Figs. 7–9: case study I with data parallelism inside the node
//! (DPintra = 8) on 1024 A100s, sweeping the inter-node parallelism and the
//! batch size.
//!
//! Fig. 7: TPinter × PPinter;  Fig. 8: TPinter × DPinter;
//! Fig. 9: PPinter × DPinter.
//!
//! Expected shapes (paper §VI-D): DP-intra mappings are roughly twice as
//! slow as their TP-intra counterparts (36–38 vs 18–21 days at batch 16384)
//! because the high DP degree shrinks the microbatch and with it the
//! efficiency (~30 % vs up to 80 %); Fig. 7's curves converge once
//! inter-node TP communication dominates; the 25 % efficiency floor shows
//! up as an artifact at high DP.

use amped_bench::tuned_case_study_estimate;
use amped_configs::{models, systems};
use amped_core::{Estimate, Parallelism};
use amped_report::Table;

const BATCHES: [usize; 3] = [4096, 8192, 16384];

fn estimate(tp_x: usize, pp_x: usize, dp_x: usize, batch: usize) -> Estimate {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .dp(8, dp_x)
        .tp(1, tp_x)
        .pp(1, pp_x)
        .build()
        .expect("valid mapping");
    tuned_case_study_estimate(&model, &system, &p, batch).expect("estimates")
}

fn sweep(title: &str, file: &str, configs: &[(usize, usize, usize)]) -> Vec<Vec<f64>> {
    let mut t = Table::new([
        "TPx".to_string(),
        "PPx".to_string(),
        "DPx".to_string(),
        format!("days@{}", BATCHES[0]),
        format!("days@{}", BATCHES[1]),
        format!("days@{}", BATCHES[2]),
        "eff@16384".to_string(),
    ]);
    let mut all = Vec::new();
    for &(tp_x, pp_x, dp_x) in configs {
        let days: Vec<f64> = BATCHES
            .iter()
            .map(|&b| estimate(tp_x, pp_x, dp_x, b).days())
            .collect();
        let eff = estimate(tp_x, pp_x, dp_x, 16384).efficiency;
        t.row([
            tp_x.to_string(),
            pp_x.to_string(),
            dp_x.to_string(),
            format!("{:.1}", days[0]),
            format!("{:.1}", days[1]),
            format!("{:.1}", days[2]),
            format!("{:.0}%", eff * 100.0),
        ]);
        all.push(days);
    }
    println!("\n== {title} ==");
    println!("{t}");
    amped_bench::write_result_file(file, &t.to_csv());
    all
}

fn main() {
    println!("case study I: Megatron-145B, 1024 A100s (128 nodes x 8), DP 8 intra-node");

    // Fig. 7: TP vs PP across nodes.
    let fig7 = sweep(
        "Fig. 7: TPinter x PPinter (DP intra)",
        "fig7.csv",
        &[(1, 64, 2), (2, 64, 1), (4, 32, 1), (8, 16, 1), (16, 8, 1)],
    );

    // Fig. 8: TP vs DP across nodes (the paper highlights (TPx, DPx) = (4, 32)).
    let fig8 = sweep(
        "Fig. 8: TPinter x DPinter (DP intra)",
        "fig8.csv",
        &[(1, 1, 128), (2, 1, 64), (4, 1, 32), (8, 1, 16), (16, 1, 8)],
    );

    // Fig. 9: PP vs DP across nodes.
    let fig9 = sweep(
        "Fig. 9: PPinter x DPinter (DP intra)",
        "fig9.csv",
        &[
            (1, 1, 128),
            (1, 2, 64),
            (1, 4, 32),
            (1, 8, 16),
            (1, 16, 8),
            (1, 32, 4),
            (1, 64, 2),
        ],
    );

    // ---- §VI-D claims ----
    // DP-intra is substantially slower than the TP-intra counterpart at the
    // same inter-node config (paper: 36-38 vs 18-21 days at batch 16384).
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let tp_intra_dp_only = amped_bench::tuned_case_study_estimate(
        &model,
        &system,
        &Parallelism::builder().tp(8, 1).dp(1, 128).build().expect("valid"),
        16384,
    )
    .expect("estimates");
    let dp_intra_dp_only = &fig9[0];
    println!(
        "\nbatch 16384: DP-intra pure-DP {:.1} d vs TP-intra pure-DP {:.1} d",
        dp_intra_dp_only[2],
        tp_intra_dp_only.days()
    );
    assert!(
        dp_intra_dp_only[2] > 1.5 * tp_intra_dp_only.days(),
        "DP-intra must be roughly twice as slow as TP-intra"
    );

    // The efficiency driving that gap: ~30% (DP-intra, ub ~ 16) vs up to
    // ~80% (TP-intra, ub ~ 128).
    let eff_dp_intra = estimate(1, 1, 128, 16384).efficiency;
    let eff_tp_intra = tp_intra_dp_only.efficiency;
    println!(
        "microbatch efficiency: DP-intra {:.0}% vs TP-intra {:.0}%",
        eff_dp_intra * 100.0,
        eff_tp_intra * 100.0
    );
    assert!(eff_dp_intra < 0.45, "DP-intra efficiency must collapse");
    assert!(eff_tp_intra > 0.70, "TP-intra efficiency must stay high");

    // Convergence of the batch-size series as TP-inter communication
    // (whose per-token cost is batch-independent) comes to dominate. The
    // paper reports it on its Fig. 7; under our stricter bubble accounting
    // the PP-bearing sweep keeps an efficiency spread, and the effect shows
    // cleanly on the PP-free TPxDP sweep (Fig. 8).
    let spread = |row: &Vec<f64>| (row[0] - row[2]).abs() / row[2];
    println!(
        "fig7 batch-series spread: first {:.2} -> last {:.2}",
        spread(&fig7[0]),
        spread(&fig7[4])
    );
    println!(
        "fig8 batch-series spread: first {:.2} -> last {:.2}",
        spread(&fig8[0]),
        spread(&fig8[4])
    );
    assert!(
        spread(&fig8[4]) < 0.5 * spread(&fig8[0]),
        "curves must converge once TP-inter communication dominates"
    );

    // The 25% efficiency floor artifact at extreme DP (ub -> 1-2 samples).
    let eff_extreme = estimate(1, 1, 128, 4096).efficiency;
    println!("efficiency at batch 4096, DP=1024: {:.0}%", eff_extreme * 100.0);
    assert!(
        eff_extreme <= 0.27,
        "extreme DP must hit the paper's 25% efficiency floor"
    );

    println!("\nall case-study-I (DP-intra) observations hold");
}
