//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. bubble accounting — standard GPipe vs the paper's literal Eq. 8;
//! 2. efficiency-model form — constant vs saturating vs table;
//! 3. ZeRO stages — communication overhead vs memory footprint;
//! 4. gradient all-reduce — hierarchical (reduce-scatter intra first) vs
//!    flat (modelled by moving all DP inter-node);
//! 5. analytical model vs discrete-event simulator across a mapping grid;
//! 6. fitted vs roofline-derived eff(ub) — the paper's "predictive model
//!    for eff(ub)" future work, checked against its own fitted curve.

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::{
    AnalyticalBackend, BubbleAccounting, CostBackend, EfficiencyModel, EngineOptions, Estimator,
    MicrobatchPolicy, Parallelism, Precision, Scenario, TrainingConfig, ZeroConfig, ZeroStage,
};
use amped_memory::MemoryModel;
use amped_report::Table;
use amped_sim::SimBackend;

fn main() {
    ablate_bubble_accounting();
    ablate_efficiency_forms();
    ablate_zero_stages();
    ablate_allreduce_hierarchy();
    ablate_model_vs_sim();
    ablate_roofline_efficiency();
}

/// 1. The interpretation decision DESIGN.md note 1 documents, quantified.
fn ablate_bubble_accounting() {
    println!("== ablation 1: bubble accounting (Megatron-145B, TP8 intra, batch 8192) ==");
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(128, 8);
    let mut t = Table::new(["PPinter", "GPipe bubble (s)", "Eq.8-literal bubble (s)", "ratio"]);
    for pp_x in [2usize, 8, 32] {
        let p = Parallelism::builder()
            .tp(8, 1)
            .pp(1, pp_x)
            .dp(1, 128 / pp_x)
            .microbatches(MicrobatchPolicy::Explicit(64))
            .build()
            .expect("valid");
        let run = |accounting| {
            Estimator::new(&model, &a100, &system, &p)
                .with_efficiency(efficiency::case_study())
                .with_options(EngineOptions {
                    bubble_accounting: accounting,
                    ..Default::default()
                })
                .estimate(&TrainingConfig::single_batch(8192).expect("valid"))
                .expect("estimates")
                .breakdown
                .bubble
        };
        let std = run(BubbleAccounting::GPipe);
        let lit = run(BubbleAccounting::PaperEq8);
        t.row([
            pp_x.to_string(),
            format!("{std:.3}"),
            format!("{lit:.3}"),
            format!("{:.0}x", std / lit.max(1e-12)),
        ]);
        // The literal form divides the compute term by the stack depth.
        assert!(std > 10.0 * lit, "literal Eq. 8 must be far smaller");
    }
    println!("{t}\n");
}

/// 2. How much the DP-vs-TP conclusions depend on the eff(ub) form.
fn ablate_efficiency_forms() {
    println!("== ablation 2: efficiency-model form (DP-heavy vs TP-heavy mapping) ==");
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(128, 8);
    let dp_heavy = Parallelism::builder().dp(8, 128).build().expect("valid");
    let tp_heavy = Parallelism::builder().tp(8, 1).dp(1, 128).build().expect("valid");
    let forms: Vec<(&str, EfficiencyModel)> = vec![
        ("constant 0.6", EfficiencyModel::Constant(0.6)),
        ("saturating b=25", efficiency::case_study()),
        (
            "table (profiled)",
            EfficiencyModel::Table(vec![(1.0, 0.25), (16.0, 0.37), (64.0, 0.62), (256.0, 0.85)]),
        ),
    ];
    let mut t = Table::new(["eff model", "DP-heavy days", "TP-intra days", "DP/TP ratio"]);
    let mut ratios = Vec::new();
    for (name, eff) in forms {
        let run = |p: &Parallelism| {
            Estimator::new(&model, &a100, &system, p)
                .with_efficiency(eff.clone())
                .estimate(&amped_bench::case_study_training(16384))
                .expect("estimates")
                .days()
        };
        let d_dp = run(&dp_heavy);
        let d_tp = run(&tp_heavy);
        ratios.push((name, d_dp / d_tp));
        t.row([
            name.to_string(),
            format!("{d_dp:.1}"),
            format!("{d_tp:.1}"),
            format!("{:.2}x", d_dp / d_tp),
        ]);
    }
    println!("{t}");
    // The finding: with a *constant* efficiency, DP-heavy mappings look as
    // good as (or better than) TP-intra, because TP's all-reduce is their
    // only difference. Only batch-sensitive efficiency forms reproduce the
    // paper's "TP-intra is ~2x faster" conclusion — the conclusion rests on
    // the eff(ub) model.
    assert!(
        ratios[0].1 < 1.1,
        "constant efficiency must erase the TP-intra advantage"
    );
    assert!(
        ratios[1].1 > 1.5 && ratios[2].1 > 1.2,
        "batch-sensitive forms must restore the TP-intra advantage"
    );
    println!("finding: the TP-intra-beats-DP-intra conclusion requires batch-sensitive eff(ub)\n");
}

/// 3. ZeRO: trading communication overhead for memory footprint.
fn ablate_zero_stages() {
    println!("== ablation 3: ZeRO stages (GPT-3 175B, 64-way DP) ==");
    let model = models::gpt3_175b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(8, 8);
    let mut t = Table::new(["stage", "iter (s)", "per-device memory (GiB)", "fits 80 GiB"]);
    let mut prev_mem = f64::INFINITY;
    for (name, stage, overhead) in [
        ("none", ZeroStage::None, 0.0),
        ("ZeRO-1", ZeroStage::OptimizerStates, 0.0),
        ("ZeRO-2", ZeroStage::Gradients, 0.05),
        ("ZeRO-3", ZeroStage::Parameters, 0.5),
    ] {
        let p = Parallelism::builder()
            .tp(8, 1)
            .dp(1, 8)
            .zero(ZeroConfig::stage(stage, overhead))
            .build()
            .expect("valid");
        let e = Estimator::new(&model, &a100, &system, &p)
            .with_efficiency(efficiency::case_study())
            .estimate(&TrainingConfig::single_batch(512).expect("valid"))
            .expect("estimates");
        let mem = MemoryModel::new(&model, &p)
            .with_precision(Precision::fp16())
            .footprint(e.microbatch_size, e.num_microbatches);
        t.row([
            name.to_string(),
            format!("{:.3}", e.time_per_iteration.get()),
            format!("{:.1}", mem.total() / (1u64 << 30) as f64),
            if mem.total() <= a100.memory_bytes() { "yes" } else { "NO" }.to_string(),
        ]);
        assert!(
            mem.total() <= prev_mem,
            "each ZeRO stage must shrink the footprint"
        );
        prev_mem = mem.total();
    }
    println!("{t}\n");
}

/// 4. Hierarchical vs flat gradient all-reduce, via node placement.
fn ablate_allreduce_hierarchy() {
    println!("== ablation 4: gradient all-reduce hierarchy (minGPT-scale, 64 GPUs) ==");
    let model = models::gpt3_175b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(8, 8);
    // Hierarchical: 8-way intra x 8-way inter. Flat: all 64 ranks treated
    // as inter-node communicators (1 per node x 64 nodes system).
    let flat_system = systems::a100_hdr_cluster(64, 1);
    let hier = Parallelism::builder().dp(8, 8).build().expect("valid");
    let flat = Parallelism::builder().dp(1, 64).build().expect("valid");
    let run = |sys, p: &Parallelism| {
        Estimator::new(&model, &a100, sys, p)
            .with_efficiency(EfficiencyModel::Constant(0.6))
            .estimate(&TrainingConfig::single_batch(512).expect("valid"))
            .expect("estimates")
    };
    let e_hier = run(&system, &hier);
    let e_flat = run(&flat_system, &flat);
    let hier_dp = e_hier.breakdown.dp_comm_intra + e_hier.breakdown.dp_comm_inter;
    let flat_dp = e_flat.breakdown.dp_comm_intra + e_flat.breakdown.dp_comm_inter;
    println!(
        "hierarchical gradient sync: {hier_dp:.3} s   flat over the NICs: {flat_dp:.3} s  ({:.1}x)",
        flat_dp / hier_dp
    );
    assert!(
        flat_dp > 2.0 * hier_dp,
        "hierarchical all-reduce must beat flat inter-node all-reduce"
    );
    println!();
}

/// 6. The roofline-derived eff(ub) against the fitted curve: both must
///    be saturating, and the Fig. 2c sweep keeps its shape when the
///    fitted curve is replaced by the derived one.
fn ablate_roofline_efficiency() {
    use amped_core::roofline::efficiency_from_roofline;
    println!("== ablation 6: fitted vs roofline-derived eff(ub), GPT-3 on A100 ==");
    let model = models::gpt3_175b();
    let a100 = accelerators::a100();
    let derived = efficiency_from_roofline(&model, &a100, Precision::fp16(), 256)
        .expect("derives");
    let fitted = efficiency::gpt3_96gpu();
    let mut t = Table::new(["ub", "fitted", "roofline-derived"]);
    let mut prev_derived = 0.0;
    for ub in [1.0, 4.0, 12.0, 24.0, 60.0, 128.0] {
        let d = derived.eval(ub);
        t.row([
            format!("{ub:.0}"),
            format!("{:.2}", fitted.eval(ub)),
            format!("{d:.2}"),
        ]);
        assert!(d >= prev_derived, "derived curve must be monotone");
        prev_derived = d;
    }
    println!("{t}");
    // The derivation explains the fit's existence (same shape); the fitted
    // curve additionally absorbs kernel-launch and scheduling losses the
    // roofline cannot see, so it sits lower.
    assert!(derived.eval(60.0) > fitted.eval(60.0));
    println!("finding: the roofline derives the saturating shape the paper fits; the fitted\ncurve sits lower because it also absorbs non-roofline losses\n");
}

/// 5. Analytical model vs discrete-event simulator across a mapping grid.
///
/// Uses the 16-layer minGPT-PP model so every pipeline depth divides the
/// stack evenly: the analytical model (like the paper's) assumes balanced
/// stages, and the simulator — which executes the actual layer split —
/// punishes indivisible stacks with the slowest-stage rate. That imbalance
/// effect is itself demonstrated at the end.
fn ablate_model_vs_sim() {
    println!("== ablation 5: analytical model vs simulator (minGPT-PP on HGX-2) ==");
    let model = models::mingpt_pp();
    let v100 = accelerators::v100();
    // Both sides price the same Scenario through the CostBackend trait —
    // exactly the comparison tests/backend_differential.rs pins as a
    // regression band.
    let analytical = AnalyticalBackend;
    let sim_backend = SimBackend::new();
    let training = TrainingConfig::single_batch(128).expect("valid");
    let mut t = Table::new(["mapping", "model (s)", "sim (s)", "gap"]);
    let mut max_gap: f64 = 0.0;
    for (label, dp, pp) in [
        ("DP8", 8usize, 1usize),
        ("DP4xPP2", 4, 2),
        ("DP2xPP4", 2, 4),
        ("PP8", 1, 8),
    ] {
        let p = Parallelism::builder()
            .dp(dp, 1)
            .pp(pp, 1)
            .microbatches(MicrobatchPolicy::Explicit(16))
            .build()
            .expect("valid");
        let scenario = Scenario::new(model.clone(), v100.clone(), systems::hgx2(8), p)
            .with_efficiency(efficiency::v100_mingpt());
        let est = analytical.evaluate(&scenario, &training).expect("estimates");
        let sim = sim_backend.evaluate(&scenario, &training).expect("simulates");
        let gap = (est.time_per_iteration.get() - sim.time_per_iteration.get()).abs()
            / sim.time_per_iteration.get();
        max_gap = max_gap.max(gap);
        t.row([
            label.to_string(),
            format!("{:.4}", est.time_per_iteration.get()),
            format!("{:.4}", sim.time_per_iteration.get()),
            format!("{:.1}%", gap * 100.0),
        ]);
    }
    println!("{t}");
    println!("max model-vs-sim gap: {:.1}% (paper's validation bound: 12%)", max_gap * 100.0);
    assert!(
        max_gap < 0.12,
        "model and simulator must agree within the paper's bound"
    );

    // The imbalance effect: pipe the 13-entry minGPT-85M stack (12 layers +
    // head) through 8 stages — the simulator's slowest-stage throughput
    // leaves the balanced-stage analytical model visibly optimistic.
    let uneven = models::mingpt_85m();
    let p = Parallelism::builder()
        .pp(8, 1)
        .microbatches(MicrobatchPolicy::Explicit(16))
        .build()
        .expect("valid");
    let scenario = Scenario::new(uneven, v100.clone(), systems::hgx2(8), p)
        .with_efficiency(efficiency::v100_mingpt());
    let est = analytical.evaluate(&scenario, &training).expect("estimates");
    let sim = sim_backend.evaluate(&scenario, &training).expect("simulates");
    let gap = (sim.time_per_iteration.get() - est.time_per_iteration.get())
        / sim.time_per_iteration.get();
    println!(
        "imbalanced stack (13 entries / 8 stages): model {:.4} s vs sim {:.4} s ({:+.0}% optimistic)",
        est.time_per_iteration.get(),
        sim.time_per_iteration.get(),
        gap * 100.0
    );
    assert!(
        gap > 0.15,
        "stage imbalance must make the balanced-stage model optimistic"
    );
}
