//! Figs. 4–6: case study I with tensor parallelism inside the node
//! (TPintra = 8) on 1024 A100s, sweeping the inter-node parallelism and the
//! batch size (4096 / 8192 / 16384).
//!
//! Fig. 4: TPinter × PPinter;  Fig. 5: TPinter × DPinter;
//! Fig. 6: PPinter × DPinter.  Training time in days for 300 B tokens.
//!
//! Expected shapes (paper §VI-C/E): the ordering DP-only < PP-only «
//! TP-heavy inter-node holds, DP lands near the paper's ~18 days, TP
//! degrees are monotonically punished, and TP-intra keeps the microbatch
//! efficiency high. Absolute PP and TP factors differ from the paper's
//! (ours charge the dimensionally consistent bubble and a hierarchical
//! NIC-aggregating inter-node all-reduce — see EXPERIMENTS.md).

use amped_bench::tuned_case_study_estimate;
use amped_configs::{models, systems};
use amped_core::{Estimate, Parallelism};
use amped_report::Table;

const BATCHES: [usize; 3] = [4096, 8192, 16384];

fn estimate(tp_x: usize, pp_x: usize, dp_x: usize, batch: usize) -> Estimate {
    let model = models::megatron_145b();
    let system = systems::a100_hdr_cluster(128, 8);
    let p = Parallelism::builder()
        .tp(8, tp_x)
        .pp(1, pp_x)
        .dp(1, dp_x)
        .build()
        .expect("valid mapping");
    tuned_case_study_estimate(&model, &system, &p, batch).expect("estimates")
}

fn sweep(title: &str, file: &str, configs: &[(usize, usize, usize)]) -> Vec<Vec<f64>> {
    let mut t = Table::new([
        "TPx".to_string(),
        "PPx".to_string(),
        "DPx".to_string(),
        format!("days@{}", BATCHES[0]),
        format!("days@{}", BATCHES[1]),
        format!("days@{}", BATCHES[2]),
        "eff@16384".to_string(),
    ]);
    let mut all = Vec::new();
    for &(tp_x, pp_x, dp_x) in configs {
        let days: Vec<f64> = BATCHES
            .iter()
            .map(|&b| estimate(tp_x, pp_x, dp_x, b).days())
            .collect();
        let eff = estimate(tp_x, pp_x, dp_x, 16384).efficiency;
        t.row([
            tp_x.to_string(),
            pp_x.to_string(),
            dp_x.to_string(),
            format!("{:.1}", days[0]),
            format!("{:.1}", days[1]),
            format!("{:.1}", days[2]),
            format!("{:.0}%", eff * 100.0),
        ]);
        all.push(days);
    }
    println!("\n== {title} ==");
    println!("{t}");
    amped_bench::write_result_file(file, &t.to_csv());
    all
}

fn main() {
    println!("case study I: Megatron-145B, 1024 A100s (128 nodes x 8), TP 8 intra-node");

    // Fig. 4: PP vs TP across nodes (PPinter scaled down as TPinter scales up).
    let fig4 = sweep(
        "Fig. 4: TPinter x PPinter",
        "fig4.csv",
        &[(1, 64, 2), (2, 64, 1), (4, 32, 1), (8, 16, 1)],
    );

    // Fig. 5: TP vs DP across nodes.
    let fig5 = sweep(
        "Fig. 5: TPinter x DPinter",
        "fig5.csv",
        &[(1, 1, 128), (2, 1, 64), (4, 1, 32), (8, 1, 16)],
    );

    // Fig. 6: PP vs DP across nodes.
    let fig6 = sweep(
        "Fig. 6: PPinter x DPinter",
        "fig6.csv",
        &[
            (1, 1, 128),
            (1, 2, 64),
            (1, 4, 32),
            (1, 8, 16),
            (1, 16, 8),
            (1, 32, 4),
            (1, 64, 2),
        ],
    );

    // ---- Paper's conclusions as assertions (batch 16384 column = idx 2) ----
    let days_16k = |rows: &Vec<Vec<f64>>, i: usize| rows[i][2];

    // (2) TP over inter-node links is very slow: the TP-heavy ends of
    // Figs. 4/5 sit several times above the DP/PP-only configs (~57 vs
    // ~18-21 days in the paper).
    let dp_only = days_16k(&fig5, 0);
    let tp8_dp = days_16k(&fig5, 3);
    println!("\npure-DP inter: {dp_only:.1} d   TPinter=8: {tp8_dp:.1} d   ratio {:.1}x", tp8_dp / dp_only);
    assert!(
        tp8_dp > 2.0 * dp_only,
        "TP-heavy inter-node must be several times slower"
    );

    // (Fig. 4 text) scaling PP down / TP up multiplies the training time
    // (the paper quotes ~3x per 2x shift with its non-hierarchical
    // inter-node all-reduce; our NIC-aggregating hierarchical all-reduce
    // softens the absolute factor but keeps the direction and convexity).
    let ratio_fig4 = days_16k(&fig4, 3) / days_16k(&fig4, 0);
    println!("fig4 (TPx 8 vs PP/DP-only): {:.1}x slower", ratio_fig4);
    assert!(ratio_fig4 > 1.3, "shifting PP to TP must cost substantially");
    for w in fig4[1..].windows(2) {
        assert!(w[1][2] > w[0][2], "more TPinter must be monotonically slower");
    }

    // (4) pure DP beats pure PP across nodes (paper: ~18 vs ~21 days; our
    // stricter bubble accounting widens the gap — see EXPERIMENTS.md).
    let pp_only = days_16k(&fig6, 6).min(days_16k(&fig4, 0));
    println!("pure-PP-ish inter: {pp_only:.1} d vs pure DP {dp_only:.1} d");
    assert!(dp_only < pp_only, "DP must edge out PP inter-node");
    assert!(pp_only < 2.0 * dp_only, "but not by an order of magnitude");
    // and PP still beats TP-heavy mappings (conclusion 3).
    assert!(pp_only < tp8_dp, "PP-inter must beat TP-inter");

    // (1)+(VI-C) TP-intra keeps microbatch efficiency high for DP/PP-inter.
    let eff = estimate(1, 1, 128, 16384).efficiency;
    assert!(eff > 0.75, "DP=128 with batch 16384 must stay efficient, got {eff}");

    // Larger batches never hurt the training time for the DP-only config
    // (the per-batch count shrinks correspondingly).
    let dp_days: Vec<f64> = fig6[0].clone();
    assert!(dp_days[2] <= dp_days[0] * 1.2);

    println!("\nall case-study-I conclusions hold");
}
