//! Tables I & IV: the experimental-setup tables, regenerated from the
//! preset catalog.

use amped_configs::{accelerators, registry};
use amped_report::Table;

fn main() {
    println!("== Table I: validation setup (HGX-2 / V100 SXM3) ==");
    let v100 = accelerators::v100();
    let mut t1 = Table::new(["attribute", "value"]);
    t1.row(["Node", "HGX-2 (up to 16 accelerators)"]);
    t1.row(["Accelerator", v100.name().to_string().as_str()]);
    t1.row(["Clock (boost)", &format!("{:.0} MHz", v100.frequency_hz() / 1e6)]);
    t1.row(["Cores (SMs)", &v100.num_cores().to_string()]);
    t1.row([
        "Peak FP16",
        &format!("{:.0} TFLOP/s", v100.peak_flops_per_sec(16) / 1e12),
    ]);
    t1.row([
        "Memory (available)",
        &format!("{:.2} GB", v100.memory_bytes() / 1e9),
    ]);
    t1.row([
        "Memory bandwidth",
        &format!("{:.0} GB/s", v100.memory_bandwidth_bytes_per_sec() / 1e9),
    ]);
    t1.row(["TDP", &format!("{:.0} W", v100.tdp_watts())]);
    t1.row(["Intra-node network", "NVLink + NVSwitch"]);
    println!("{t1}");

    println!("\n== Table IV: accelerator configurations used in the exploration ==");
    let mut t4 = Table::new([
        "Hardware",
        "f (Hz)",
        "N_cores",
        "N_FU",
        "W_FU",
        "N_FU_nl",
        "W_FU_nl",
        "BW_intra (b/s)",
    ]);
    for name in ["a100", "h100"] {
        let a = registry::accelerator(name).expect("preset exists");
        t4.row([
            a.name().to_string(),
            format!("{:.2e}", a.frequency_hz()),
            a.num_cores().to_string(),
            a.mac_units_per_core().to_string(),
            a.mac_unit_width().to_string(),
            a.nonlin_units().to_string(),
            a.nonlin_unit_width().to_string(),
            format!("{:.1e}", a.offchip_bandwidth_bits_per_sec()),
        ]);
    }
    println!("{t4}");
    amped_bench::write_result_file("table1_table4.csv", &t4.to_csv());

    println!("\n== All registered presets ==");
    let mut all = Table::new(["kind", "name"]);
    for m in registry::model_names() {
        all.row(["model", m]);
    }
    for a in registry::accelerator_names() {
        all.row(["accel", a]);
    }
    println!("{all}");
}
