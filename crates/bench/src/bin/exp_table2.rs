//! Table II: AMPeD-predicted vs published TFLOP/s/GPU for Megatron models
//! (145B, 310B, 530B, 1T) with the published (TP, PP, DP) mappings, `R = 1`.

use amped_bench::table2_estimate;
use amped_configs::published;
use amped_report::{ExperimentRecord, Table};

fn main() {
    let mut t = Table::new([
        "Model",
        "TP",
        "PP",
        "DP",
        "ours TFLOP/s/GPU",
        "paper AMPeD",
        "published",
        "our err",
        "paper err",
    ]);
    let mut record = ExperimentRecord::new("Table II", "Megatron validation at scale");
    for row in published::table2_rows() {
        let e = table2_estimate(&row).expect("table II estimates");
        let our_err = published::relative_error(e.tflops_per_gpu, row.published_tflops);
        let their_err = published::relative_error(row.amped_tflops, row.published_tflops);
        t.row([
            row.model.to_string(),
            row.tp.to_string(),
            row.pp.to_string(),
            row.dp.to_string(),
            format!("{:.1}", e.tflops_per_gpu),
            format!("{:.1}", row.amped_tflops),
            format!("{:.1}", row.published_tflops),
            format!("{:.1}%", our_err * 100.0),
            format!("{:.1}%", their_err * 100.0),
        ]);
        record.compare(
            format!("{} TFLOP/s/GPU", row.model),
            row.published_tflops,
            e.tflops_per_gpu,
        );
    }
    println!("== Table II: comparison of performance, AMPeD vs published data ==");
    println!("{t}");
    println!(
        "\nmax error vs published: {:.1}% (paper's bound: {:.0}%)",
        record.max_error() * 100.0,
        published::MAX_VALIDATION_ERROR * 100.0
    );
    assert!(
        record.within(published::MAX_VALIDATION_ERROR),
        "Table II reproduction exceeded the paper's 12% validation bound"
    );
    amped_bench::write_result_file("table2.csv", &t.to_csv());
    amped_bench::write_result_file("table2.md", &record.to_markdown());
}
