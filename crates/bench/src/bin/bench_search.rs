//! Records the search-path speedup into `BENCH_search.json` at the repo
//! root: the default engine (memoized estimation, pruning left off so the
//! full ranking is produced) against the original serial, uncached path on
//! the `search/rank_all_16x8` fixture. Run with
//! `cargo run --release -p amped-bench --bin bench_search`.

use std::time::Instant;

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::TrainingConfig;
use amped_search::SearchEngine;

/// Minimum wall time per measurement; repeats the search until reached and
/// reports the best per-run time so background noise only ever hurts, never
/// flatters, a configuration.
const MIN_MEASURE_SECS: f64 = 0.5;

fn measure(engine: &SearchEngine<'_>, training: &TrainingConfig) -> (f64, usize) {
    let candidates = engine.search(training).expect("fixture searches").len();
    let mut best = f64::INFINITY;
    let mut elapsed = 0.0;
    let mut runs = 0u32;
    while elapsed < MIN_MEASURE_SECS || runs < 3 {
        let start = Instant::now();
        std::hint::black_box(engine.search(std::hint::black_box(training)).expect("searches"));
        let t = start.elapsed().as_secs_f64();
        best = best.min(t);
        elapsed += t;
        runs += 1;
    }
    (best, candidates)
}

fn main() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let base =
        SearchEngine::new(&model, &a100, &system).with_efficiency(efficiency::case_study());

    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let serial = base.clone().with_memoization(false).with_parallelism(1);
    // The scalar fast path: memoized, worker pool sized to the host, but
    // candidates still priced one at a time.
    let fast = base.clone().with_batching(false);
    // The default engine: same pool, candidates priced through
    // `evaluate_many` with the closed-form microbatch solve.
    let batched = base.clone();
    let pruned = base.clone().with_pruning(true);

    let (serial_secs, candidates) = measure(&serial, &training);
    let (fast_secs, fast_candidates) = measure(&fast, &training);
    let (batched_secs, batched_candidates) = measure(&batched, &training);
    let (pruned_secs, pruned_candidates) = measure(&pruned, &training);
    assert_eq!(candidates, fast_candidates, "paths must rank the same set");
    assert_eq!(candidates, batched_candidates, "paths must rank the same set");

    let speedup = serial_secs / fast_secs;
    let batch_speedup = fast_secs / batched_secs;
    let report = serde_json::json!({
        "benchmark": "search/rank_all_16x8",
        "fixture": "megatron_145b on a100_hdr_cluster(16, 8), batch 2048",
        "candidates": candidates,
        "jobs": jobs,
        "serial_seconds": serial_secs,
        "fast_seconds": fast_secs,
        "batched_seconds": batched_secs,
        "pruned_seconds": pruned_secs,
        "pruned_candidates": pruned_candidates,
        "candidates_per_sec": candidates as f64 / fast_secs,
        "batched_candidates_per_sec": candidates as f64 / batched_secs,
        "speedup": speedup,
        "batch_speedup": batch_speedup,
    });
    let text = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    std::fs::write(path, format!("{text}\n")).expect("writes BENCH_search.json");
    println!("{text}");
    println!(
        "serial {serial_secs:.3} s -> fast {fast_secs:.3} s ({speedup:.1}x) -> \
         batched {batched_secs:.3} s ({batch_speedup:.1}x over fast), \
         pruned {pruned_secs:.3} s ({pruned_candidates}/{candidates} candidates kept)"
    );
}
