//! Fig. 2a: normalized minGPT training time vs number of data-parallel
//! GPUs — "experimental" (discrete-event simulator standing in for the
//! paper's HGX-2) vs "predicted" (the analytical model).

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::{Estimator, Parallelism, TrainingConfig};
use amped_report::{chart::series_to_csv, ExperimentRecord, Series, Table};
use amped_sim::SimConfig;

const GLOBAL_BATCH: usize = 64;

fn main() {
    let v100 = accelerators::v100();
    let mingpt = models::mingpt_85m();
    let eff = efficiency::v100_mingpt();

    let gpu_counts = [1usize, 2, 4, 8, 16];
    let mut sim_times = Vec::new();
    let mut model_times = Vec::new();
    for &n in &gpu_counts {
        let system = systems::hgx2(n);
        let p = Parallelism::data_parallel_intra(n).expect("valid mapping");
        let sim = SimConfig::new(&mingpt, &v100, &system, &p)
            .with_efficiency(eff.clone())
            .simulate_iteration(GLOBAL_BATCH)
            .expect("simulates");
        sim_times.push(sim.iteration_time);
        let est = Estimator::new(&mingpt, &v100, &system, &p)
            .with_efficiency(eff.clone())
            .estimate(&TrainingConfig::single_batch(GLOBAL_BATCH).expect("valid"))
            .expect("estimates");
        model_times.push(est.time_per_iteration.get());
    }

    let normalize = |ts: &[f64]| -> Vec<f64> { ts.iter().map(|t| t / ts[0]).collect() };
    let sim_norm = normalize(&sim_times);
    let model_norm = normalize(&model_times);

    let mut t = Table::new(["GPUs", "experimental (sim)", "predicted (model)", "gap"]);
    let mut record = ExperimentRecord::new("Fig. 2a", "minGPT DP scaling, simulator vs model");
    for (i, &n) in gpu_counts.iter().enumerate() {
        t.row([
            n.to_string(),
            format!("{:.3}", sim_norm[i]),
            format!("{:.3}", model_norm[i]),
            format!("{:+.1}%", (model_norm[i] - sim_norm[i]) / sim_norm[i] * 100.0),
        ]);
        record.compare(format!("{n} GPUs normalized time"), sim_norm[i], model_norm[i]);
    }
    println!("== Fig. 2a: normalized training time vs data-parallel GPUs (minGPT) ==");
    println!("{t}");
    println!("\nmax model-vs-simulator gap: {:.1}%", record.max_error() * 100.0);

    // The paper's headline: predictions track the experimental trend within
    // its 12% validation bound.
    assert!(
        record.within(0.12),
        "analytical model diverged from the simulated experiment"
    );
    // And the trend itself: near-linear scaling that weakens as allreduce
    // overhead grows.
    for w in sim_norm.windows(2) {
        assert!(w[1] < w[0], "more DP GPUs must reduce normalized time");
    }
    // Speedup at 16 GPUs is visibly sublinear (the paper's curve flattens
    // too): the fixed global batch shrinks each replica's microbatch and
    // with it the efficiency.
    let speedup16 = 1.0 / sim_norm[4];
    assert!(
        speedup16 > 4.0 && speedup16 < 16.0,
        "16-GPU speedup must be sublinear but substantial, got {speedup16:.2}"
    );

    let xs: Vec<f64> = gpu_counts.iter().map(|&n| n as f64).collect();
    let csv = series_to_csv(&[
        Series::new(
            "experimental",
            xs.iter().copied().zip(sim_norm.iter().copied()).collect(),
        ),
        Series::new(
            "predicted",
            xs.iter().copied().zip(model_norm.iter().copied()).collect(),
        ),
    ]);
    amped_bench::write_result_file("fig2a.csv", &csv);
    amped_bench::write_result_file("fig2a.md", &record.to_markdown());
}
