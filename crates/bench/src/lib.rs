//! # amped-bench — experiment harness
//!
//! One binary per table/figure of the AMPeD paper (see `src/bin/`), plus
//! Criterion benches of the library itself (see `benches/`). This library
//! holds the setup shared by the experiment binaries: calibrated
//! estimator/simulator constructors and CSV output helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::{
    EngineOptions, Estimate, Estimator, MicrobatchPolicy, Parallelism, Result, SystemSpec,
    TrainingConfig, TransformerModel,
};

/// The token budget assumed when the case studies quote training times in
/// days (GPT-3-scale pretraining: 300 B tokens).
pub const CASE_STUDY_TOKENS: f64 = 300e9;

/// Training config for a case-study run: `CASE_STUDY_TOKENS` at the given
/// global batch over 2048-token sequences.
pub fn case_study_training(global_batch: usize) -> TrainingConfig {
    TrainingConfig::from_tokens(global_batch, 2048, CASE_STUDY_TOKENS).expect("valid batch")
}

/// The case-study estimator: Megatron-145B-style settings on A100s with the
/// calibrated efficiency curve and activation recomputation, as the
/// published baselines use.
pub fn case_study_estimate(
    model: &TransformerModel,
    system: &SystemSpec,
    parallelism: &Parallelism,
    global_batch: usize,
) -> Result<Estimate> {
    let a100 = accelerators::a100();
    Estimator::new(model, &a100, system, parallelism)
        .with_efficiency(efficiency::case_study())
        .with_options(EngineOptions {
            activation_recompute: true,
            ..Default::default()
        })
        .estimate(&case_study_training(global_batch))
}

/// The Table II estimator for one published Megatron row: TP 8 in-node,
/// PP × DP across nodes, single-sequence microbatches, `R = 1`.
pub fn table2_estimate(row: &amped_configs::published::TableTwoRow) -> Result<Estimate> {
    let model = match row.model {
        "145B" => models::megatron_145b(),
        "310B" => models::megatron_310b(),
        "530B" => models::megatron_530b(),
        "1T" => models::megatron_1t(),
        other => panic!("unknown Table II row {other}"),
    };
    let nodes = row.tp * row.pp * row.dp / 8;
    let system = systems::a100_hdr_cluster(nodes, 8);
    let replica_batch = row.batch / row.dp;
    let parallelism = Parallelism::builder()
        .tp(8, 1)
        .pp(1, row.pp)
        .dp(1, row.dp)
        .microbatches(MicrobatchPolicy::Explicit(replica_batch))
        .build()?;
    let a100 = accelerators::a100();
    Estimator::new(&model, &a100, &system, &parallelism)
        .with_efficiency(efficiency::megatron_selene())
        .with_options(EngineOptions {
            activation_recompute: true,
            ..Default::default()
        })
        .estimate(&TrainingConfig::new(row.batch, 1)?)
}

/// The Fig. 2c estimator: GPT-3 175B on 96 A100s (TP 8 × PP 12), 96
/// microbatches, swept by microbatch size `ub` (global batch `96·ub`).
pub fn fig2c_estimate(ub: f64) -> Result<Estimate> {
    let model = models::gpt3_175b();
    let system = systems::a100_hdr_cluster(12, 8);
    let parallelism = Parallelism::builder()
        .tp(8, 1)
        .pp(1, 12)
        .microbatches(MicrobatchPolicy::Explicit(96))
        .build()?;
    let a100 = accelerators::a100();
    Estimator::new(&model, &a100, &system, &parallelism)
        .with_efficiency(efficiency::gpt3_96gpu())
        .with_options(EngineOptions {
            activation_recompute: true,
            ..Default::default()
        })
        .estimate(&TrainingConfig::new((96.0 * ub) as usize, 1)?)
}

/// Case-study estimate with the microbatch count tuned per configuration:
/// evaluates power-of-two microbatch sizes (the paper adjusts batch
/// splitting "for optimal batch efficiency") and returns the fastest
/// estimate.
pub fn tuned_case_study_estimate(
    model: &TransformerModel,
    system: &SystemSpec,
    parallelism: &Parallelism,
    global_batch: usize,
) -> Result<Estimate> {
    let replica = (global_batch / parallelism.dp()).max(1);
    let mut best: Option<Estimate> = None;
    let mut ub = 1usize;
    while ub <= replica {
        let n_ub = replica.div_ceil(ub);
        let candidate = parallelism.with_microbatches(MicrobatchPolicy::Explicit(n_ub));
        let e = case_study_estimate(model, system, &candidate, global_batch)?;
        if best
            .as_ref()
            .map(|b| e.total_time.get() < b.total_time.get())
            .unwrap_or(true)
        {
            best = Some(e);
        }
        ub *= 2;
    }
    Ok(best.expect("at least one candidate evaluated"))
}

/// Write `content` to `results/<name>` under the workspace root, creating
/// the directory if needed. Prints the path written. Errors are reported to
/// stderr but do not abort an experiment (results also go to stdout).
pub fn write_result_file(name: &str, content: &str) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(content.as_bytes())) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_configs::published;

    #[test]
    fn case_study_batch_counts() {
        let t = case_study_training(16384);
        // 300e9 / (16384 * 2048) = 8940.7 -> rounded up
        assert_eq!(t.num_batches(), 8941);
    }

    #[test]
    fn table2_rows_all_estimate() {
        for row in published::table2_rows() {
            let e = table2_estimate(&row).unwrap();
            assert!(e.tflops_per_gpu > 50.0 && e.tflops_per_gpu < 400.0);
        }
    }

    #[test]
    fn fig2c_monotone_in_ub() {
        let lo = fig2c_estimate(2.0).unwrap();
        let hi = fig2c_estimate(32.0).unwrap();
        assert!(hi.tflops_per_gpu > lo.tflops_per_gpu);
    }
}
