//! Keeps the criterion benches compiling and runnable: a single-iteration
//! `cargo bench -- --test` smoke run of the search bench, so bench rot is
//! caught by the ordinary test flow instead of at measurement time.

use std::path::Path;
use std::process::Command;

fn smoke_run(bench: &str, ids: &[&str]) {
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let output = Command::new(cargo)
        .current_dir(&root)
        .args([
            "bench",
            "--offline",
            "-p",
            "amped-bench",
            "--bench",
            bench,
            "--",
            "--test",
        ])
        .output()
        .expect("cargo bench spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "cargo bench --test failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    for id in ids {
        assert!(
            stdout.contains(&format!("{id}: test passed")),
            "missing smoke line for {id}\nstdout:\n{stdout}"
        );
    }
}

#[test]
fn search_bench_smoke_run_passes() {
    smoke_run(
        "search",
        &[
            "search/enumerate_128x8",
            "search/rank_all_16x8",
            "search/rank_all_16x8_serial",
        ],
    );
}

#[test]
fn estimator_bench_smoke_run_covers_the_batched_path() {
    smoke_run(
        "estimator",
        &[
            "scalar_vs_batched/evaluate_loop",
            "scalar_vs_batched/evaluate_many",
        ],
    );
}
