//! Property test for the branch-and-bound invariant: the lower bound
//! (compute plus the variant-invariant TP-communication floor) never
//! exceeds the full estimate, for any valid mapping of a random scenario.
//! Against the memoized path the inequality must hold EXACTLY in f64 (that
//! is what makes pruning lossless); against the uncached reference path,
//! which sums in a different association, it holds up to float
//! associativity.

use amped_core::{
    AcceleratorSpec, EfficiencyModel, EngineOptions, EstimateCache, Estimator, Link, MoeConfig,
    SystemSpec, TrainingConfig, TransformerModel,
};
use amped_search::{enumerate_mappings, EnumerationOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lower_bound_never_exceeds_full_estimate(
        (layers, heads, hidden_per_head) in (2usize..24, 0usize..3, 8usize..65),
        (seq_exp, vocab, batch_exp) in (6u32..10, 1000usize..60000, 4u32..10),
        (nodes_exp, per_node_exp) in (0u32..3, 1u32..4),
        (experts, recompute, imbalance) in (0usize..5, 0u8..2, 0u8..2),
        (eff_floor, eff_span) in (0.05f64..0.5, 0.1f64..0.5),
    ) {
        let heads = [4usize, 8, 16][heads];
        let mut builder = TransformerModel::builder("prop-m");
        builder
            .layers(layers)
            .hidden_size(heads * hidden_per_head)
            .heads(heads)
            .seq_len(1 << seq_exp)
            .vocab_size(vocab);
        if experts > 1 {
            builder.moe(MoeConfig::glam(experts));
        }
        let Ok(model) = builder.build() else { return Ok(()); };
        let accel = AcceleratorSpec::builder("prop-a")
            .frequency_hz(1e9)
            .cores(64)
            .mac_units(4, 256, 8)
            .nonlin_units(64, 4, 32)
            .memory(80e9, 2e12)
            .build()
            .expect("fixed accelerator is valid");
        let Ok(system) = SystemSpec::new(
            1 << nodes_exp,
            1 << per_node_exp,
            Link::new(1e-6, 2.4e12),
            Link::new(1e-5, 2e11),
            1 << per_node_exp,
        ) else { return Ok(()); };
        let training = TrainingConfig::new(1 << batch_exp, 3).expect("valid");
        let efficiency = EfficiencyModel::saturating(
            0.95,
            4.0,
            eff_floor,
            (eff_floor + eff_span).min(0.99),
        );
        let options = EngineOptions {
            activation_recompute: recompute == 1,
            stage_imbalance_correction: imbalance == 1,
            ..Default::default()
        };

        let mappings = enumerate_mappings(&system, &model, &EnumerationOptions::default());
        prop_assert!(!mappings.is_empty());
        let mut cache = EstimateCache::new();
        for p in &mappings {
            let estimator = Estimator::new(&model, &accel, &system, p)
                .with_efficiency(efficiency.clone())
                .with_options(options);
            let lb = estimator.compute_lower_bound(&mut cache, &training);
            let Ok(lb) = lb else { continue };
            let cached = estimator
                .estimate_cached(&mut cache, &training)
                .expect("bound computed, so the estimate must too");
            let plain = estimator.estimate(&training).expect("same");
            // Exact against the memoized path the pruner compares with:
            prop_assert!(
                lb.get() <= cached.total_time.get(),
                "lb {} > cached total {} for {:?}",
                lb.get(), cached.total_time.get(), p
            );
            // Up to associativity against the uncached reference:
            prop_assert!(
                lb.get() <= plain.total_time.get() * (1.0 + 1e-9),
                "lb {} > plain total {} for {:?}",
                lb.get(), plain.total_time.get(), p
            );
            prop_assert!(lb.get() >= 0.0);
            // The bound's TP floor is built from the very terms the
            // estimate reports (they are microbatch-variant-invariant), so
            // the stronger inequality also holds exactly in f64: the bound
            // never exceeds compute + TP communication of the estimate —
            // not just its grand total.
            let b = &cached.breakdown;
            let floor = (b.compute_total() + (b.tp_comm_intra + b.tp_comm_inter))
                * training.num_batches() as f64;
            prop_assert!(
                lb.get() <= floor,
                "lb {} > compute+TP floor {} for {:?}",
                lb.get(), floor, p
            );
        }
    }
}
