//! The acceptance fixture for the parallel/pruned/memoized search path:
//! Megatron 145B on a 16×8 A100/HDR cluster. Whatever combination of worker
//! count and pruning is used, the ranking must be byte-identical — same
//! candidates, same order, same times to the bit.

use amped_configs::{accelerators, efficiency, models, systems};
use amped_core::{ElasticParams, FailureDomainTree, TrainingConfig};
use amped_search::{Candidate, DomainGoodput, GoodputOptions, PlacementChoice, SearchEngine};
use amped_sim::FaultPlan;

fn degrees(c: &Candidate) -> [usize; 6] {
    let p = &c.parallelism;
    [
        p.tp_intra(),
        p.tp_inter(),
        p.pp_intra(),
        p.pp_inter(),
        p.dp_intra(),
        p.dp_inter(),
    ]
}

fn assert_bit_identical(a: &[Candidate], b: &[Candidate]) {
    assert_eq!(a.len(), b.len(), "ranking lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(degrees(x), degrees(y), "candidate {i} differs");
        assert_eq!(
            x.estimate.total_time.get().to_bits(),
            y.estimate.total_time.get().to_bits(),
            "total time of candidate {i} differs"
        );
        assert_eq!(
            x.estimate.time_per_iteration.get().to_bits(),
            y.estimate.time_per_iteration.get().to_bits(),
            "iteration time of candidate {i} differs"
        );
        assert_eq!(x.estimate.num_microbatches, y.estimate.num_microbatches);
        assert_eq!(x.fits_memory, y.fits_memory);
        assert_eq!(
            x.energy.total_joules().to_bits(),
            y.energy.total_joules().to_bits(),
            "energy of candidate {i} differs"
        );
    }
}

#[test]
fn megatron_145b_parallel_search_is_bit_identical_to_serial() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let base = SearchEngine::new(&model, &a100, &system).with_efficiency(efficiency::case_study());

    // Without pruning: the parallel ranking equals the serial one bitwise.
    let serial = base.clone().with_parallelism(1).search(&training).unwrap();
    assert!(serial.len() > 10, "fixture should rank many mappings");
    let parallel = base.clone().with_parallelism(4).search(&training).unwrap();
    assert_bit_identical(&serial, &parallel);

    // With pruning: still deterministic across worker counts, still led by
    // the same winner, and a subset of the full ranking.
    let pruned_serial = base
        .clone()
        .with_pruning(true)
        .with_parallelism(1)
        .search(&training)
        .unwrap();
    let pruned_parallel = base
        .clone()
        .with_pruning(true)
        .with_parallelism(4)
        .search(&training)
        .unwrap();
    assert_bit_identical(&pruned_serial, &pruned_parallel);
    assert!(!pruned_serial.is_empty());
    assert!(pruned_serial.len() <= serial.len());
    assert_eq!(degrees(&pruned_serial[0]), degrees(&serial[0]));
    assert_eq!(
        pruned_serial[0].estimate.total_time.get().to_bits(),
        serial[0].estimate.total_time.get().to_bits()
    );
}

/// Acceptance criterion for simulator-refined search: `--refine-sim 8` on
/// the megatron-145b 16×8 fixture yields identical refined rankings at one
/// worker and at four.
#[test]
fn megatron_145b_refined_search_is_bit_identical_to_serial() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(512, 1).expect("valid");
    let base = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .with_memory_filter(true)
        .with_refine_sim(8);

    let serial = base.clone().with_parallelism(1).search(&training).unwrap();
    let parallel = base.clone().with_parallelism(4).search(&training).unwrap();
    assert_bit_identical(&serial, &parallel);
    assert!(serial.len() >= 8, "fixture should rank at least the refined block");
    for (i, (x, y)) in serial.iter().zip(&parallel).enumerate() {
        match (&x.refined, &y.refined) {
            (Some(rx), Some(ry)) => assert_eq!(
                rx.total_time.get().to_bits(),
                ry.total_time.get().to_bits(),
                "refined time of candidate {i} differs"
            ),
            (None, None) => {}
            _ => panic!("refinement outcome of candidate {i} differs across worker counts"),
        }
    }
    // The refined block actually carries simulator estimates, and they rank it.
    assert!(serial[..8].iter().any(|c| c.refined.is_some()));
    for w in serial[..8].windows(2) {
        if let (Some(x), Some(y)) = (&w[0].refined, &w[1].refined) {
            assert!(x.total_time.get() <= y.total_time.get());
        }
    }
}

/// Fault injection must not cost determinism: the same fault seed through
/// simulator-refined search yields bit-identical timelines (and therefore
/// refined totals) at any worker count, and two different seeds are
/// allowed to — and here do — diverge.
#[test]
fn megatron_145b_fault_seeded_refinement_is_bit_identical_at_any_worker_count() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(512, 2).expect("valid");
    let plan = FaultPlan::seeded(0xFA17)
        .with_random_stragglers(3, 2.0)
        .with_device_mtbf(24.0 * 3600.0)
        .with_restart(120.0);
    let base = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .with_memory_filter(true)
        .with_refine_sim(6)
        .with_fault_plan(plan.clone());

    let serial = base.clone().with_parallelism(1).search(&training).unwrap();
    for jobs in [2, 4] {
        let parallel = base.clone().with_parallelism(jobs).search(&training).unwrap();
        assert_bit_identical(&serial, &parallel);
        for (i, (x, y)) in serial.iter().zip(&parallel).enumerate() {
            match (&x.refined, &y.refined) {
                (Some(rx), Some(ry)) => assert_eq!(
                    rx.total_time.get().to_bits(),
                    ry.total_time.get().to_bits(),
                    "fault-refined time of candidate {i} differs at jobs={jobs}"
                ),
                (None, None) => {}
                _ => panic!("refinement outcome of candidate {i} differs at jobs={jobs}"),
            }
        }
    }

    // Injected faults actually moved the refined block relative to a clean
    // refinement pass — this test must not vacuously compare no-ops.
    let clean = base
        .clone()
        .with_fault_plan(FaultPlan::none())
        .with_parallelism(1)
        .search(&training)
        .unwrap();
    let slowed = serial
        .iter()
        .zip(&clean)
        .filter_map(|(f, c)| Some((f.refined.as_ref()?, c.refined.as_ref()?)))
        .filter(|(f, c)| f.total_time.get() > c.total_time.get())
        .count();
    assert!(slowed > 0, "seeded stragglers must slow some refined candidate");
}

/// Goodput-objective searches stay deterministic too: the expected-time
/// ranking (a per-candidate analytical transform) is bit-identical across
/// worker counts, with and without pruning.
#[test]
fn megatron_145b_goodput_ranking_is_bit_identical_at_any_worker_count() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let base = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .with_goodput(GoodputOptions::new(4380.0 * 3600.0));

    let serial = base.clone().with_parallelism(1).search(&training).unwrap();
    assert!(serial.iter().all(|c| c.resilience.is_some()));

    // Unpruned: the whole ranking is bit-identical across worker counts.
    let parallel = base.clone().with_parallelism(4).search(&training).unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (x, y) in parallel.iter().zip(&serial) {
        assert_eq!(degrees(x), degrees(y));
        assert_eq!(
            x.objective_time().to_bits(),
            y.objective_time().to_bits(),
            "expected-time objective differs across worker counts"
        );
    }

    // Pruned: deterministic across worker counts and led by the same
    // expected-time winner as the full ranking.
    let pruned_serial = base
        .clone()
        .with_pruning(true)
        .with_parallelism(1)
        .search(&training)
        .unwrap();
    let pruned_parallel = base
        .clone()
        .with_pruning(true)
        .with_parallelism(4)
        .search(&training)
        .unwrap();
    assert_eq!(pruned_serial.len(), pruned_parallel.len());
    for (x, y) in pruned_serial.iter().zip(&pruned_parallel) {
        assert_eq!(degrees(x), degrees(y));
        assert_eq!(x.objective_time().to_bits(), y.objective_time().to_bits());
    }
    assert!(!pruned_serial.is_empty());
    assert_eq!(degrees(&pruned_serial[0]), degrees(&serial[0]));
    assert_eq!(
        pruned_serial[0].objective_time().to_bits(),
        serial[0].objective_time().to_bits()
    );
}

/// Acceptance criterion for the failure-domain layer: `search --goodput`
/// with a domain tree — placement enumeration, correlated tiers, elastic
/// preemptions and all — is bit-identical at any worker count, and the
/// degenerate all-in-one-domain tree reproduces the plain goodput ranking
/// bit for bit.
#[test]
fn megatron_145b_domain_goodput_ranking_is_bit_identical_at_any_worker_count() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let tree = FailureDomainTree::new(16, 4, 2)
        .unwrap()
        .with_rack_mtbf(0.5 * 365.25 * 86400.0)
        .with_pod_mtbf(2.0 * 365.25 * 86400.0);
    let domains = DomainGoodput {
        tree,
        elastic: Some(ElasticParams::new(600.0).with_preemption_mtbf(60.0 * 86400.0)),
        placement: PlacementChoice::Auto,
    };
    let base = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .with_goodput(GoodputOptions::new(4380.0 * 3600.0).with_failure_domains(domains));

    let serial = base.clone().with_parallelism(1).search(&training).unwrap();
    assert!(serial.iter().all(|c| c.resilience.is_some()));
    for jobs in [2, 4] {
        let parallel = base.clone().with_parallelism(jobs).search(&training).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (x, y) in parallel.iter().zip(&serial) {
            assert_eq!(degrees(x), degrees(y));
            assert_eq!(
                x.objective_time().to_bits(),
                y.objective_time().to_bits(),
                "domain-placed expected time differs at jobs={jobs}"
            );
        }
    }

    // Correlated tiers must actually move the objective off the plain
    // goodput ranking's values.
    let plain_engine = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .with_goodput(GoodputOptions::new(4380.0 * 3600.0));
    let plain = plain_engine.clone().with_parallelism(1).search(&training).unwrap();
    assert!(
        serial
            .iter()
            .zip(plain.iter())
            .any(|(d, p)| d.objective_time() != p.objective_time()),
        "domain tiers should perturb expected times"
    );

    // Degenerate tree (every device in one domain, no tier rates, no
    // preemption): the correlated path must reproduce the independent-
    // exponential goodput ranking bit for bit.
    let degenerate = SearchEngine::new(&model, &a100, &system)
        .with_efficiency(efficiency::case_study())
        .with_goodput(GoodputOptions::new(4380.0 * 3600.0).with_failure_domains(
            DomainGoodput {
                tree: FailureDomainTree::single_domain(16),
                elastic: None,
                placement: PlacementChoice::Auto,
            },
        ))
        .with_parallelism(1)
        .search(&training)
        .unwrap();
    assert_eq!(degenerate.len(), plain.len());
    for (x, y) in degenerate.iter().zip(&plain) {
        assert_eq!(degrees(x), degrees(y));
        assert_eq!(
            x.objective_time().to_bits(),
            y.objective_time().to_bits(),
            "degenerate domain tree must not perturb the goodput objective"
        );
        let (rx, ry) = (x.resilience.as_ref().unwrap(), y.resilience.as_ref().unwrap());
        assert_eq!(rx.expected_s.to_bits(), ry.expected_s.to_bits());
        assert_eq!(rx.interval_s.to_bits(), ry.interval_s.to_bits());
    }
}

#[test]
fn megatron_145b_best_agrees_across_modes() {
    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let base = SearchEngine::new(&model, &a100, &system).with_efficiency(efficiency::case_study());

    let reference = base
        .clone()
        .with_parallelism(1)
        .best(&training)
        .unwrap()
        .expect("fixture has a winner");
    for engine in [
        base.clone().with_parallelism(4),
        base.clone().with_pruning(true),
        base.clone().with_parallelism(4).with_pruning(true),
    ] {
        let b = engine.best(&training).unwrap().expect("winner");
        assert_eq!(degrees(&b), degrees(&reference));
        assert_eq!(
            b.estimate.total_time.get().to_bits(),
            reference.estimate.total_time.get().to_bits()
        );
    }
}

#[test]
fn shared_cache_pool_is_bit_identical_cold_and_warm() {
    use std::sync::Arc;

    let model = models::megatron_145b();
    let a100 = accelerators::a100();
    let system = systems::a100_hdr_cluster(16, 8);
    let training = TrainingConfig::new(2048, 1).expect("valid");
    let base = SearchEngine::new(&model, &a100, &system).with_efficiency(efficiency::case_study());

    let reference = base.clone().with_parallelism(1).search(&training).unwrap();

    let pool = Arc::new(amped_core::CachePool::new());
    // Cold pass fills the pool; the warm pass re-leases the same caches.
    let cold = base
        .clone()
        .with_parallelism(4)
        .with_cache_pool(Arc::clone(&pool))
        .search(&training)
        .unwrap();
    assert_bit_identical(&reference, &cold);
    assert!(pool.shelved() > 0, "cold pass should shelve warmed caches");

    let warm = base
        .clone()
        .with_parallelism(4)
        .with_cache_pool(Arc::clone(&pool))
        .search(&training)
        .unwrap();
    assert_bit_identical(&reference, &warm);
    assert!(
        pool.warm_checkouts() > 0,
        "warm pass should reuse shelved caches"
    );
    assert_eq!(pool.lookups(), pool.hits() + pool.misses());
}
