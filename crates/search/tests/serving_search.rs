//! Determinism and correctness pins for the serving-mapping search.

use std::sync::Arc;

use amped_core::{AcceleratorSpec, Link, Parallelism, Precision, SystemSpec, TransformerModel};
use amped_infer::InferenceConfig;
use amped_obs::Observer;
use amped_search::{serving_pareto_front, ServingCandidate, ServingSearch, ServingSweepOptions};

fn model() -> TransformerModel {
    TransformerModel::builder("serve-search")
        .layers(24)
        .hidden_size(2048)
        .heads(16)
        .seq_len(2048)
        .vocab_size(50257)
        .build()
        .unwrap()
}

fn a100() -> AcceleratorSpec {
    AcceleratorSpec::builder("A100")
        .frequency_hz(1.41e9)
        .cores(108)
        .mac_units(4, 512, 8)
        .nonlin_units(192, 4, 32)
        .memory(80e9, 2.0e12)
        .build()
        .unwrap()
}

fn system() -> SystemSpec {
    SystemSpec::new(2, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8).unwrap()
}

fn request() -> InferenceConfig {
    InferenceConfig::new(512, 128, 1).unwrap()
}

fn fingerprint(ranked: &[ServingCandidate]) -> Vec<(u64, [usize; 3], usize)> {
    ranked
        .iter()
        .map(|c| {
            (
                c.estimate.request_latency.get().to_bits(),
                [c.parallelism.tp(), c.parallelism.pp(), c.parallelism.dp()],
                c.batch,
            )
        })
        .collect()
}

#[test]
fn rankings_are_bit_identical_at_any_jobs_and_pruning() {
    let (m, a, s) = (model(), a100(), system());
    let (reference, want_stats) = ServingSearch::new(&m, &a, &s)
        .with_parallelism(1)
        .search_with_stats(&request())
        .unwrap();
    assert!(!reference.is_empty());
    let want = fingerprint(&reference);
    for jobs in [2, 4, 0] {
        for prune in [false, true] {
            let (got, stats) = ServingSearch::new(&m, &a, &s)
                .with_parallelism(jobs)
                .with_pruning(prune)
                .search_with_stats(&request())
                .unwrap();
            assert_eq!(
                fingerprint(&got),
                want,
                "ranking diverged at jobs={jobs} prune={prune}"
            );
            // The accounting ships in the artifact, so it is held to the
            // same bit-identity bar as the ranking itself.
            assert_eq!(stats, want_stats, "stats diverged at jobs={jobs} prune={prune}");
        }
    }
}

#[test]
fn ranking_is_led_by_the_latency_optimum_and_sorted() {
    let (m, a, s) = (model(), a100(), system());
    let ranked = ServingSearch::new(&m, &a, &s).search(&request()).unwrap();
    for pair in ranked.windows(2) {
        assert!(pair[0].objective_time() <= pair[1].objective_time());
    }
    // Every kept point fits memory under the default filter.
    assert!(ranked.iter().all(|c| c.fits_memory));
}

#[test]
fn stats_identity_holds() {
    let (m, a, s) = (model(), a100(), system());
    let (ranked, stats) = ServingSearch::new(&m, &a, &s)
        .with_pruning(true)
        .search_with_stats(&request())
        .unwrap();
    assert_eq!(stats.kept, ranked.len() as u64);
    assert_eq!(
        stats.generated,
        stats.pruned + stats.kept + stats.memory_rejected.total()
    );
}

#[test]
fn observer_is_passive_and_counts() {
    let (m, a, s) = (model(), a100(), system());
    let bare = ServingSearch::new(&m, &a, &s).search(&request()).unwrap();
    let obs = Arc::new(Observer::new());
    let observed = ServingSearch::new(&m, &a, &s)
        .with_observer(obs.clone())
        .search(&request())
        .unwrap();
    assert_eq!(fingerprint(&bare), fingerprint(&observed));
    let counters = obs.counters();
    assert_eq!(
        counters["infer.search.candidates.generated"],
        counters["infer.search.candidates.pruned"]
            + counters["infer.search.candidates.kept"]
            + counters["infer.search.candidates.memory_rejected"]
    );
}

#[test]
fn pareto_front_is_nondominated_and_contains_the_optimum() {
    let (m, a, s) = (model(), a100(), system());
    let ranked = ServingSearch::new(&m, &a, &s)
        .with_sweep(ServingSweepOptions {
            max_batch: 32,
            ..ServingSweepOptions::default()
        })
        .search(&request())
        .unwrap();
    let front = serving_pareto_front(&ranked);
    assert!(!front.is_empty());
    // The latency winner's ttft+tpot cannot be dominated on all axes.
    assert!(front
        .iter()
        .any(|c| c.objective_time() == ranked[0].objective_time()));
    // No front member dominates another.
    let key = |c: &ServingCandidate| {
        [
            c.estimate.ttft.get(),
            c.estimate.tpot.get(),
            -c.estimate.tokens_per_sec,
            c.estimate.memory_total(),
        ]
    };
    for x in &front {
        for y in &front {
            let (kx, ky) = (key(x), key(y));
            let dominates = kx.iter().zip(&ky).all(|(a, b)| a <= b)
                && kx.iter().zip(&ky).any(|(a, b)| a < b);
            assert!(!dominates, "pareto front member dominates another");
        }
    }
}

#[test]
fn bigger_batches_trade_latency_for_throughput() {
    let (m, a, s) = (model(), a100(), system());
    let ranked = ServingSearch::new(&m, &a, &s)
        .with_precision(Precision::fp16())
        .search(&request())
        .unwrap();
    // Fix one mapping and compare its batch ladder.
    let mapping: Parallelism = ranked[0].parallelism;
    let ladder: Vec<&ServingCandidate> = ranked
        .iter()
        .filter(|c| {
            c.parallelism.tp() == mapping.tp()
                && c.parallelism.pp() == mapping.pp()
                && c.parallelism.dp() == mapping.dp()
        })
        .collect();
    assert!(ladder.len() >= 2);
    let small = ladder.iter().min_by_key(|c| c.batch).unwrap();
    let large = ladder.iter().max_by_key(|c| c.batch).unwrap();
    assert!(large.batch > small.batch);
    assert!(large.estimate.tokens_per_sec > small.estimate.tokens_per_sec);
    assert!(large.estimate.tpot.get() >= small.estimate.tpot.get());
}
