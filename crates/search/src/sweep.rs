//! Parameter sweeps — the machinery behind the paper's case-study figures,
//! packaged for reuse: evaluate a set of mappings across a set of batch
//! sizes and emit labelled series.

use amped_core::{Estimate, Parallelism, Result, TrainingConfig};

use crate::{Candidate, SearchEngine};

/// One evaluated sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The mapping label supplied by the caller.
    pub label: String,
    /// Global batch size of this point.
    pub global_batch: usize,
    /// The (microbatch-tuned) estimate.
    pub estimate: Estimate,
}

/// A grid of mappings × batch sizes, evaluated through a [`SearchEngine`]'s
/// configuration (efficiency, precision, engine options, power model).
#[derive(Debug, Clone)]
pub struct Sweep {
    points: Vec<SweepPoint>,
    batches: Vec<usize>,
    labels: Vec<String>,
}

impl Sweep {
    /// Evaluate every `(mapping, batch)` pair. Each mapping is evaluated
    /// through [`SearchEngine::evaluate_one`] (microbatch tuning included).
    ///
    /// # Errors
    ///
    /// Propagates estimator errors; a mapping invalid for the engine's
    /// system/model is an error (sweeps are explicit, unlike enumeration).
    pub fn run(
        engine: &SearchEngine<'_>,
        mappings: &[(String, Parallelism)],
        batches: &[usize],
        num_batches: u64,
    ) -> Result<Sweep> {
        let mut points = Vec::with_capacity(mappings.len() * batches.len());
        for (label, mapping) in mappings {
            for &batch in batches {
                let training = TrainingConfig::new(batch, num_batches)?;
                let candidate = engine.evaluate_one(mapping, &training)?;
                points.push(SweepPoint {
                    label: label.clone(),
                    global_batch: batch,
                    estimate: candidate.estimate,
                });
            }
        }
        Ok(Sweep {
            points,
            batches: batches.to_vec(),
            labels: mappings.iter().map(|(l, _)| l.clone()).collect(),
        })
    }

    /// All evaluated points.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The series for one mapping label: `(batch, total days)` pairs in
    /// batch order.
    pub fn days_series(&self, label: &str) -> Vec<(f64, f64)> {
        self.batches
            .iter()
            .filter_map(|&b| {
                self.points
                    .iter()
                    .find(|p| p.label == label && p.global_batch == b)
                    .map(|p| (b as f64, p.estimate.days()))
            })
            .collect()
    }

    /// Labels in insertion order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The fastest mapping at each batch size: `(batch, label)`.
    pub fn winners(&self) -> Vec<(usize, &str)> {
        self.batches
            .iter()
            .filter_map(|&b| {
                self.points
                    .iter()
                    .filter(|p| p.global_batch == b)
                    .min_by(|x, y| {
                        x.estimate
                            .total_time
                            .get()
                            .partial_cmp(&y.estimate.total_time.get())
                            .expect("finite")
                    })
                    .map(|p| (b, p.label.as_str()))
            })
            .collect()
    }

    /// Render as CSV: one row per batch, one column per label (days).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("batch");
        for l in &self.labels {
            out.push(',');
            out.push_str(l);
        }
        for &b in &self.batches {
            out.push('\n');
            out.push_str(&b.to_string());
            for l in &self.labels {
                out.push(',');
                if let Some(p) = self
                    .points
                    .iter()
                    .find(|p| &p.label == l && p.global_batch == b)
                {
                    out.push_str(&format!("{:.3}", p.estimate.days()));
                }
            }
        }
        out
    }
}

/// Re-export point: evaluate a single explicit mapping through the engine
/// (used by [`Sweep::run`] and callers that need one-off evaluations with
/// the engine's configuration).
impl<'a> SearchEngine<'a> {
    /// Evaluate one explicit mapping (with microbatch tuning if enabled).
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping does not fit the engine's
    /// system/model or any component fails validation.
    pub fn evaluate_one(
        &self,
        mapping: &Parallelism,
        training: &TrainingConfig,
    ) -> Result<Candidate> {
        self.evaluate(mapping, training)?.ok_or_else(|| {
            amped_core::Error::incompatible(
                "mapping was filtered out (exceeds device memory under every microbatch size)",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::{AcceleratorSpec, EfficiencyModel, Link, SystemSpec, TransformerModel};

    fn fixture() -> (TransformerModel, AcceleratorSpec, SystemSpec) {
        let model = TransformerModel::builder("sweep-m")
            .layers(16)
            .hidden_size(1024)
            .heads(16)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("sweep-a")
            .frequency_hz(1e9)
            .cores(32)
            .mac_units(4, 128, 8)
            .nonlin_units(32, 8, 32)
            .memory(32e9, 1e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(4, 4, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 4).unwrap();
        (model, accel, system)
    }

    #[test]
    fn sweep_covers_the_grid() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 4).build().unwrap(),
            ),
        ];
        let batches = [64usize, 128, 256];
        let sweep = Sweep::run(&engine, &mappings, &batches, 10).unwrap();
        assert_eq!(sweep.points().len(), 6);
        assert_eq!(sweep.days_series("dp").len(), 3);
        assert_eq!(sweep.winners().len(), 3);
        let csv = sweep.to_csv();
        assert!(csv.starts_with("batch,dp,pp"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn winners_are_the_fastest() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "tp-inter".to_string(),
                Parallelism::builder().tp(4, 4).build().unwrap(),
            ),
        ];
        let sweep = Sweep::run(&engine, &mappings, &[256], 1).unwrap();
        // TP across slow links loses; the winner at every batch is dp.
        for (_, w) in sweep.winners() {
            assert_eq!(w, "dp");
        }
    }

    #[test]
    fn evaluate_one_rejects_misfit_mappings() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system);
        let wrong = Parallelism::builder().tp(2, 1).build().unwrap(); // 2 != 4
        assert!(engine
            .evaluate_one(&wrong, &TrainingConfig::new(64, 1).unwrap())
            .is_err());
    }
}
