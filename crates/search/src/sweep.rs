//! Parameter sweeps — the machinery behind the paper's case-study figures,
//! packaged for reuse: evaluate a set of mappings across a set of batch
//! sizes and emit labelled series.

use std::collections::HashMap;

use amped_core::{Estimate, Parallelism, Result, TrainingConfig};

use crate::{Candidate, SearchEngine};

/// One evaluated sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The mapping label supplied by the caller.
    pub label: String,
    /// Global batch size of this point.
    pub global_batch: usize,
    /// The (microbatch-tuned) estimate.
    pub estimate: Estimate,
}

/// A grid of mappings × batch sizes, evaluated through a [`SearchEngine`]'s
/// configuration (efficiency, precision, engine options, power model).
///
/// Points are stored label-major, batch-minor, so every `(label, batch)`
/// cell resolves in O(1) through the label index built at construction —
/// [`Sweep::days_series`], [`Sweep::winners`] and [`Sweep::to_csv`] never
/// scan the full point list.
#[derive(Debug, Clone)]
pub struct Sweep {
    points: Vec<SweepPoint>,
    batches: Vec<usize>,
    labels: Vec<String>,
    /// Label → row index (first occurrence wins for duplicate labels).
    label_index: HashMap<String, usize>,
}

impl Sweep {
    /// Evaluate every `(mapping, batch)` pair over the engine's worker pool
    /// (see [`SearchEngine::with_parallelism`]). Each mapping is evaluated
    /// through [`SearchEngine::evaluate_one`] semantics (microbatch tuning
    /// included); results are ordered label-major, batch-minor regardless
    /// of worker count.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors; a mapping invalid for the engine's
    /// system/model is an error (sweeps are explicit, unlike enumeration).
    pub fn run(
        engine: &SearchEngine<'_>,
        mappings: &[(String, Parallelism)],
        batches: &[usize],
        num_batches: u64,
    ) -> Result<Sweep> {
        let mut trainings = Vec::with_capacity(batches.len());
        for &batch in batches {
            trainings.push(TrainingConfig::new(batch, num_batches)?);
        }
        let cells = engine.evaluate_grid(mappings, &trainings)?;
        let mut points = Vec::with_capacity(mappings.len() * batches.len());
        for (row, candidates) in cells.chunks(batches.len().max(1)).enumerate() {
            let (label, _) = &mappings[row];
            for (col, candidate) in candidates.iter().enumerate() {
                points.push(SweepPoint {
                    label: label.clone(),
                    global_batch: batches[col],
                    estimate: candidate.estimate.clone(),
                });
            }
        }
        let mut label_index = HashMap::with_capacity(mappings.len());
        for (row, (label, _)) in mappings.iter().enumerate() {
            label_index.entry(label.clone()).or_insert(row);
        }
        Ok(Sweep {
            points,
            batches: batches.to_vec(),
            labels: mappings.iter().map(|(l, _)| l.clone()).collect(),
            label_index,
        })
    }

    /// All evaluated points (label-major, batch-minor).
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The point at `(row, col)` of the label × batch grid.
    fn cell(&self, row: usize, col: usize) -> &SweepPoint {
        &self.points[row * self.batches.len() + col]
    }

    /// The series for one mapping label: `(batch, total days)` pairs in
    /// batch order (empty for an unknown label).
    pub fn days_series(&self, label: &str) -> Vec<(f64, f64)> {
        let Some(&row) = self.label_index.get(label) else {
            return Vec::new();
        };
        (0..self.batches.len())
            .map(|col| {
                let p = self.cell(row, col);
                (self.batches[col] as f64, p.estimate.days())
            })
            .collect()
    }

    /// Labels in insertion order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The fastest mapping at each batch size: `(batch, label)`.
    pub fn winners(&self) -> Vec<(usize, &str)> {
        (0..self.batches.len())
            .filter_map(|col| {
                (0..self.labels.len())
                    .map(|row| self.cell(row, col))
                    .min_by(|x, y| {
                        x.estimate
                            .total_time
                            .get()
                            .partial_cmp(&y.estimate.total_time.get())
                            .expect("finite")
                    })
                    .map(|p| (self.batches[col], p.label.as_str()))
            })
            .collect()
    }

    /// Render as CSV: one row per batch, one column per label (days).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("batch");
        for l in &self.labels {
            out.push(',');
            out.push_str(l);
        }
        for (col, &b) in self.batches.iter().enumerate() {
            out.push('\n');
            out.push_str(&b.to_string());
            for row in 0..self.labels.len() {
                out.push(',');
                let p = self.cell(row, col);
                out.push_str(&format!("{:.3}", p.estimate.days()));
            }
        }
        out
    }
}

/// Re-export point: evaluate a single explicit mapping through the engine
/// (used by [`Sweep::run`] and callers that need one-off evaluations with
/// the engine's configuration).
impl<'a> SearchEngine<'a> {
    /// Evaluate one explicit mapping (with microbatch tuning if enabled).
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping does not fit the engine's
    /// system/model or any component fails validation.
    pub fn evaluate_one(
        &self,
        mapping: &Parallelism,
        training: &TrainingConfig,
    ) -> Result<Candidate> {
        let mut cache = amped_core::EstimateCache::new();
        self.evaluate(&mut cache, mapping, training)?.ok_or_else(|| {
            amped_core::Error::incompatible(
                "mapping was filtered out (exceeds device memory under every microbatch size)",
            )
        })
    }

    /// Evaluate a mappings × trainings grid over the worker pool, returning
    /// candidates mapping-major in deterministic order. Pruning does not
    /// apply here — a sweep reports *every* cell.
    pub(crate) fn evaluate_grid(
        &self,
        mappings: &[(String, Parallelism)],
        trainings: &[TrainingConfig],
    ) -> Result<Vec<Candidate>> {
        let cols = trainings.len();
        let results = self.run_parallel(mappings.len() * cols, |cache, i| {
            let (row, col) = (i / cols.max(1), i % cols.max(1));
            self.evaluate(cache, &mappings[row].1, &trainings[col])?
                .ok_or_else(|| {
                    amped_core::Error::incompatible(
                        "mapping was filtered out (exceeds device memory under every microbatch \
                         size)",
                    )
                })
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::{AcceleratorSpec, EfficiencyModel, Link, SystemSpec, TransformerModel};

    fn fixture() -> (TransformerModel, AcceleratorSpec, SystemSpec) {
        let model = TransformerModel::builder("sweep-m")
            .layers(16)
            .hidden_size(1024)
            .heads(16)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("sweep-a")
            .frequency_hz(1e9)
            .cores(32)
            .mac_units(4, 128, 8)
            .nonlin_units(32, 8, 32)
            .memory(32e9, 1e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(4, 4, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 4).unwrap();
        (model, accel, system)
    }

    #[test]
    fn sweep_covers_the_grid() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 4).build().unwrap(),
            ),
        ];
        let batches = [64usize, 128, 256];
        let sweep = Sweep::run(&engine, &mappings, &batches, 10).unwrap();
        assert_eq!(sweep.points().len(), 6);
        assert_eq!(sweep.days_series("dp").len(), 3);
        assert_eq!(sweep.days_series("unknown").len(), 0);
        assert_eq!(sweep.winners().len(), 3);
        let csv = sweep.to_csv();
        assert!(csv.starts_with("batch,dp,pp"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn winners_are_the_fastest() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "tp-inter".to_string(),
                Parallelism::builder().tp(4, 4).build().unwrap(),
            ),
        ];
        let sweep = Sweep::run(&engine, &mappings, &[256], 1).unwrap();
        // TP across slow links loses; the winner at every batch is dp.
        for (_, w) in sweep.winners() {
            assert_eq!(w, "dp");
        }
    }

    #[test]
    fn evaluate_one_rejects_misfit_mappings() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system);
        let wrong = Parallelism::builder().tp(2, 1).build().unwrap(); // 2 != 4
        assert!(engine
            .evaluate_one(&wrong, &TrainingConfig::new(64, 1).unwrap())
            .is_err());
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let (model, accel, system) = fixture();
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 4).build().unwrap(),
            ),
            (
                "tp-inter".to_string(),
                Parallelism::builder().tp(4, 4).build().unwrap(),
            ),
        ];
        let batches = [32usize, 64, 128, 256];
        let serial = Sweep::run(
            &SearchEngine::new(&model, &accel, &system).with_parallelism(1),
            &mappings,
            &batches,
            5,
        )
        .unwrap();
        let parallel = Sweep::run(
            &SearchEngine::new(&model, &accel, &system).with_parallelism(3),
            &mappings,
            &batches,
            5,
        )
        .unwrap();
        assert_eq!(serial.points().len(), parallel.points().len());
        for (x, y) in serial.points().iter().zip(parallel.points()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.global_batch, y.global_batch);
            assert_eq!(
                x.estimate.total_time.get().to_bits(),
                y.estimate.total_time.get().to_bits()
            );
        }
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }
}
