//! Parameter sweeps — the machinery behind the paper's case-study figures,
//! packaged for reuse: evaluate a set of mappings across a set of batch
//! sizes and emit labelled series.

use std::collections::HashMap;

use amped_core::{AnalyticalBackend, CostBackend, Estimate, Parallelism, Result, TrainingConfig};

use crate::{Candidate, SearchEngine};

/// One evaluated sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The mapping label supplied by the caller.
    pub label: String,
    /// Global batch size of this point.
    pub global_batch: usize,
    /// The (microbatch-tuned) estimate.
    pub estimate: Estimate,
    /// Which [`CostBackend`] produced this cell.
    pub backend: &'static str,
}

/// One evaluated cell of the label × batch grid, with structured
/// coordinates — what consumers should read instead of re-parsing
/// [`SweepPoint::label`] strings.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell<'a> {
    /// The mapping label supplied at [`Sweep::run`].
    pub label: &'a str,
    /// The mapping itself.
    pub parallelism: &'a Parallelism,
    /// Global batch size of this cell.
    pub global_batch: usize,
    /// Which [`CostBackend`] produced this cell.
    pub backend: &'static str,
    /// The cell's estimate.
    pub estimate: &'a Estimate,
}

/// One mapping's row across every batch size of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepRow<'a> {
    sweep: &'a Sweep,
    row: usize,
}

impl<'a> SweepRow<'a> {
    /// The mapping label supplied at [`Sweep::run`].
    pub fn label(&self) -> &'a str {
        &self.sweep.labels[self.row]
    }

    /// The mapping evaluated along this row.
    pub fn parallelism(&self) -> &'a Parallelism {
        &self.sweep.mappings[self.row]
    }

    /// This row's cells in batch order.
    pub fn cells(self) -> impl Iterator<Item = SweepCell<'a>> + 'a {
        let (sweep, row) = (self.sweep, self.row);
        (0..sweep.batches.len()).map(move |col| sweep.cell_at(row, col))
    }

    /// `(batch, total days)` pairs in batch order — ready to become a
    /// report series.
    pub fn days_points(&self) -> Vec<(f64, f64)> {
        self.cells()
            .map(|c| (c.global_batch as f64, c.estimate.days()))
            .collect()
    }
}

/// A grid of mappings × batch sizes, evaluated through a [`SearchEngine`]'s
/// configuration (efficiency, precision, engine options, power model).
///
/// Points are stored label-major, batch-minor, so every `(label, batch)`
/// cell resolves in O(1) through the label index built at construction —
/// [`Sweep::days_series`], [`Sweep::winners`] and [`Sweep::to_csv`] never
/// scan the full point list.
#[derive(Debug, Clone)]
pub struct Sweep {
    points: Vec<SweepPoint>,
    batches: Vec<usize>,
    labels: Vec<String>,
    /// The mapping of each row, aligned with `labels`.
    mappings: Vec<Parallelism>,
    /// Label → row index (first occurrence wins for duplicate labels).
    label_index: HashMap<String, usize>,
}

impl Sweep {
    /// Evaluate every `(mapping, batch)` pair over the engine's worker pool
    /// (see [`SearchEngine::with_parallelism`]). Each mapping is evaluated
    /// through [`SearchEngine::evaluate_one`] semantics (microbatch tuning
    /// included); results are ordered label-major, batch-minor regardless
    /// of worker count. Cells carry [`AnalyticalBackend`] provenance.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors; a mapping invalid for the engine's
    /// system/model is an error (sweeps are explicit, unlike enumeration).
    pub fn run(
        engine: &SearchEngine<'_>,
        mappings: &[(String, Parallelism)],
        batches: &[usize],
        num_batches: u64,
    ) -> Result<Sweep> {
        let trainings = trainings_for(batches, num_batches)?;
        let cells = engine.evaluate_grid(mappings, &trainings)?;
        let estimates: Vec<Estimate> = cells.into_iter().map(|c| c.estimate).collect();
        Ok(Sweep::assemble(
            mappings,
            batches,
            estimates,
            AnalyticalBackend.name(),
        ))
    }

    /// Evaluate every `(mapping, batch)` pair through an arbitrary
    /// [`CostBackend`] over the engine's worker pool, recording the
    /// backend's name as each cell's provenance.
    ///
    /// Unlike [`Sweep::run`], mappings are priced exactly as given — the
    /// backend sees each mapping's own microbatch policy, with no
    /// microbatch tuning pass (a backend is a pricing function, not a
    /// search).
    ///
    /// # Errors
    ///
    /// Propagates backend errors — including [`SimBackend`]'s memory
    /// feasibility gate, so an infeasible cell fails the sweep rather than
    /// silently reporting a time no real run could achieve.
    ///
    /// [`SimBackend`]: amped_sim::SimBackend
    pub fn run_backend(
        engine: &SearchEngine<'_>,
        backend: &dyn CostBackend,
        mappings: &[(String, Parallelism)],
        batches: &[usize],
        num_batches: u64,
    ) -> Result<Sweep> {
        let trainings = trainings_for(batches, num_batches)?;
        let cols = trainings.len();
        if mappings.is_empty() || cols == 0 {
            return Ok(Sweep::assemble(mappings, batches, Vec::new(), backend.name()));
        }
        // One batched backend call per training column (each column shares
        // a scenario and differs only in the candidate mapping), fanned out
        // over the worker pool. Backends with a real batch path hoist the
        // per-column invariants once; the default implementation loops
        // `evaluate`, so cells stay bit-identical either way.
        let plist: Vec<Parallelism> = mappings.iter().map(|(_, p)| *p).collect();
        let scenario = engine.scenario_for(plist[0]);
        let columns = engine.run_parallel(cols, |_cache, col| {
            Ok(backend.evaluate_many(&scenario, &plist, &trainings[col]))
        });
        let mut columns: Vec<Vec<Option<Result<Estimate>>>> = columns
            .into_iter()
            .map(|c| {
                c.expect("column dispatch is infallible")
                    .into_iter()
                    .map(Some)
                    .collect()
            })
            .collect();
        // Reassemble label-major, batch-minor; the first error in that
        // (row, col) order wins, matching the per-cell path.
        let mut estimates = Vec::with_capacity(mappings.len() * cols);
        for row in 0..mappings.len() {
            for column in columns.iter_mut() {
                estimates.push(column[row].take().expect("each cell is taken once")?);
            }
        }
        Ok(Sweep::assemble(mappings, batches, estimates, backend.name()))
    }

    /// Build the grid from label-major, batch-minor estimates.
    fn assemble(
        mappings: &[(String, Parallelism)],
        batches: &[usize],
        estimates: Vec<Estimate>,
        backend: &'static str,
    ) -> Sweep {
        let mut points = Vec::with_capacity(estimates.len());
        for (i, estimate) in estimates.into_iter().enumerate() {
            let (row, col) = (i / batches.len().max(1), i % batches.len().max(1));
            points.push(SweepPoint {
                label: mappings[row].0.clone(),
                global_batch: batches[col],
                estimate,
                backend,
            });
        }
        let mut label_index = HashMap::with_capacity(mappings.len());
        for (row, (label, _)) in mappings.iter().enumerate() {
            label_index.entry(label.clone()).or_insert(row);
        }
        Sweep {
            points,
            batches: batches.to_vec(),
            labels: mappings.iter().map(|(l, _)| l.clone()).collect(),
            mappings: mappings.iter().map(|(_, p)| *p).collect(),
            label_index,
        }
    }

    /// All evaluated points (label-major, batch-minor).
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// The batch sizes of the grid's columns.
    pub fn batches(&self) -> &[usize] {
        &self.batches
    }

    /// The typed cell at `(row, col)` of the label × batch grid.
    fn cell_at(&self, row: usize, col: usize) -> SweepCell<'_> {
        let point = &self.points[row * self.batches.len() + col];
        SweepCell {
            label: &self.labels[row],
            parallelism: &self.mappings[row],
            global_batch: point.global_batch,
            backend: point.backend,
            estimate: &point.estimate,
        }
    }

    /// The rows of the grid — one per mapping, in insertion order. This is
    /// the structured view consumers should prefer over parsing labels out
    /// of [`Sweep::to_csv`] or [`Sweep::points`].
    pub fn rows(&self) -> impl Iterator<Item = SweepRow<'_>> {
        (0..self.labels.len()).map(move |row| SweepRow { sweep: self, row })
    }

    /// Every cell of the grid, label-major, batch-minor.
    pub fn cells(&self) -> impl Iterator<Item = SweepCell<'_>> {
        self.rows().flat_map(|r| r.cells())
    }

    /// The row for one mapping label (`None` for an unknown label; the
    /// first row wins for duplicate labels).
    pub fn row(&self, label: &str) -> Option<SweepRow<'_>> {
        self.label_index
            .get(label)
            .map(|&row| SweepRow { sweep: self, row })
    }

    /// The series for one mapping label: `(batch, total days)` pairs in
    /// batch order (empty for an unknown label).
    pub fn days_series(&self, label: &str) -> Vec<(f64, f64)> {
        self.row(label).map(|r| r.days_points()).unwrap_or_default()
    }

    /// Labels in insertion order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The fastest mapping at each batch size: `(batch, label)`.
    pub fn winners(&self) -> Vec<(usize, &str)> {
        (0..self.batches.len())
            .filter_map(|col| {
                (0..self.labels.len())
                    .map(|row| self.cell_at(row, col))
                    .min_by(|x, y| {
                        x.estimate
                            .total_time
                            .get()
                            .partial_cmp(&y.estimate.total_time.get())
                            .expect("finite")
                    })
                    .map(|c| (c.global_batch, c.label))
            })
            .collect()
    }

    /// Render as CSV: one row per batch, one column per label (days).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("batch");
        for l in &self.labels {
            out.push(',');
            out.push_str(l);
        }
        for (col, &b) in self.batches.iter().enumerate() {
            out.push('\n');
            out.push_str(&b.to_string());
            for row in 0..self.labels.len() {
                out.push(',');
                out.push_str(&format!("{:.3}", self.cell_at(row, col).estimate.days()));
            }
        }
        out
    }
}

/// The batch ladder as training configurations.
fn trainings_for(batches: &[usize], num_batches: u64) -> Result<Vec<TrainingConfig>> {
    let mut trainings = Vec::with_capacity(batches.len());
    for &batch in batches {
        trainings.push(TrainingConfig::new(batch, num_batches)?);
    }
    Ok(trainings)
}

/// Re-export point: evaluate a single explicit mapping through the engine
/// (used by [`Sweep::run`] and callers that need one-off evaluations with
/// the engine's configuration).
impl<'a> SearchEngine<'a> {
    /// Evaluate one explicit mapping (with microbatch tuning if enabled).
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping does not fit the engine's
    /// system/model or any component fails validation.
    pub fn evaluate_one(
        &self,
        mapping: &Parallelism,
        training: &TrainingConfig,
    ) -> Result<Candidate> {
        let mut cache = amped_core::EstimateCache::new();
        match self.evaluate_cell(&mut cache, mapping, training)? {
            Ok(candidate) => Ok(*candidate),
            Err(failure) => Err(amped_core::Error::incompatible(format!(
                "mapping was filtered out (exceeds device memory under every microbatch size; \
                 first failing inequality: {failure})",
            ))),
        }
    }

    /// Evaluate a mappings × trainings grid over the worker pool, returning
    /// candidates mapping-major in deterministic order. Pruning does not
    /// apply here — a sweep reports *every* cell.
    pub(crate) fn evaluate_grid(
        &self,
        mappings: &[(String, Parallelism)],
        trainings: &[TrainingConfig],
    ) -> Result<Vec<Candidate>> {
        let cols = trainings.len();
        let results = self.run_parallel(mappings.len() * cols, |cache, i| {
            let (row, col) = (i / cols.max(1), i % cols.max(1));
            match self.evaluate_cell(cache, &mappings[row].1, &trainings[col])? {
                Ok(candidate) => Ok(*candidate),
                Err(failure) => Err(amped_core::Error::incompatible(format!(
                    "mapping was filtered out (exceeds device memory under every microbatch \
                     size; first failing inequality: {failure})",
                ))),
            }
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::{AcceleratorSpec, EfficiencyModel, Link, SystemSpec, TransformerModel};

    fn fixture() -> (TransformerModel, AcceleratorSpec, SystemSpec) {
        let model = TransformerModel::builder("sweep-m")
            .layers(16)
            .hidden_size(1024)
            .heads(16)
            .seq_len(256)
            .vocab_size(8000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("sweep-a")
            .frequency_hz(1e9)
            .cores(32)
            .mac_units(4, 128, 8)
            .nonlin_units(32, 8, 32)
            .memory(32e9, 1e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(4, 4, Link::new(1e-6, 2.4e12), Link::new(1e-5, 1e11), 4).unwrap();
        (model, accel, system)
    }

    #[test]
    fn sweep_covers_the_grid() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 4).build().unwrap(),
            ),
        ];
        let batches = [64usize, 128, 256];
        let sweep = Sweep::run(&engine, &mappings, &batches, 10).unwrap();
        assert_eq!(sweep.points().len(), 6);
        assert_eq!(sweep.days_series("dp").len(), 3);
        assert_eq!(sweep.days_series("unknown").len(), 0);
        assert_eq!(sweep.winners().len(), 3);
        let csv = sweep.to_csv();
        assert!(csv.starts_with("batch,dp,pp"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn winners_are_the_fastest() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "tp-inter".to_string(),
                Parallelism::builder().tp(4, 4).build().unwrap(),
            ),
        ];
        let sweep = Sweep::run(&engine, &mappings, &[256], 1).unwrap();
        // TP across slow links loses; the winner at every batch is dp.
        for (_, w) in sweep.winners() {
            assert_eq!(w, "dp");
        }
    }

    #[test]
    fn evaluate_one_rejects_misfit_mappings() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system);
        let wrong = Parallelism::builder().tp(2, 1).build().unwrap(); // 2 != 4
        assert!(engine
            .evaluate_one(&wrong, &TrainingConfig::new(64, 1).unwrap())
            .is_err());
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let (model, accel, system) = fixture();
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 4).build().unwrap(),
            ),
            (
                "tp-inter".to_string(),
                Parallelism::builder().tp(4, 4).build().unwrap(),
            ),
        ];
        let batches = [32usize, 64, 128, 256];
        let serial = Sweep::run(
            &SearchEngine::new(&model, &accel, &system).with_parallelism(1),
            &mappings,
            &batches,
            5,
        )
        .unwrap();
        let parallel = Sweep::run(
            &SearchEngine::new(&model, &accel, &system).with_parallelism(3),
            &mappings,
            &batches,
            5,
        )
        .unwrap();
        assert_eq!(serial.points().len(), parallel.points().len());
        for (x, y) in serial.points().iter().zip(parallel.points()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.global_batch, y.global_batch);
            assert_eq!(
                x.estimate.total_time.get().to_bits(),
                y.estimate.total_time.get().to_bits()
            );
        }
        assert_eq!(serial.to_csv(), parallel.to_csv());
    }

    #[test]
    fn typed_rows_and_cells_expose_the_grid_without_label_parsing() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 4).build().unwrap(),
            ),
        ];
        let batches = [64usize, 128];
        let sweep = Sweep::run(&engine, &mappings, &batches, 10).unwrap();

        let rows: Vec<_> = sweep.rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label(), "dp");
        assert_eq!(rows[0].parallelism().dp(), 4);
        assert_eq!(rows[1].label(), "pp");
        assert_eq!(rows[1].parallelism().pp(), 4);
        for row in &rows {
            let cells: Vec<_> = row.cells().collect();
            assert_eq!(cells.len(), batches.len());
            for (cell, &batch) in cells.iter().zip(&batches) {
                assert_eq!(cell.global_batch, batch);
                assert_eq!(cell.backend, "analytical");
                assert!(cell.estimate.total_time.get() > 0.0);
            }
        }
        assert_eq!(sweep.cells().count(), 4);
        // The typed row reproduces the label-keyed series exactly.
        assert_eq!(sweep.row("dp").unwrap().days_points(), sweep.days_series("dp"));
        assert!(sweep.row("unknown").is_none());
    }

    #[test]
    fn backend_sweeps_record_provenance_and_match_the_trait() {
        use amped_core::CostBackend;
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_parallelism(2);
        let mappings = vec![
            (
                "dp".to_string(),
                Parallelism::builder().tp(4, 1).dp(1, 4).build().unwrap(),
            ),
            (
                "pp".to_string(),
                Parallelism::builder().tp(4, 1).pp(1, 4).build().unwrap(),
            ),
        ];
        let batches = [64usize, 128];
        let analytical = amped_core::AnalyticalBackend;
        let sweep = Sweep::run_backend(&engine, &analytical, &mappings, &batches, 10).unwrap();
        for cell in sweep.cells() {
            assert_eq!(cell.backend, "analytical");
            let scenario = engine.scenario_for(*cell.parallelism);
            let training = TrainingConfig::new(cell.global_batch, 10).unwrap();
            let direct = analytical.evaluate(&scenario, &training).unwrap();
            assert_eq!(
                cell.estimate.total_time.get().to_bits(),
                direct.total_time.get().to_bits()
            );
        }
        let sim = amped_sim::SimBackend::new();
        let sim_sweep = Sweep::run_backend(&engine, &sim, &mappings, &batches, 10).unwrap();
        assert!(sim_sweep.cells().all(|c| c.backend == "sim"));
        assert_eq!(sim_sweep.points().len(), 4);
    }
}
