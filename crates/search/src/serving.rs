//! Serving-mapping search: sweep `TP × PP × DP × batch`, rank by request
//! latency, and expose the latency/throughput/memory Pareto frontier.
//!
//! Serving inverts the training search's economics. Training wants one
//! number (iteration time) minimized; serving trades **time to first
//! token** and **time per output token** against **aggregate tokens/s**
//! and **KV-cache headroom** — bigger batches amortize the decode
//! weight-stream over more sequences (throughput up) while lengthening
//! every step (latency up) and growing the cache (headroom down). So the
//! sweep keeps every `(mapping, batch)` point as its own candidate and
//! ranks by latency, and [`serving_pareto_front`] extracts the
//! non-dominated frontier over `(ttft, tpot, tokens/s, memory)`.
//!
//! Determinism follows the training search's discipline, tightened one
//! notch: the branch-and-bound lower bound
//! ([`latency_lower_bound`](amped_infer::latency_lower_bound)) is exact
//! in f64 against the estimator's own floors and is computed for *every*
//! candidate, and the kept set is always post-filtered to
//! `lower_bound <= best_latency` — so rankings are bit-identical at any
//! worker count **and** with pruning on or off (pruning only skips work
//! the filter would discard anyway).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use amped_core::{
    AcceleratorSpec, Parallelism, Precision, Result, Scenario, SystemSpec, TransformerModel,
};
use amped_infer::{latency_lower_bound, AnalyticalInferBackend, InferBackend, InferEstimate};
use amped_memory::KvCapacityFailure;
use amped_obs::Observer;
use serde::{Deserialize, Serialize};

use crate::{factor_triples, parallelism_key};

/// Constraints on the serving sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingSweepOptions {
    /// Permit tensor parallelism across nodes (usually dominated by the
    /// inter-node all-reduce latency on every decode step).
    pub allow_tp_inter: bool,
    /// Cap on the total tensor-parallel degree (None = head count).
    pub max_tp: Option<usize>,
    /// Cap on the total pipeline-parallel degree (None = layer count).
    pub max_pp: Option<usize>,
    /// Upper bound of the power-of-two batch ladder swept per mapping.
    pub max_batch: usize,
}

impl Default for ServingSweepOptions {
    fn default() -> Self {
        ServingSweepOptions {
            allow_tp_inter: false,
            max_tp: None,
            max_pp: None,
            max_batch: 64,
        }
    }
}

/// One evaluated `(mapping, batch)` serving point.
#[derive(Debug, Clone)]
pub struct ServingCandidate {
    /// The mapping (its DP degree is the replica count).
    pub parallelism: Parallelism,
    /// Concurrent sequences per replica at this point.
    pub batch: usize,
    /// The priced request.
    pub estimate: InferEstimate,
    /// Whether weights + KV cache fit device memory at the request's
    /// maximum context.
    pub fits_memory: bool,
}

impl ServingCandidate {
    /// The latency this candidate is ranked by.
    pub fn objective_time(&self) -> f64 {
        self.estimate.request_latency.get()
    }
}

/// Ranking order: fastest request first, ties broken by the parallelism
/// degrees and then the batch — a total order (no two sweep points share
/// all seven values), so rankings are identical at any worker count.
fn serving_order(a: &ServingCandidate, b: &ServingCandidate) -> std::cmp::Ordering {
    a.objective_time()
        .total_cmp(&b.objective_time())
        .then_with(|| parallelism_key(&a.parallelism).cmp(&parallelism_key(&b.parallelism)))
        .then_with(|| a.batch.cmp(&b.batch))
}

/// Memory rejections of one serving pass, by failing capacity term.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingRejections {
    /// The weight shard alone exceeds device memory.
    pub weights: u64,
    /// Weights fit but the KV cache at the maximum context does not.
    pub kv_cache: u64,
}

impl ServingRejections {
    /// Total points rejected by the memory filter.
    pub fn total(&self) -> u64 {
        self.weights + self.kv_cache
    }

    fn record(&mut self, failure: KvCapacityFailure) {
        match failure {
            KvCapacityFailure::Weights => self.weights += 1,
            KvCapacityFailure::KvCache => self.kv_cache += 1,
        }
    }
}

/// Accounting of one serving pass. `generated = pruned + kept +
/// memory_rejected.total()` holds exactly, and every field is
/// deterministic: the memory filter runs before the runtime prune (a
/// point's feasibility never depends on the incumbent) and the
/// `lower_bound <= best` post-filter normalizes the kept set, so the
/// whole struct is bit-identical at any worker count with pruning on or
/// off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingSearchStats {
    /// `(mapping, batch)` points enumerated.
    pub generated: u64,
    /// Points skipped by branch-and-bound pruning at runtime, plus points
    /// discarded by the deterministic `lower_bound <= best` post-filter.
    pub pruned: u64,
    /// Points in the returned ranking.
    pub kept: u64,
    /// Points rejected by the memory filter, by failing capacity term.
    pub memory_rejected: ServingRejections,
}

/// What happened to one sweep point.
enum Outcome {
    Pruned,
    Filtered(KvCapacityFailure),
    Kept {
        lower_bound: f64,
        candidate: Box<ServingCandidate>,
    },
}

/// Evaluates and ranks every way of serving a model on a system.
#[derive(Debug, Clone)]
pub struct ServingSearch<'a> {
    model: &'a TransformerModel,
    accel: &'a AcceleratorSpec,
    system: &'a SystemSpec,
    precision: Precision,
    sweep: ServingSweepOptions,
    require_memory_fit: bool,
    jobs: usize,
    prune: bool,
    observer: Option<Arc<Observer>>,
}

impl<'a> ServingSearch<'a> {
    /// A serving search over `model` × `system` with `accel` devices.
    pub fn new(
        model: &'a TransformerModel,
        accel: &'a AcceleratorSpec,
        system: &'a SystemSpec,
    ) -> Self {
        ServingSearch {
            model,
            accel,
            system,
            precision: Precision::default(),
            sweep: ServingSweepOptions::default(),
            require_memory_fit: true,
            jobs: 0,
            prune: false,
            observer: None,
        }
    }

    /// Override the weight/activation precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the sweep constraints.
    pub fn with_sweep(mut self, sweep: ServingSweepOptions) -> Self {
        self.sweep = sweep;
        self
    }

    /// Keep points whose KV footprint overflows device memory (default:
    /// drop them — an overflowing cache is not a servable point).
    pub fn with_memory_filter(mut self, require_fit: bool) -> Self {
        self.require_memory_fit = require_fit;
        self
    }

    /// Worker threads (0 = one per CPU). Rankings are identical for
    /// every worker count.
    pub fn with_parallelism(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enable branch-and-bound pruning: points whose latency lower bound
    /// exceeds the incumbent best skip full evaluation. Because every
    /// point's bound is computed anyway and the kept set is always
    /// post-filtered to `lower_bound <= best`, pruning changes *runtime
    /// only* — the ranking is bit-identical with it on or off.
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Attach an observer recording phases
    /// (`infer.search.{enumerate,explore,rank}`) and candidate counters
    /// (`infer.search.candidates.{generated,pruned,kept,memory_rejected}`).
    /// Passive: rankings are bit-identical with or without it.
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Every `(mapping, batch)` point of the sweep, in enumeration order.
    pub fn sweep_points(&self) -> Vec<(Parallelism, usize)> {
        let max_tp = self.sweep.max_tp.unwrap_or(self.model.num_heads());
        let max_pp = self.sweep.max_pp.unwrap_or(self.model.num_layers());
        let mut batches = Vec::new();
        let mut b = 1usize;
        while b <= self.sweep.max_batch.max(1) {
            batches.push(b);
            b *= 2;
        }
        let mut out = Vec::new();
        for (tp_i, pp_i, dp_i) in factor_triples(self.system.accels_per_node()) {
            for (tp_x, pp_x, dp_x) in factor_triples(self.system.num_nodes()) {
                if !self.sweep.allow_tp_inter && tp_x > 1 {
                    continue;
                }
                if tp_i * tp_x > max_tp || pp_i * pp_x > max_pp {
                    continue;
                }
                let built = Parallelism::builder()
                    .tp(tp_i, tp_x)
                    .pp(pp_i, pp_x)
                    .dp(dp_i, dp_x)
                    .build();
                let Ok(p) = built else { continue };
                if p.validate_against(self.system, self.model).is_err() {
                    continue;
                }
                for &batch in &batches {
                    out.push((p, batch));
                }
            }
        }
        out
    }

    /// Rank every sweep point for `request`, fastest request first.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (an internal inconsistency — sweep
    /// points have already been validated).
    pub fn search(
        &self,
        request: &amped_infer::InferenceConfig,
    ) -> Result<Vec<ServingCandidate>> {
        Ok(self.search_with_stats(request)?.0)
    }

    /// [`ServingSearch::search`], additionally returning the pass's
    /// accounting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ServingSearch::search`].
    pub fn search_with_stats(
        &self,
        request: &amped_infer::InferenceConfig,
    ) -> Result<(Vec<ServingCandidate>, ServingSearchStats)> {
        let points = {
            let _phase = self
                .observer
                .as_ref()
                .map(|o| o.phase("infer.search.enumerate"));
            self.sweep_points()
        };
        let best_bits = AtomicU64::new(f64::INFINITY.to_bits());
        let outcomes = {
            let _phase = self
                .observer
                .as_ref()
                .map(|o| o.phase("infer.search.explore"));
            self.explore_all(&points, request, &best_bits)
        };
        let _rank = self.observer.as_ref().map(|o| o.phase("infer.search.rank"));
        let mut stats = ServingSearchStats {
            generated: points.len() as u64,
            ..ServingSearchStats::default()
        };
        let mut kept: Vec<(f64, ServingCandidate)> = Vec::new();
        for outcome in outcomes {
            match outcome? {
                Outcome::Pruned => stats.pruned += 1,
                Outcome::Filtered(failure) => stats.memory_rejected.record(failure),
                Outcome::Kept {
                    lower_bound,
                    candidate,
                } => kept.push((lower_bound, *candidate)),
            }
        }
        // The deterministic post-filter: retain exactly the points whose
        // bound does not exceed the best latency. Runtime pruning can only
        // have skipped points this filter discards (the incumbent never
        // drops below the final best), so the retained set — and therefore
        // the ranking — is identical with pruning on or off.
        let best_time = kept
            .iter()
            .map(|(_, c)| c.objective_time())
            .fold(f64::INFINITY, f64::min);
        kept.retain(|(lb, _)| *lb <= best_time);
        stats.kept = kept.len() as u64;
        stats.pruned = stats.generated - stats.kept - stats.memory_rejected.total();
        if let Some(obs) = &self.observer {
            obs.add("infer.search.candidates.generated", stats.generated);
            obs.add("infer.search.candidates.pruned", stats.pruned);
            obs.add(
                "infer.search.candidates.memory_rejected",
                stats.memory_rejected.total(),
            );
            obs.add("infer.search.candidates.kept", stats.kept);
        }
        let mut out: Vec<ServingCandidate> = kept.into_iter().map(|(_, c)| c).collect();
        out.sort_by(serving_order);
        Ok((out, stats))
    }

    /// Explore every point over a scoped worker pool, results in point
    /// order.
    fn explore_all(
        &self,
        points: &[(Parallelism, usize)],
        request: &amped_infer::InferenceConfig,
        best_bits: &AtomicU64,
    ) -> Vec<Result<Outcome>> {
        let jobs = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        }
        .min(points.len().max(1));
        if jobs <= 1 {
            return points
                .iter()
                .map(|(p, b)| self.explore(p, *b, request, best_bits))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<Outcome>>> = (0..points.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= points.len() {
                                break;
                            }
                            let (p, b) = &points[i];
                            done.push((i, self.explore(p, *b, request, best_bits)));
                        }
                        done
                    })
                })
                .collect();
            for worker in workers {
                for (i, result) in worker.join().expect("serving search worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every sweep point is dispatched exactly once"))
            .collect()
    }

    /// Bound, optionally prune, evaluate and score one sweep point.
    fn explore(
        &self,
        p: &Parallelism,
        batch: usize,
        request: &amped_infer::InferenceConfig,
        best_bits: &AtomicU64,
    ) -> Result<Outcome> {
        let config = request.with_batch(batch)?;
        let scenario = Scenario::new(
            self.model.clone(),
            self.accel.clone(),
            self.system.clone(),
            *p,
        )
        .with_precision(self.precision);
        // Memory feasibility is a per-point fact, independent of the
        // incumbent, so it is decided *before* the runtime prune: the
        // `memory_rejected` accounting in the artifact must be identical
        // with pruning on or off and at any worker count. The footprint is
        // closed-form, so this costs no roofline evaluation.
        if self.require_memory_fit {
            let est = amped_infer::InferEstimator::new(&scenario);
            let footprint = est
                .kv_model(&config)
                .footprint(config.batch(), config.max_context());
            let capacity = self.accel.memory_bytes();
            if footprint.total() > capacity {
                return Ok(Outcome::Filtered(footprint.capacity_failure(capacity)));
            }
        }
        // The bound feeds the deterministic post-filter, so it is computed
        // for every point whether or not runtime pruning is on.
        let lower_bound = latency_lower_bound(&scenario, &config)?;
        if self.prune && lower_bound > f64::from_bits(best_bits.load(Ordering::Relaxed)) {
            return Ok(Outcome::Pruned);
        }
        let estimate = AnalyticalInferBackend.evaluate(&scenario, &config)?;
        best_bits.fetch_min(estimate.request_latency.get().to_bits(), Ordering::Relaxed);
        let fits_memory = estimate.fits_memory;
        Ok(Outcome::Kept {
            lower_bound,
            candidate: Box::new(ServingCandidate {
                parallelism: *p,
                batch,
                estimate,
                fits_memory,
            }),
        })
    }
}

/// The non-dominated serving candidates under
/// `(ttft, tpot, −tokens/s, memory)`: a point survives unless another
/// point is at least as good on all four axes and strictly better on
/// one. Input order (the latency ranking) is preserved.
pub fn serving_pareto_front(candidates: &[ServingCandidate]) -> Vec<&ServingCandidate> {
    let key = |c: &ServingCandidate| {
        [
            c.estimate.ttft.get(),
            c.estimate.tpot.get(),
            -c.estimate.tokens_per_sec,
            c.estimate.memory_total(),
        ]
    };
    let dominates = |a: &[f64; 4], b: &[f64; 4]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    let keys: Vec<[f64; 4]> = candidates.iter().map(key).collect();
    candidates
        .iter()
        .enumerate()
        .filter(|(i, _)| !keys.iter().enumerate().any(|(j, k)| j != *i && dominates(k, &keys[*i])))
        .map(|(_, c)| c)
        .collect()
}
