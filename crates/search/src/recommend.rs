//! One-call recommendations: the full AMPeD workflow — search, lint,
//! sensitivity — condensed into a single answer with its reasoning.

use amped_core::{
    check_scenario, Diagnostic, Knob, SensitivityAnalysis, SensitivityResult, TrainingConfig,
};

use crate::{Candidate, SearchEngine};

/// A launch recommendation with its supporting evidence.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The fastest memory-feasible candidate.
    pub best: Candidate,
    /// The next-best alternatives (up to three), for judgement calls the
    /// model cannot make (operational simplicity, failure domains).
    pub alternatives: Vec<Candidate>,
    /// Lint findings on the chosen mapping.
    pub diagnostics: Vec<Diagnostic>,
    /// Knob leverage at 2× improvement, sorted by speedup.
    pub tornado: Vec<SensitivityResult>,
}

impl Recommendation {
    /// The single most valuable hardware investment for this scenario.
    pub fn top_knob(&self) -> Option<Knob> {
        self.tornado.first().map(|r| r.knob)
    }

    /// How much slower the best alternative is (`None` without one).
    pub fn margin(&self) -> Option<f64> {
        self.alternatives.first().map(|a| {
            a.estimate.total_time.get() / self.best.estimate.total_time.get() - 1.0
        })
    }
}

impl std::fmt::Display for Recommendation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = &self.best.parallelism;
        writeln!(
            f,
            "recommended mapping: tp {}x{}  pp {}x{}  dp {}x{}  ({} microbatches)",
            p.tp_intra(),
            p.tp_inter(),
            p.pp_intra(),
            p.pp_inter(),
            p.dp_intra(),
            p.dp_inter(),
            self.best.estimate.num_microbatches,
        )?;
        writeln!(
            f,
            "predicted: {} total, {:.1} TFLOP/s/GPU, {:.1} MWh, {} per device",
            self.best.estimate.total_time,
            self.best.estimate.tflops_per_gpu,
            self.best.energy.megawatt_hours(),
            amped_core::units::format_bytes(self.best.memory.total()),
        )?;
        if let Some(margin) = self.margin() {
            writeln!(f, "margin over runner-up: {:.1}%", margin * 100.0)?;
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        if let Some(top) = self.tornado.first() {
            write!(
                f,
                "highest-leverage knob: {} ({:+.1}% if 2x better)",
                top.knob.name(),
                top.speedup() * 100.0
            )?;
        }
        Ok(())
    }
}

impl<'a> SearchEngine<'a> {
    /// Search, lint the winner and rank the hardware knobs — everything an
    /// operator needs before launching.
    ///
    /// Returns `None` when no mapping survives the memory filter.
    ///
    /// Uses the engine's own search configuration: with
    /// [`SearchEngine::with_pruning`] enabled the ranking (and therefore
    /// the alternatives list) only covers candidates whose lower bound beat
    /// the winner — the winner itself is unaffected.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn recommend(
        &self,
        training: &TrainingConfig,
    ) -> amped_core::Result<Option<Recommendation>> {
        let mut ranked = self.search(training)?;
        if ranked.is_empty() {
            return Ok(None);
        }
        let best = ranked.remove(0);
        let alternatives: Vec<Candidate> = ranked.into_iter().take(3).collect();
        let diagnostics =
            check_scenario(self.model(), self.system(), &best.parallelism, training);
        let tornado = SensitivityAnalysis::new(
            self.model(),
            self.accel(),
            self.system(),
            &best.parallelism,
        )
        .with_precision(self.precision())
        .with_efficiency(self.efficiency().clone())
        .with_options(self.engine_options())
        .tornado(2.0, training)?;
        Ok(Some(Recommendation {
            best,
            alternatives,
            diagnostics,
            tornado,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::{
        AcceleratorSpec, EfficiencyModel, Link, SystemSpec, TransformerModel,
    };

    fn fixture() -> (TransformerModel, AcceleratorSpec, SystemSpec) {
        let model = TransformerModel::builder("rec-m")
            .layers(16)
            .hidden_size(2048)
            .heads(16)
            .seq_len(512)
            .vocab_size(32000)
            .build()
            .unwrap();
        let accel = AcceleratorSpec::builder("rec-a")
            .frequency_hz(1.4e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2e12)
            .build()
            .unwrap();
        let system =
            SystemSpec::new(4, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8).unwrap();
        (model, accel, system)
    }

    #[test]
    fn recommendation_is_the_search_winner_with_evidence() {
        let (model, accel, system) = fixture();
        let engine = SearchEngine::new(&model, &accel, &system)
            .with_efficiency(EfficiencyModel::saturating(0.9, 8.0, 0.1, 0.9))
            .with_memory_filter(true);
        let training = TrainingConfig::new(1024, 100).unwrap();
        let rec = engine.recommend(&training).unwrap().expect("found");
        // Matches a direct search.
        let direct = engine.best(&training).unwrap().expect("found");
        assert_eq!(rec.best.parallelism, direct.parallelism);
        assert!(rec.alternatives.len() <= 3);
        if let Some(m) = rec.margin() {
            assert!(m >= 0.0);
        }
        assert!(rec.top_knob().is_some());
        let text = rec.to_string();
        assert!(text.contains("recommended mapping"));
        assert!(text.contains("highest-leverage knob"));
    }

    #[test]
    fn infeasible_scenarios_return_none() {
        let (model, _, system) = fixture();
        // A 1 MiB "accelerator": nothing fits.
        let tiny = AcceleratorSpec::builder("tiny")
            .frequency_hz(1e9)
            .cores(1)
            .mac_units(1, 8, 8)
            .nonlin_units(1, 1, 32)
            .memory(1e6, 1e9)
            .build()
            .unwrap();
        let engine = SearchEngine::new(&model, &tiny, &system).with_memory_filter(true);
        let rec = engine
            .recommend(&TrainingConfig::new(1024, 1).unwrap())
            .unwrap();
        assert!(rec.is_none());
    }
}
