//! # amped-search — parallelism design-space exploration
//!
//! The AMPeD case studies are exhaustive sweeps over every way of mapping
//! tensor, pipeline and data parallelism onto the intra- and inter-node
//! levels of a cluster. This crate is the engine that drives them:
//!
//! * [`enumerate_mappings`] lists every valid
//!   `(TPintra·PPintra·DPintra) × (TPinter·PPinter·DPinter)` factorization of
//!   a system's node shape;
//! * [`SearchEngine`] evaluates each candidate with the analytical model,
//!   filters by memory feasibility, attaches energy, and ranks;
//! * [`pareto_front`] extracts the non-dominated candidates under
//!   (time, energy, memory).
//!
//! # Example
//!
//! ```
//! use amped_core::{AcceleratorSpec, Link, SystemSpec, TransformerModel};
//! use amped_search::{enumerate_mappings, EnumerationOptions};
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! let sys = SystemSpec::new(4, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
//! let model = TransformerModel::builder("m")
//!     .layers(32).hidden_size(4096).heads(32).seq_len(2048).vocab_size(51200)
//!     .build()?;
//! let mappings = enumerate_mappings(&sys, &model, &EnumerationOptions::default());
//! assert!(!mappings.is_empty());
//! for p in &mappings {
//!     assert_eq!(p.total_workers(), 32);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recommend;
pub mod sweep;

pub use recommend::Recommendation;
pub use sweep::{Sweep, SweepPoint};

use amped_core::{
    AcceleratorSpec, EfficiencyModel, EngineOptions, Estimate, Estimator, MicrobatchPolicy,
    Parallelism, Precision, Result, SystemSpec, TrainingConfig, TransformerModel, ZeroConfig,
};
use amped_energy::{EnergyEstimate, PowerModel};
use amped_memory::{MemoryFootprint, MemoryModel, OptimizerSpec, PipelineSchedule};
use serde::{Deserialize, Serialize};

/// Constraints on the enumeration of parallelism mappings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnumerationOptions {
    /// Permit tensor parallelism across nodes (the paper explores it; it is
    /// usually dominated, so sweeps can prune it).
    pub allow_tp_inter: bool,
    /// Cap on the total tensor-parallel degree (None = head count).
    pub max_tp: Option<usize>,
    /// Cap on the total pipeline-parallel degree (None = layer count).
    pub max_pp: Option<usize>,
    /// Microbatch policy stamped onto every candidate.
    pub microbatch_policy: MicrobatchPolicy,
    /// Bubble ratio `R` stamped onto every candidate.
    pub bubble_ratio: f64,
    /// ZeRO configuration stamped onto every candidate.
    pub zero: ZeroConfig,
}

impl Default for EnumerationOptions {
    /// Defaults to 8-sample microbatches — the practical regime for large
    /// models (whole-replica microbatches blow up activation memory and
    /// `N_ub = N_PP` maximizes the bubble).
    fn default() -> Self {
        EnumerationOptions {
            allow_tp_inter: true,
            max_tp: None,
            max_pp: None,
            microbatch_policy: MicrobatchPolicy::TargetMicrobatch(8),
            bubble_ratio: 1.0,
            zero: ZeroConfig::none(),
        }
    }
}

/// All ordered triples `(a, b, c)` with `a·b·c = n`.
pub fn factor_triples(n: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let rest = n / a;
        for b in 1..=rest {
            if rest.is_multiple_of(b) {
                out.push((a, b, rest / b));
            }
        }
    }
    out
}

/// Every parallelism mapping that tiles `system` and is compatible with
/// `model` under `opts`.
pub fn enumerate_mappings(
    system: &SystemSpec,
    model: &TransformerModel,
    opts: &EnumerationOptions,
) -> Vec<Parallelism> {
    let mut out = Vec::new();
    let max_tp = opts.max_tp.unwrap_or(model.num_heads());
    let max_pp = opts.max_pp.unwrap_or(model.num_layers());
    for (tp_i, pp_i, dp_i) in factor_triples(system.accels_per_node()) {
        for (tp_x, pp_x, dp_x) in factor_triples(system.num_nodes()) {
            if !opts.allow_tp_inter && tp_x > 1 {
                continue;
            }
            if tp_i * tp_x > max_tp || pp_i * pp_x > max_pp {
                continue;
            }
            let built = Parallelism::builder()
                .tp(tp_i, tp_x)
                .pp(pp_i, pp_x)
                .dp(dp_i, dp_x)
                .microbatches(opts.microbatch_policy)
                .bubble_ratio(opts.bubble_ratio)
                .zero(opts.zero)
                .build();
            if let Ok(p) = built {
                if p.validate_against(system, model).is_ok() {
                    out.push(p);
                }
            }
        }
    }
    out
}

/// A fully evaluated candidate mapping.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The mapping.
    pub parallelism: Parallelism,
    /// The analytical estimate at the search batch size.
    pub estimate: Estimate,
    /// Per-device memory footprint.
    pub memory: MemoryFootprint,
    /// Energy of the configured run.
    pub energy: EnergyEstimate,
    /// Whether the footprint fits the accelerator memory.
    pub fits_memory: bool,
}

/// Evaluates and ranks every mapping of a model onto a system.
#[derive(Debug, Clone)]
pub struct SearchEngine<'a> {
    model: &'a TransformerModel,
    accel: &'a AcceleratorSpec,
    system: &'a SystemSpec,
    precision: Precision,
    efficiency: EfficiencyModel,
    engine_options: EngineOptions,
    enumeration: EnumerationOptions,
    power: PowerModel,
    optimizer: OptimizerSpec,
    schedule: PipelineSchedule,
    require_memory_fit: bool,
    tune_microbatches: bool,
}

impl<'a> SearchEngine<'a> {
    /// A search over `model` × `system` with `accel` devices.
    pub fn new(
        model: &'a TransformerModel,
        accel: &'a AcceleratorSpec,
        system: &'a SystemSpec,
    ) -> Self {
        SearchEngine {
            model,
            accel,
            system,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            engine_options: EngineOptions::default(),
            enumeration: EnumerationOptions::default(),
            power: PowerModel::from_accelerator(accel),
            optimizer: OptimizerSpec::default(),
            schedule: PipelineSchedule::default(),
            require_memory_fit: false,
            tune_microbatches: true,
        }
    }

    /// Override the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the efficiency model.
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Override the engine options.
    pub fn with_engine_options(mut self, options: EngineOptions) -> Self {
        self.engine_options = options;
        self
    }

    /// Override the enumeration constraints.
    pub fn with_enumeration(mut self, enumeration: EnumerationOptions) -> Self {
        self.enumeration = enumeration;
        self
    }

    /// Override the power model.
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Override the optimizer used for memory accounting.
    pub fn with_optimizer(mut self, optimizer: OptimizerSpec) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Drop candidates whose footprint exceeds device memory.
    pub fn with_memory_filter(mut self, require_fit: bool) -> Self {
        self.require_memory_fit = require_fit;
        self
    }

    /// The model under search.
    pub fn model(&self) -> &TransformerModel {
        self.model
    }

    /// The accelerator under search.
    pub fn accel(&self) -> &AcceleratorSpec {
        self.accel
    }

    /// The system under search.
    pub fn system(&self) -> &SystemSpec {
        self.system
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The configured efficiency model.
    pub fn efficiency(&self) -> &EfficiencyModel {
        &self.efficiency
    }

    /// The configured engine options.
    pub fn engine_options(&self) -> EngineOptions {
        self.engine_options
    }

    /// Tune the microbatch count per candidate (default on): every
    /// power-of-two microbatch size up to the replica batch is evaluated
    /// and the fastest feasible one kept — what an operator would do, and
    /// what makes DP-heavy and PP-heavy mappings comparable.
    pub fn with_microbatch_tuning(mut self, tune: bool) -> Self {
        self.tune_microbatches = tune;
        self
    }

    /// Evaluate every mapping for `training`, sorted fastest-first.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (which indicate an internal inconsistency
    /// — enumerated mappings have already been validated).
    pub fn search(&self, training: &TrainingConfig) -> Result<Vec<Candidate>> {
        let mappings = enumerate_mappings(self.system, self.model, &self.enumeration);
        let mut out = Vec::with_capacity(mappings.len());
        for p in mappings {
            let Some(candidate) = self.evaluate(&p, training)? else {
                continue;
            };
            out.push(candidate);
        }
        out.sort_by(|a, b| {
            a.estimate
                .total_time
                .get()
                .partial_cmp(&b.estimate.total_time.get())
                .expect("times are finite")
        });
        Ok(out)
    }

    /// Evaluate one mapping: with tuning on, try every power-of-two
    /// microbatch size and keep the fastest memory-feasible variant
    /// (fastest overall if nothing fits and the filter is off).
    fn evaluate(&self, p: &Parallelism, training: &TrainingConfig) -> Result<Option<Candidate>> {
        let replica = (training.global_batch() / p.dp()).max(1);
        let variants: Vec<Parallelism> = if self.tune_microbatches {
            let mut v = Vec::new();
            let mut ub = 1usize;
            while ub <= replica {
                v.push(p.with_microbatches(MicrobatchPolicy::Explicit(replica.div_ceil(ub))));
                ub *= 2;
            }
            v
        } else {
            vec![*p]
        };
        let mut best: Option<Candidate> = None;
        for variant in variants {
            let estimate = Estimator::new(self.model, self.accel, self.system, &variant)
                .with_precision(self.precision)
                .with_efficiency(self.efficiency.clone())
                .with_options(self.engine_options)
                .estimate(training)?;
            let mem_model = MemoryModel::new(self.model, &variant)
                .with_precision(self.precision)
                .with_optimizer(self.optimizer.clone())
                .with_schedule(self.schedule)
                .with_activation_recompute(self.engine_options.activation_recompute);
            let memory =
                mem_model.footprint(estimate.microbatch_size, estimate.num_microbatches);
            let fits_memory = memory.total() <= self.accel.memory_bytes();
            if self.require_memory_fit && !fits_memory {
                continue;
            }
            let better = match &best {
                None => true,
                // Prefer fitting candidates, then faster ones.
                Some(b) => {
                    (fits_memory, std::cmp::Reverse(estimate.total_time.get()))
                        > (b.fits_memory, std::cmp::Reverse(b.estimate.total_time.get()))
                }
            };
            if better {
                let energy =
                    EnergyEstimate::from_estimate(&estimate, &self.power, training.num_batches());
                best = Some(Candidate {
                    parallelism: variant,
                    estimate,
                    memory,
                    energy,
                    fits_memory,
                });
            }
        }
        Ok(best)
    }

    /// The fastest candidate, or `None` when every mapping was filtered out.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn best(&self, training: &TrainingConfig) -> Result<Option<Candidate>> {
        Ok(self.search(training)?.into_iter().next())
    }

    /// Co-optimize the mapping *and* the global batch size: search each
    /// batch in `batches` for a fixed token budget and return the fastest
    /// `(batch, candidate)` end to end. Larger batches raise efficiency but
    /// may harm convergence — the caller owns that judgement (the paper
    /// assumes "minimal impact" up to 16384).
    ///
    /// # Errors
    ///
    /// Propagates estimator errors; batches that divide into no feasible
    /// mapping are skipped.
    pub fn best_over_batches(
        &self,
        batches: &[usize],
        seq_len: usize,
        token_budget: f64,
    ) -> Result<Option<(usize, Candidate)>> {
        let mut best: Option<(usize, Candidate)> = None;
        for &batch in batches {
            let training = TrainingConfig::from_tokens(batch, seq_len, token_budget)?;
            if let Some(c) = self.best(&training)? {
                let better = best
                    .as_ref()
                    .map(|(_, b)| c.estimate.total_time.get() < b.estimate.total_time.get())
                    .unwrap_or(true);
                if better {
                    best = Some((batch, c));
                }
            }
        }
        Ok(best)
    }
}

/// Indices of the Pareto-optimal candidates under
/// (total time, total energy, peak memory) — lower is better on every axis.
pub fn pareto_front(candidates: &[Candidate]) -> Vec<usize> {
    let key = |c: &Candidate| {
        (
            c.estimate.total_time.get(),
            c.energy.total_joules(),
            c.memory.total(),
        )
    };
    let dominates = |a: (f64, f64, f64), b: (f64, f64, f64)| {
        a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
    };
    (0..candidates.len())
        .filter(|&i| {
            let ki = key(&candidates[i]);
            !candidates
                .iter()
                .enumerate()
                .any(|(j, c)| j != i && dominates(key(c), ki))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::Link;

    fn system(nodes: usize, per_node: usize) -> SystemSpec {
        SystemSpec::new(
            nodes,
            per_node,
            Link::new(5e-6, 2.4e12),
            Link::new(1e-5, 2e11),
            per_node,
        )
        .unwrap()
    }

    fn model() -> TransformerModel {
        TransformerModel::builder("m")
            .layers(32)
            .hidden_size(4096)
            .heads(32)
            .seq_len(2048)
            .vocab_size(51200)
            .build()
            .unwrap()
    }

    fn accel() -> AcceleratorSpec {
        AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .power(400.0, 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn factor_triples_multiply_back() {
        for n in [1usize, 2, 8, 12, 16] {
            for (a, b, c) in factor_triples(n) {
                assert_eq!(a * b * c, n);
            }
        }
        assert_eq!(factor_triples(1), vec![(1, 1, 1)]);
        // d(8): triples of divisors with product 8 = 10 compositions.
        assert_eq!(factor_triples(8).len(), 10);
    }

    #[test]
    fn enumeration_covers_and_respects_constraints() {
        let sys = system(4, 8);
        let m = model();
        let all = enumerate_mappings(&sys, &m, &EnumerationOptions::default());
        assert!(!all.is_empty());
        for p in &all {
            assert_eq!(p.total_workers(), 32);
            assert!(p.validate_against(&sys, &m).is_ok());
        }
        let no_tp_inter = enumerate_mappings(
            &sys,
            &m,
            &EnumerationOptions {
                allow_tp_inter: false,
                ..Default::default()
            },
        );
        assert!(no_tp_inter.iter().all(|p| p.tp_inter() == 1));
        assert!(no_tp_inter.len() < all.len());
    }

    #[test]
    fn max_tp_prunes() {
        let sys = system(4, 8);
        let m = model();
        let pruned = enumerate_mappings(
            &sys,
            &m,
            &EnumerationOptions {
                max_tp: Some(4),
                ..Default::default()
            },
        );
        assert!(pruned.iter().all(|p| p.tp() <= 4));
    }

    #[test]
    fn search_ranks_fastest_first() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let engine = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let training = TrainingConfig::new(512, 10).unwrap();
        let results = engine.search(&training).unwrap();
        assert!(results.len() > 10);
        for w in results.windows(2) {
            assert!(w[0].estimate.total_time.get() <= w[1].estimate.total_time.get());
        }
        let best = engine.best(&training).unwrap().unwrap();
        assert_eq!(
            best.estimate.total_time.get(),
            results[0].estimate.total_time.get()
        );
    }

    #[test]
    fn tp_intra_beats_tp_inter_on_slow_networks() {
        // Case-study-I conclusion 2, as a search property: the best mapping
        // never puts TP across nodes when the node fabric is 12x faster.
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let engine = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let best = engine
            .best(&TrainingConfig::new(1024, 1).unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(best.parallelism.tp_inter(), 1, "best = {:?}", best.parallelism);
    }

    #[test]
    fn memory_filter_drops_oversized() {
        let m = model();
        let a = accel();
        let sys = system(1, 2);
        let training = TrainingConfig::new(64, 1).unwrap();
        let all = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .search(&training)
            .unwrap();
        let fitting = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_memory_filter(true)
            .search(&training)
            .unwrap();
        assert!(fitting.len() <= all.len());
        assert!(fitting.iter().all(|c| c.fits_memory));
    }

    #[test]
    fn batch_co_optimization_prefers_larger_batches_for_fixed_tokens() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let engine = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 16.0, 0.05, 0.9));
        let (batch, c) = engine
            .best_over_batches(&[256, 1024, 4096], 2048, 1e9)
            .unwrap()
            .expect("found");
        // With a saturating efficiency, the bigger batch amortizes better.
        assert_eq!(batch, 4096);
        assert!(c.estimate.total_time.get() > 0.0);
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let results = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .search(&TrainingConfig::new(512, 10).unwrap())
            .unwrap();
        let front = pareto_front(&results);
        assert!(!front.is_empty());
        // The fastest candidate is always on the front.
        assert!(front.contains(&0));
        for &i in &front {
            for (j, c) in results.iter().enumerate() {
                if j == i {
                    continue;
                }
                let better_everywhere = c.estimate.total_time.get()
                    < results[i].estimate.total_time.get()
                    && c.energy.total_joules() < results[i].energy.total_joules()
                    && c.memory.total() < results[i].memory.total();
                assert!(!better_everywhere);
            }
        }
    }
}
