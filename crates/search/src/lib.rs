//! # amped-search — parallelism design-space exploration
//!
//! The AMPeD case studies are exhaustive sweeps over every way of mapping
//! tensor, pipeline and data parallelism onto the intra- and inter-node
//! levels of a cluster. This crate is the engine that drives them:
//!
//! * [`enumerate_mappings`] lists every valid
//!   `(TPintra·PPintra·DPintra) × (TPinter·PPinter·DPinter)` factorization of
//!   a system's node shape;
//! * [`SearchEngine`] evaluates each candidate with the analytical model,
//!   filters by memory feasibility, attaches energy, and ranks;
//! * [`pareto_front`] extracts the non-dominated candidates under
//!   (time, energy, memory);
//! * [`GoodputOptions`] switches the objective to *expected* time under
//!   failures (the checkpoint/restart renewal model of
//!   [`ResilienceParams`](amped_core::ResilienceParams)), and a fault plan
//!   can be threaded into simulator refinement
//!   ([`SearchEngine::with_fault_plan`]).
//!
//! # Search performance
//!
//! Three cooperating optimisations keep large sweeps fast, all with
//! deterministic output (see DESIGN.md, "Search architecture"):
//!
//! * **Parallel evaluation** — candidates fan out over a scoped worker
//!   pool ([`SearchEngine::with_parallelism`]); rankings are sorted by a
//!   total key (time, then parallelism degrees) so the result is identical
//!   for any worker count.
//! * **Memoization** — each worker carries an
//!   [`EstimateCache`](amped_core::EstimateCache) so per-layer operation
//!   counts, collective cost factors and other scenario-invariant
//!   sub-results are computed once instead of per candidate
//!   ([`SearchEngine::with_memoization`], on by default).
//! * **Branch-and-bound pruning** — a compute-only lower bound lets
//!   workers skip full evaluation of candidates that cannot beat the best
//!   time seen so far ([`SearchEngine::with_pruning`]); the bound is exact
//!   in f64, so pruning never drops a candidate that would have ranked.
//!
//! # Example
//!
//! ```
//! use amped_core::{AcceleratorSpec, Link, SystemSpec, TransformerModel};
//! use amped_search::{enumerate_mappings, EnumerationOptions};
//!
//! # fn main() -> Result<(), amped_core::Error> {
//! let sys = SystemSpec::new(4, 8, Link::new(5e-6, 2.4e12), Link::new(1e-5, 2e11), 8)?;
//! let model = TransformerModel::builder("m")
//!     .layers(32).hidden_size(4096).heads(32).seq_len(2048).vocab_size(51200)
//!     .build()?;
//! let mappings = enumerate_mappings(&sys, &model, &EnumerationOptions::default());
//! assert!(!mappings.is_empty());
//! for p in &mappings {
//!     assert_eq!(p.total_workers(), 32);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod placement;
pub mod recommend;
pub mod serving;
pub mod sweep;

pub use placement::{placement_for, PlacementChoice};
pub use recommend::Recommendation;
pub use serving::{
    serving_pareto_front, ServingCandidate, ServingRejections, ServingSearch, ServingSearchStats,
    ServingSweepOptions,
};
pub use sweep::{Sweep, SweepCell, SweepPoint, SweepRow};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use amped_core::{
    AcceleratorSpec, BatchEvaluator, CacheLease, CachePool, CorrelatedResilience, CostBackend,
    EfficiencyModel, ElasticParams, EngineOptions, Estimate, EstimateCache, Estimator,
    FailureDomainTree, MicrobatchPolicy, Parallelism, Precision, ResilienceParams,
    ResilienceReport, Result, Scenario, SystemSpec, TrainingConfig, TransformerModel, ZeroConfig,
};
use amped_energy::{EnergyEstimate, PowerModel};
use amped_memory::{MemoryFootprint, MemoryModel, MicrobatchFit, OptimizerSpec, PipelineSchedule};

pub use amped_memory::CapacityFailure;
use amped_obs::Observer;
use amped_sim::{FaultPlan, SimBackend};
use serde::{Deserialize, Serialize};

/// Constraints on the enumeration of parallelism mappings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnumerationOptions {
    /// Permit tensor parallelism across nodes (the paper explores it; it is
    /// usually dominated, so sweeps can prune it).
    pub allow_tp_inter: bool,
    /// Cap on the total tensor-parallel degree (None = head count).
    pub max_tp: Option<usize>,
    /// Cap on the total pipeline-parallel degree (None = layer count).
    pub max_pp: Option<usize>,
    /// Microbatch policy stamped onto every candidate.
    pub microbatch_policy: MicrobatchPolicy,
    /// Bubble ratio `R` stamped onto every candidate.
    pub bubble_ratio: f64,
    /// ZeRO configuration stamped onto every candidate.
    pub zero: ZeroConfig,
}

impl Default for EnumerationOptions {
    /// Defaults to 8-sample microbatches — the practical regime for large
    /// models (whole-replica microbatches blow up activation memory and
    /// `N_ub = N_PP` maximizes the bubble).
    fn default() -> Self {
        EnumerationOptions {
            allow_tp_inter: true,
            max_tp: None,
            max_pp: None,
            microbatch_policy: MicrobatchPolicy::TargetMicrobatch(8),
            bubble_ratio: 1.0,
            zero: ZeroConfig::none(),
        }
    }
}

/// All ordered triples `(a, b, c)` with `a·b·c = n`.
pub fn factor_triples(n: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let rest = n / a;
        for b in 1..=rest {
            if rest.is_multiple_of(b) {
                out.push((a, b, rest / b));
            }
        }
    }
    out
}

/// Every parallelism mapping that tiles `system` and is compatible with
/// `model` under `opts`.
pub fn enumerate_mappings(
    system: &SystemSpec,
    model: &TransformerModel,
    opts: &EnumerationOptions,
) -> Vec<Parallelism> {
    let mut out = Vec::new();
    let max_tp = opts.max_tp.unwrap_or(model.num_heads());
    let max_pp = opts.max_pp.unwrap_or(model.num_layers());
    for (tp_i, pp_i, dp_i) in factor_triples(system.accels_per_node()) {
        for (tp_x, pp_x, dp_x) in factor_triples(system.num_nodes()) {
            if !opts.allow_tp_inter && tp_x > 1 {
                continue;
            }
            if tp_i * tp_x > max_tp || pp_i * pp_x > max_pp {
                continue;
            }
            let built = Parallelism::builder()
                .tp(tp_i, tp_x)
                .pp(pp_i, pp_x)
                .dp(dp_i, dp_x)
                .microbatches(opts.microbatch_policy)
                .bubble_ratio(opts.bubble_ratio)
                .zero(opts.zero)
                .build();
            if let Ok(p) = built {
                if p.validate_against(system, model).is_ok() {
                    out.push(p);
                }
            }
        }
    }
    out
}

/// Failure and checkpoint parameters for ranking candidates by *expected*
/// training time under faults (goodput) instead of fault-free time.
///
/// Checkpoint write cost is derived per candidate from its memory
/// footprint: each device writes its own weight + optimizer shard
/// ([`MemoryFootprint::checkpoint_bytes`]) at `ckpt_write_bytes_per_s`, so
/// PP-heavy mappings (small shards, cheap checkpoints) and DP-heavy
/// mappings (replicated shards) are priced differently — which is exactly
/// what makes the goodput ranking diverge from the fault-free one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoodputOptions {
    /// Per-node mean time between failures, seconds.
    pub node_mtbf_s: f64,
    /// Restart cost after a failure (reload + requeue), seconds.
    #[serde(default = "default_restart_s")]
    pub restart_s: f64,
    /// Checkpoint write bandwidth per device, bytes/s.
    #[serde(default = "default_ckpt_write_bw")]
    pub ckpt_write_bytes_per_s: f64,
    /// Fixed checkpoint interval in seconds (`None` = the Young/Daly
    /// optimum per candidate).
    #[serde(default)]
    pub interval_s: Option<f64>,
    /// Correlated failure domains: when set, candidates are ranked by
    /// their expected time *under a placement* on this tree — the
    /// [`placement_for`] enumerator assigns each mapping's stages and
    /// replicas to domains and the correlated model prices rack/pod
    /// outages (and optionally elastic preemptions) on top of the
    /// independent node failures.
    #[serde(default)]
    pub failure_domains: Option<DomainGoodput>,
}

/// The failure-domain half of [`GoodputOptions`]: the tree, the optional
/// elastic (shrink/regrow) mode, and how mappings are placed on it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainGoodput {
    /// The node < rack < pod hierarchy with per-tier outage rates.
    pub tree: FailureDomainTree,
    /// Elastic capacity parameters; `None` = every outage is fatal.
    #[serde(default)]
    pub elastic: Option<ElasticParams>,
    /// Placement layout (defaults to the blast-radius-minimizing pick).
    #[serde(default)]
    pub placement: PlacementChoice,
}

fn default_restart_s() -> f64 {
    300.0
}

fn default_ckpt_write_bw() -> f64 {
    2e9
}

impl GoodputOptions {
    /// Goodput options with the given per-node MTBF and default restart
    /// cost (300 s) and checkpoint bandwidth (2 GB/s per device).
    pub fn new(node_mtbf_s: f64) -> Self {
        GoodputOptions {
            node_mtbf_s,
            restart_s: default_restart_s(),
            ckpt_write_bytes_per_s: default_ckpt_write_bw(),
            interval_s: None,
            failure_domains: None,
        }
    }

    /// Rank by expected time under correlated outages on `tree` (see
    /// [`DomainGoodput`]).
    pub fn with_failure_domains(mut self, domains: DomainGoodput) -> Self {
        self.failure_domains = Some(domains);
        self
    }
}

/// A fully evaluated candidate mapping.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The mapping.
    pub parallelism: Parallelism,
    /// The analytical estimate at the search batch size.
    pub estimate: Estimate,
    /// Per-device memory footprint.
    pub memory: MemoryFootprint,
    /// Energy of the configured run.
    pub energy: EnergyEstimate,
    /// Whether the footprint fits the accelerator memory.
    pub fits_memory: bool,
    /// The simulator-refined estimate: `None` until a
    /// [`SearchEngine::with_refine_sim`] pass prices this candidate, or
    /// when the simulator rejects it (e.g. the last-stage gather exceeds
    /// device memory).
    pub refined: Option<Estimate>,
    /// Expected-time analysis under the engine's [`GoodputOptions`]:
    /// `None` unless the search ran with [`SearchEngine::with_goodput`].
    pub resilience: Option<ResilienceReport>,
}

impl Candidate {
    /// The estimate ranking this candidate: the simulator-refined one when
    /// present, the analytical one otherwise.
    pub fn ranking_estimate(&self) -> &Estimate {
        self.refined.as_ref().unwrap_or(&self.estimate)
    }

    /// The time this candidate is ranked by: the expected time under
    /// failures when a goodput analysis is attached, the fault-free
    /// analytical total otherwise.
    pub fn objective_time(&self) -> f64 {
        match &self.resilience {
            Some(r) => r.expected_s,
            None => self.estimate.total_time.get(),
        }
    }
}

/// The six parallelism degrees as a lexicographic sort key. Together with
/// the estimated time this is a *total* order over candidates (no two
/// enumerated mappings share all six degrees), which is what makes rankings
/// independent of evaluation order and worker count.
fn parallelism_key(p: &Parallelism) -> [usize; 6] {
    [
        p.tp_intra(),
        p.tp_inter(),
        p.pp_intra(),
        p.pp_inter(),
        p.dp_intra(),
        p.dp_inter(),
    ]
}

/// Ranking order: fastest objective time first (expected time under
/// goodput, fault-free time otherwise), ties broken by the parallelism
/// degrees.
fn candidate_order(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    a.objective_time()
        .total_cmp(&b.objective_time())
        .then_with(|| parallelism_key(&a.parallelism).cmp(&parallelism_key(&b.parallelism)))
}

/// Order within a simulator-refined block: refined candidates first by
/// their simulated time (ties by parallelism degrees — a total order, so
/// the refined ranking is reproducible at any worker count); candidates
/// the simulator rejected sink below every refined one, keeping their
/// analytical order among themselves.
fn refined_order(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    match (&a.refined, &b.refined) {
        (Some(ra), Some(rb)) => ra
            .total_time
            .get()
            .total_cmp(&rb.total_time.get())
            .then_with(|| parallelism_key(&a.parallelism).cmp(&parallelism_key(&b.parallelism))),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => candidate_order(a, b),
    }
}

/// What happened to one candidate during a (possibly pruned) search pass.
enum Outcome {
    /// Skipped: its lower bound already exceeded the incumbent best time.
    Pruned,
    /// Evaluated, but every microbatch variant failed the memory filter;
    /// carries the first capacity inequality violated (at the smallest
    /// microbatch, the mapping's most feasible point).
    Filtered(CapacityFailure),
    /// Evaluated and retained.
    Kept {
        /// The candidate's compute-only lower bound (`-inf` when pruning is
        /// off), used by the deterministic post-filter.
        lower_bound: f64,
        /// The winning microbatch variant.
        candidate: Box<Candidate>,
    },
}

/// One evaluated mapping: the winning microbatch variant, or the capacity
/// inequality that rejected every variant.
pub(crate) type Scored = std::result::Result<Box<Candidate>, CapacityFailure>;

/// One closed-form max-microbatch solve: the highest fitting ladder rung,
/// or the capacity inequality that rejects even the smallest microbatch.
type SolveOutcome = std::result::Result<MicrobatchFit, CapacityFailure>;

/// Memory-rejection counts of one search pass, split by which capacity
/// inequality failed first (checked in footprint order: weights, then
/// +gradients, then +optimizer, then +activations — see
/// [`CapacityFailure`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRejections {
    /// Weights alone exceed device memory.
    pub weights: u64,
    /// Weights + gradients exceed device memory.
    pub gradients: u64,
    /// Weights + gradients + optimizer state exceed device memory.
    pub optimizer: u64,
    /// The full footprint (with activations) exceeds device memory at
    /// every microbatch size.
    pub activations: u64,
}

impl MemoryRejections {
    /// Total mappings rejected by the memory filter.
    pub fn total(&self) -> u64 {
        self.weights + self.gradients + self.optimizer + self.activations
    }

    fn record(&mut self, failure: CapacityFailure) {
        match failure {
            CapacityFailure::Weights => self.weights += 1,
            CapacityFailure::Gradients => self.gradients += 1,
            CapacityFailure::Optimizer => self.optimizer += 1,
            CapacityFailure::Activations => self.activations += 1,
        }
    }
}

/// Candidate accounting of one search pass. The identities
/// `generated = pruned + kept + memory_rejected.total()` hold exactly at
/// any worker count (the pruned/kept split itself depends on thread timing
/// only when pruning is on; the retained ranking never does).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Mappings enumerated.
    pub generated: u64,
    /// Mappings skipped by branch-and-bound pruning.
    pub pruned: u64,
    /// Mappings that produced a ranked candidate.
    pub kept: u64,
    /// Mappings rejected by the memory filter, by failing inequality.
    pub memory_rejected: MemoryRejections,
}

/// Evaluates and ranks every mapping of a model onto a system.
#[derive(Debug, Clone)]
pub struct SearchEngine<'a> {
    model: &'a TransformerModel,
    accel: &'a AcceleratorSpec,
    system: &'a SystemSpec,
    precision: Precision,
    efficiency: EfficiencyModel,
    engine_options: EngineOptions,
    enumeration: EnumerationOptions,
    power: PowerModel,
    optimizer: OptimizerSpec,
    schedule: PipelineSchedule,
    require_memory_fit: bool,
    tune_microbatches: bool,
    jobs: usize,
    prune: bool,
    memoize: bool,
    batch: bool,
    refine_sim: usize,
    goodput: Option<GoodputOptions>,
    fault_plan: Option<FaultPlan>,
    observer: Option<Arc<Observer>>,
    cache_pool: Option<Arc<CachePool>>,
}

/// The memoization cache one search worker evaluates against: either a
/// private fresh cache (the default) or a lease from a shared
/// [`CachePool`], so a long-lived process can carry warmed sub-results
/// across searches. Both are bit-identical to evaluate against (warming a
/// cache never changes `estimate_cached` results), so attaching a pool is
/// as invisible to rankings as attaching an observer.
enum WorkerCache<'pool> {
    Fresh(EstimateCache),
    Pooled(CacheLease<'pool>),
}

impl std::ops::Deref for WorkerCache<'_> {
    type Target = EstimateCache;

    fn deref(&self) -> &EstimateCache {
        match self {
            WorkerCache::Fresh(cache) => cache,
            WorkerCache::Pooled(lease) => lease,
        }
    }
}

impl std::ops::DerefMut for WorkerCache<'_> {
    fn deref_mut(&mut self) -> &mut EstimateCache {
        match self {
            WorkerCache::Fresh(cache) => cache,
            WorkerCache::Pooled(lease) => lease,
        }
    }
}

impl<'a> SearchEngine<'a> {
    /// A search over `model` × `system` with `accel` devices.
    pub fn new(
        model: &'a TransformerModel,
        accel: &'a AcceleratorSpec,
        system: &'a SystemSpec,
    ) -> Self {
        SearchEngine {
            model,
            accel,
            system,
            precision: Precision::default(),
            efficiency: EfficiencyModel::default(),
            engine_options: EngineOptions::default(),
            enumeration: EnumerationOptions::default(),
            power: PowerModel::from_accelerator(accel),
            optimizer: OptimizerSpec::default(),
            schedule: PipelineSchedule::default(),
            require_memory_fit: false,
            tune_microbatches: true,
            jobs: 0,
            prune: false,
            memoize: true,
            batch: true,
            refine_sim: 0,
            goodput: None,
            fault_plan: None,
            observer: None,
            cache_pool: None,
        }
    }

    /// Override the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Override the efficiency model.
    pub fn with_efficiency(mut self, efficiency: EfficiencyModel) -> Self {
        self.efficiency = efficiency;
        self
    }

    /// Override the engine options.
    pub fn with_engine_options(mut self, options: EngineOptions) -> Self {
        self.engine_options = options;
        self
    }

    /// Override the enumeration constraints.
    pub fn with_enumeration(mut self, enumeration: EnumerationOptions) -> Self {
        self.enumeration = enumeration;
        self
    }

    /// Override the power model.
    pub fn with_power(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Override the optimizer used for memory accounting.
    pub fn with_optimizer(mut self, optimizer: OptimizerSpec) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Drop candidates whose footprint exceeds device memory.
    pub fn with_memory_filter(mut self, require_fit: bool) -> Self {
        self.require_memory_fit = require_fit;
        self
    }

    /// Number of worker threads evaluating candidates (0 = one per
    /// available CPU, the default). `1` forces the in-thread serial path —
    /// the reference for differential tests. Rankings are identical for
    /// every worker count.
    pub fn with_parallelism(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Enable branch-and-bound pruning (default off): candidates whose
    /// compute-only lower bound exceeds the best total time seen so far
    /// skip full estimation, memory and energy accounting. The bound is
    /// exact in f64 against the memoized estimation path (which pruning
    /// therefore implies), so the pruned ranking is the truncation of the
    /// full ranking to candidates with `lower_bound <= best_time` —
    /// deterministic and always containing the optimum.
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }

    /// Re-rank the analytical top-`k` through the discrete-event simulator
    /// (default 0 = off): after the analytical prune + rank, the `k`
    /// fastest candidates are re-priced by [`SimBackend`] over the same
    /// worker pool and re-ordered by simulated time (deterministic
    /// tie-breaking by parallelism degrees, so refined rankings are
    /// reproducible at any [`SearchEngine::with_parallelism`] setting).
    /// Candidates the simulator rejects — e.g. the GPipe last-stage
    /// microbatch gather exceeds device memory — keep `refined = None` and
    /// sink below every refined candidate. The tail beyond `k` keeps its
    /// analytical order.
    pub fn with_refine_sim(mut self, k: usize) -> Self {
        self.refine_sim = k;
        self
    }

    /// Rank candidates by *expected* training time under failures — the
    /// checkpoint/restart renewal model of
    /// [`ResilienceParams`](amped_core::ResilienceParams) — instead of the
    /// fault-free total. Every kept candidate carries its
    /// [`ResilienceReport`] in [`Candidate::resilience`], with the
    /// checkpoint cost derived from that candidate's own memory footprint.
    ///
    /// Branch-and-bound pruning stays sound: the compute-only lower bound
    /// never exceeds the fault-free time, which never exceeds the expected
    /// time, so the incumbent (now an expected time) can only be *looser*
    /// than before — no candidate that would rank is ever skipped.
    pub fn with_goodput(mut self, goodput: GoodputOptions) -> Self {
        self.goodput = Some(goodput);
        self
    }

    /// Thread a [`FaultPlan`] into the simulator-refinement pass
    /// ([`SearchEngine::with_refine_sim`]): refined candidates are priced
    /// by a full fault-injected run (stragglers, link faults, failures and
    /// checkpoint writes) instead of a clean iteration. Inert plans
    /// (`seed = None`) leave refinement bit-identical to no plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attach an observer recording what the search did: phase timings
    /// (`search.enumerate` / `search.explore` / `search.rank` /
    /// `search.refine`), candidate counters
    /// (`search.candidates.{generated,pruned,evaluated,memory_rejected,kept}`),
    /// memoization cache traffic (`search.cache.{hits,misses,lookups}`),
    /// per-candidate `prune`/`evaluate`/`refine` spans on one trace track
    /// per worker thread, and — through the simulator-refinement backend —
    /// the `backend.sim.*` and `sim.des.*` series.
    ///
    /// Observation is passive: rankings and every estimate in them are
    /// bit-identical with or without an observer, at any worker count. The
    /// counters satisfy exact identities (`generated = pruned + evaluated`,
    /// `evaluated = kept + memory_rejected`,
    /// `lookups = hits + misses`) even though the individual `pruned` /
    /// `evaluated` split varies with thread timing when `jobs > 1` (the
    /// incumbent bound tightens at different moments).
    pub fn with_observer(mut self, observer: Arc<Observer>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Share a process-wide [`CachePool`] across searches: workers check
    /// their [`EstimateCache`](amped_core::EstimateCache)s out of the pool
    /// (shelved under this engine's [`context_key`](amped_core::context_key),
    /// so the cache's context-binding contract still holds) and return
    /// them warmed when the pass finishes. Repeated or overlapping
    /// searches over the same scenario then start with their sub-results
    /// memoized. Like an observer, a pool is passive: rankings and every
    /// estimate in them are bit-identical with or without one, at any
    /// worker count.
    pub fn with_cache_pool(mut self, pool: Arc<CachePool>) -> Self {
        self.cache_pool = Some(pool);
        self
    }

    /// Use the batched evaluation path (default on): workers price chunks
    /// of candidates through
    /// [`BatchEvaluator::estimate_many`](amped_core::BatchEvaluator), which
    /// hoists scenario-invariant work out of the per-candidate loop and
    /// replaces the per-variant memory re-runs with the closed-form
    /// max-microbatch solve
    /// ([`MemoryModel::solve_max_microbatch`](amped_memory::MemoryModel::solve_max_microbatch)).
    /// Batched estimates are bit-identical to the scalar memoized loop at
    /// any worker count (pinned by differential tests), so turning this
    /// off — the scalar reference for those tests — only changes speed.
    /// Batching requires the memoized path and is inert when both
    /// memoization and pruning are off.
    pub fn with_batching(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Whether searches run through the batched evaluation path: batching
    /// enabled on an engine whose estimates go through the memoized path
    /// (which the batch evaluator is bit-identical to — the unmemoized
    /// reference differs by float associativity).
    fn batching_active(&self) -> bool {
        self.batch && (self.memoize || self.prune)
    }

    /// Use the memoized estimation path (default on): each worker carries
    /// an [`EstimateCache`](amped_core::EstimateCache) so scenario-invariant
    /// sub-results are computed once per search, not per candidate. Turning
    /// it off (without pruning) evaluates through the original
    /// [`Estimator::estimate`], the reference path for differential tests
    /// and benchmarks; cached and uncached estimates agree to float
    /// associativity (~1e-12 relative on deep stacks).
    pub fn with_memoization(mut self, memoize: bool) -> Self {
        self.memoize = memoize;
        self
    }

    /// The model under search.
    pub fn model(&self) -> &TransformerModel {
        self.model
    }

    /// The accelerator under search.
    pub fn accel(&self) -> &AcceleratorSpec {
        self.accel
    }

    /// The system under search.
    pub fn system(&self) -> &SystemSpec {
        self.system
    }

    /// The configured precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The configured efficiency model.
    pub fn efficiency(&self) -> &EfficiencyModel {
        &self.efficiency
    }

    /// The configured engine options.
    pub fn engine_options(&self) -> EngineOptions {
        self.engine_options
    }

    /// The configured simulator-refinement depth (0 = off).
    pub fn refine_sim(&self) -> usize {
        self.refine_sim
    }

    /// An owned [`Scenario`] of this engine's configuration under
    /// `parallelism` — the bridge from the engine's borrowed specifications
    /// to any [`CostBackend`].
    pub fn scenario_for(&self, parallelism: Parallelism) -> Scenario {
        Scenario::new(
            self.model.clone(),
            self.accel.clone(),
            self.system.clone(),
            parallelism,
        )
        .with_precision(self.precision)
        .with_efficiency(self.efficiency.clone())
        .with_options(self.engine_options)
    }

    /// Tune the microbatch count per candidate (default on): every
    /// power-of-two microbatch size up to the replica batch is evaluated
    /// and the fastest feasible one kept — what an operator would do, and
    /// what makes DP-heavy and PP-heavy mappings comparable.
    pub fn with_microbatch_tuning(mut self, tune: bool) -> Self {
        self.tune_microbatches = tune;
        self
    }

    /// Evaluate every mapping for `training`, sorted fastest-first (ties
    /// broken by the parallelism degrees, so the ranking is a total order
    /// and identical for every worker count).
    ///
    /// With pruning on, the result is the full ranking truncated to
    /// candidates whose compute-only lower bound does not exceed the best
    /// total time — still deterministic, and always led by the optimum.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (which indicate an internal inconsistency
    /// — enumerated mappings have already been validated).
    pub fn search(&self, training: &TrainingConfig) -> Result<Vec<Candidate>> {
        Ok(self.search_with_stats(training)?.0)
    }

    /// [`SearchEngine::search`], additionally returning the pass's
    /// candidate accounting — including *which* capacity inequality
    /// rejected each memory-filtered mapping (weights, gradients,
    /// optimizer state, or activations), classified at the mapping's
    /// smallest microbatch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SearchEngine::search`].
    pub fn search_with_stats(
        &self,
        training: &TrainingConfig,
    ) -> Result<(Vec<Candidate>, SearchStats)> {
        let mappings = {
            let _phase = self.observer.as_ref().map(|o| o.phase("search.enumerate"));
            enumerate_mappings(self.system, self.model, &self.enumeration)
        };
        let best_bits = AtomicU64::new(f64::INFINITY.to_bits());
        let outcomes = {
            let _phase = self.observer.as_ref().map(|o| o.phase("search.explore"));
            self.explore_all(&mappings, training, &best_bits)
        };
        let _rank_phase = self.observer.as_ref().map(|o| o.phase("search.rank"));
        let mut stats = SearchStats {
            generated: mappings.len() as u64,
            ..SearchStats::default()
        };
        let mut kept: Vec<(f64, Candidate)> = Vec::new();
        for outcome in outcomes {
            match outcome? {
                Outcome::Pruned => stats.pruned += 1,
                Outcome::Filtered(failure) => stats.memory_rejected.record(failure),
                Outcome::Kept {
                    lower_bound,
                    candidate,
                } => kept.push((lower_bound, *candidate)),
            }
        }
        stats.kept = kept.len() as u64;
        let n_filtered = stats.memory_rejected.total();
        if let Some(obs) = &self.observer {
            // Counted post-hoc from the collected outcomes, so workers never
            // touch shared counters in their hot loop. The identities
            // generated = pruned + evaluated and
            // evaluated = kept + memory_rejected hold exactly at any worker
            // count (the pruned/evaluated split itself is timing-dependent).
            obs.add("search.candidates.generated", mappings.len() as u64);
            obs.add("search.candidates.pruned", stats.pruned);
            obs.add("search.candidates.memory_rejected", n_filtered);
            obs.add("search.candidates.kept", kept.len() as u64);
            obs.add("search.candidates.evaluated", n_filtered + kept.len() as u64);
        }
        if self.prune {
            // Which candidates get skipped at runtime depends on thread
            // timing; retaining exactly {lower_bound <= best total} does
            // not (every runtime-skipped candidate had a bound above the
            // incumbent, which never drops below the final best).
            let best_time = kept
                .iter()
                .map(|(_, c)| c.objective_time())
                .fold(f64::INFINITY, f64::min);
            kept.retain(|(lb, _)| *lb <= best_time);
        }
        let mut out: Vec<Candidate> = kept.into_iter().map(|(_, c)| c).collect();
        out.sort_by(candidate_order);
        drop(_rank_phase);
        if self.refine_sim > 0 {
            let _phase = self.observer.as_ref().map(|o| o.phase("search.refine"));
            self.refine(&mut out, training)?;
        }
        Ok((out, stats))
    }

    /// Re-price the analytical top-`refine_sim` candidates through
    /// [`SimBackend`] and re-order that block by simulated time.
    ///
    /// Refinement runs over the same worker pool as the analytical pass;
    /// results land in index-ordered slots and the simulator is
    /// deterministic, so refined rankings are bit-identical at any worker
    /// count. A candidate the simulator rejects (e.g. the Fig. 2b last-stage
    /// microbatch gather exceeds device memory) keeps `refined = None` and
    /// sinks below every refined candidate in the block.
    fn refine(&self, ranked: &mut [Candidate], training: &TrainingConfig) -> Result<()> {
        let k = self.refine_sim.min(ranked.len());
        if k == 0 {
            return Ok(());
        }
        // Simulate the schedule the analytical pass assumed, so the sim's
        // memory gate judges candidates under the same in-flight activation
        // policy as the engine's own fit check.
        let mut backend = SimBackend::new().with_schedule(match self.schedule {
            PipelineSchedule::GPipe => amped_sim::PipelineSchedule::GPipe,
            PipelineSchedule::OneFOneB => amped_sim::PipelineSchedule::OneFOneB,
        });
        if let Some(plan) = &self.fault_plan {
            backend = backend.with_fault_plan(plan.clone());
        }
        if let Some(obs) = &self.observer {
            // Skip per-device utilization samples: refined candidates race
            // on the worker pool and the samples are last-writer-wins, which
            // would make the report depend on scheduling. Counters and spans
            // are additive and stay exact.
            backend = backend
                .with_observer(obs.clone())
                .without_device_samples();
        }
        let refined = self.run_parallel(k, |_cache, i| {
            let _span = self.observer.as_ref().map(|o| o.span("refine"));
            let scenario = self.scenario_for(ranked[i].parallelism);
            Ok(backend.evaluate(&scenario, training).ok())
        });
        let mut n_accepted = 0u64;
        for (candidate, refined) in ranked.iter_mut().zip(refined) {
            candidate.refined = refined?;
            if candidate.refined.is_some() {
                n_accepted += 1;
            }
        }
        if let Some(obs) = &self.observer {
            obs.add("search.refine.attempted", k as u64);
            obs.add("search.refine.accepted", n_accepted);
            obs.add("search.refine.rejected", k as u64 - n_accepted);
        }
        ranked[..k].sort_by(refined_order);
        Ok(())
    }

    /// Explore every mapping over the worker pool, returning outcomes in
    /// mapping order: chunked through the batch evaluator when batching is
    /// active, the scalar per-candidate path otherwise. Both paths produce
    /// bit-identical outcomes (pinned by differential tests); the chunk
    /// size only shapes wall-clock.
    fn explore_all(
        &self,
        mappings: &[Parallelism],
        training: &TrainingConfig,
        best_bits: &AtomicU64,
    ) -> Vec<Result<Outcome>> {
        if !self.batching_active() {
            return self.run_parallel(mappings.len(), |cache, i| {
                self.explore(cache, &mappings[i], training, best_bits)
            });
        }
        // Small enough chunks keep the pool load-balanced (several chunks
        // per worker), large enough ones amortize the batch setup. The
        // boundary cannot change results — only the incumbent's tightening
        // cadence, which the deterministic post-filter normalizes.
        let jobs = self.effective_jobs(mappings.len());
        let chunk = (mappings.len() / (4 * jobs)).clamp(1, 64);
        let n_chunks = mappings.len().div_ceil(chunk);
        let chunks = self.run_parallel(n_chunks, |cache, ci| {
            let start = ci * chunk;
            let end = (start + chunk).min(mappings.len());
            Ok(self.explore_chunk(cache, &mappings[start..end], training, best_bits))
        });
        chunks
            .into_iter()
            .flat_map(|c| c.expect("chunk exploration itself is infallible"))
            .collect()
    }

    /// Lower-bound, prune, evaluate and score one mapping against the
    /// shared incumbent best time — the scalar exploration path.
    fn explore(
        &self,
        cache: &mut EstimateCache,
        p: &Parallelism,
        training: &TrainingConfig,
        best_bits: &AtomicU64,
    ) -> Result<Outcome> {
        let lower_bound = if self.prune {
            let _span = self.observer.as_ref().map(|o| o.span("prune"));
            let lb = self.candidate_lower_bound(cache, p, training)?;
            // Total times are non-negative finite, for which the f64 bit
            // pattern orders like the value — so the incumbent can live in
            // an AtomicU64 and be tightened with fetch_min.
            if lb > f64::from_bits(best_bits.load(Ordering::Relaxed)) {
                return Ok(Outcome::Pruned);
            }
            lb
        } else {
            f64::NEG_INFINITY
        };
        let _span = self.observer.as_ref().map(|o| o.span("evaluate"));
        match self.evaluate(cache, p, training)? {
            Err(failure) => Ok(Outcome::Filtered(failure)),
            Ok(candidate) => {
                best_bits.fetch_min(candidate.objective_time().to_bits(), Ordering::Relaxed);
                Ok(Outcome::Kept {
                    lower_bound,
                    candidate,
                })
            }
        }
    }

    /// Explore a contiguous run of mappings through one
    /// [`BatchEvaluator::estimate_many`] call: prune per mapping against
    /// the incumbent, then price every surviving mapping's microbatch
    /// variants in a single batch and fold each mapping's variants exactly
    /// as the scalar path does.
    fn explore_chunk(
        &self,
        cache: &mut EstimateCache,
        chunk: &[Parallelism],
        training: &TrainingConfig,
        best_bits: &AtomicU64,
    ) -> Vec<Result<Outcome>> {
        let mut out: Vec<Option<Result<Outcome>>> = (0..chunk.len()).map(|_| None).collect();
        let mut lower_bounds = vec![f64::NEG_INFINITY; chunk.len()];
        let mut spans = vec![(0usize, 0usize); chunk.len()];
        let mut plans: Vec<Option<(MemoryModel<'_>, Option<SolveOutcome>)>> =
            (0..chunk.len()).map(|_| None).collect();
        let mut batched: Vec<Parallelism> = Vec::new();
        for (i, p) in chunk.iter().enumerate() {
            if self.prune {
                let _span = self.observer.as_ref().map(|o| o.span("prune"));
                match self.candidate_lower_bound(cache, p, training) {
                    Err(e) => {
                        out[i] = Some(Err(e));
                        continue;
                    }
                    Ok(lb) if lb > f64::from_bits(best_bits.load(Ordering::Relaxed)) => {
                        out[i] = Some(Ok(Outcome::Pruned));
                        continue;
                    }
                    Ok(lb) => lower_bounds[i] = lb,
                }
            }
            let mem_model = self.memory_model(p);
            let start = batched.len();
            let (len, solved) = self.plan_variants(&mem_model, p, training, &mut batched);
            spans[i] = (start, len);
            plans[i] = Some((mem_model, solved));
        }
        let estimates = self.batch_evaluator().estimate_many(cache, &batched, training);
        for (i, plan) in plans.iter().enumerate() {
            if out[i].is_some() {
                continue;
            }
            let (mem_model, solved) = plan.as_ref().expect("unresolved slots carry a plan");
            let (start, len) = spans[i];
            let _span = self.observer.as_ref().map(|o| o.span("evaluate"));
            let outcome = self
                .score_mapping(
                    mem_model,
                    solved,
                    &batched[start..start + len],
                    &estimates[start..start + len],
                    training,
                )
                .map(|scored| match scored {
                    Err(failure) => Outcome::Filtered(failure),
                    Ok(candidate) => {
                        best_bits
                            .fetch_min(candidate.objective_time().to_bits(), Ordering::Relaxed);
                        Outcome::Kept {
                            lower_bound: lower_bounds[i],
                            candidate,
                        }
                    }
                });
            out[i] = Some(outcome);
        }
        out.into_iter()
            .map(|o| o.expect("every chunk slot is scored"))
            .collect()
    }

    /// This engine's configuration as a [`BatchEvaluator`].
    fn batch_evaluator(&self) -> BatchEvaluator<'a> {
        BatchEvaluator::new(self.model, self.accel, self.system)
            .with_precision(self.precision)
            .with_efficiency(self.efficiency.clone())
            .with_options(self.engine_options)
    }

    /// How many worker threads a run over `tasks` items should use.
    fn effective_jobs(&self, tasks: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        requested.min(tasks).max(1)
    }

    /// The cache a worker evaluates against: a lease from the shared
    /// [`CachePool`] when one is attached, a private fresh cache
    /// otherwise. `pool_key` is this engine's context key, computed once
    /// per pass (see [`SearchEngine::with_cache_pool`]).
    fn worker_cache(&self, pool_key: Option<u64>) -> WorkerCache<'_> {
        match (&self.cache_pool, pool_key) {
            (Some(pool), Some(key)) => WorkerCache::Pooled(pool.checkout(key)),
            _ => WorkerCache::Fresh(EstimateCache::new()),
        }
    }

    /// Run `f(cache, index)` for every index in `0..tasks` over a scoped
    /// worker pool (or inline when one worker suffices) and return the
    /// results in index order. Each worker owns one [`EstimateCache`] —
    /// checked out of the shared [`CachePool`] when one is attached —
    /// upholding the cache's context-binding contract for this engine's
    /// fixed scenario; indices are handed out through an atomic counter so
    /// the pool load-balances regardless of per-candidate cost.
    fn run_parallel<T, F>(&self, tasks: usize, f: F) -> Vec<Result<T>>
    where
        T: Send,
        F: Fn(&mut EstimateCache, usize) -> Result<T> + Sync,
    {
        let pool_key = self.cache_pool.as_ref().map(|_| {
            amped_core::context_key(
                self.model,
                self.accel,
                self.system,
                self.precision,
                &self.efficiency,
                self.engine_options,
            )
        });
        let jobs = self.effective_jobs(tasks);
        if jobs <= 1 {
            let mut cache = self.worker_cache(pool_key);
            let (hits0, misses0) = (cache.hits(), cache.misses());
            let out = (0..tasks).map(|i| f(&mut cache, i)).collect();
            self.flush_cache_stats(cache.hits() - hits0, cache.misses() - misses0);
            return out;
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<Result<T>>> = (0..tasks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs)
                .map(|_| {
                    scope.spawn(|| {
                        let mut cache = self.worker_cache(pool_key);
                        let (hits0, misses0) = (cache.hits(), cache.misses());
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            done.push((i, f(&mut cache, i)));
                        }
                        self.flush_cache_stats(cache.hits() - hits0, cache.misses() - misses0);
                        done
                    })
                })
                .collect();
            for worker in workers {
                for (i, result) in worker.join().expect("search worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every task index is dispatched exactly once"))
            .collect()
    }

    /// Fold one worker's memoization-cache traffic into the observer
    /// (once per worker at pool teardown — never in the hot loop). Takes
    /// the delta accumulated during this pass, so pre-warmed pool caches
    /// are not re-counted.
    fn flush_cache_stats(&self, hits: u64, misses: u64) {
        if let Some(obs) = &self.observer {
            obs.add("search.cache.hits", hits);
            obs.add("search.cache.misses", misses);
            obs.add("search.cache.lookups", hits + misses);
        }
    }

    /// The microbatch variants `evaluate` tries for one mapping: every
    /// power-of-two microbatch size up to the replica batch when tuning is
    /// on, the mapping's own policy otherwise.
    fn microbatch_variants(&self, p: &Parallelism, training: &TrainingConfig) -> Vec<Parallelism> {
        if !self.tune_microbatches {
            return vec![*p];
        }
        let replica = (training.global_batch() / p.dp()).max(1);
        let mut variants = Vec::new();
        let mut ub = 1usize;
        while ub <= replica {
            variants.push(p.with_microbatches(MicrobatchPolicy::Explicit(replica.div_ceil(ub))));
            ub *= 2;
        }
        variants
    }

    /// The cheapest possible total time of any microbatch variant of `p`:
    /// the minimum of the per-variant compute-only lower bounds (cheap —
    /// O(layer kinds) per variant against the shared cache).
    fn candidate_lower_bound(
        &self,
        cache: &mut EstimateCache,
        p: &Parallelism,
        training: &TrainingConfig,
    ) -> Result<f64> {
        let mut lb = f64::INFINITY;
        for variant in self.microbatch_variants(p, training) {
            let bound = Estimator::new(self.model, self.accel, self.system, &variant)
                .with_precision(self.precision)
                .with_efficiency(self.efficiency.clone())
                .with_options(self.engine_options)
                .compute_lower_bound(cache, training)?;
            lb = lb.min(bound.get());
        }
        Ok(lb)
    }

    /// Evaluate one mapping: with tuning on, try every power-of-two
    /// microbatch size and keep the fastest memory-feasible variant
    /// (fastest overall if nothing fits and the filter is off). When the
    /// filter rejects every variant, report which capacity inequality
    /// failed first (classified at the smallest microbatch, the mapping's
    /// most feasible point — matching the closed-form solve's verdict).
    ///
    /// Pruning requires estimates the lower bound is exact against, so it
    /// forces the memoized path even when memoization is off.
    fn evaluate(
        &self,
        cache: &mut EstimateCache,
        p: &Parallelism,
        training: &TrainingConfig,
    ) -> Result<Scored> {
        let use_cache = self.memoize || self.prune;
        let mut best: Option<Candidate> = None;
        let mut first_failure: Option<CapacityFailure> = None;
        for variant in self.microbatch_variants(p, training) {
            let estimator = Estimator::new(self.model, self.accel, self.system, &variant)
                .with_precision(self.precision)
                .with_efficiency(self.efficiency.clone())
                .with_options(self.engine_options);
            let estimate = if use_cache {
                estimator.estimate_cached(cache, training)?
            } else {
                estimator.estimate(training)?
            };
            let mem_model = MemoryModel::new(self.model, &variant)
                .with_precision(self.precision)
                .with_optimizer(self.optimizer.clone())
                .with_schedule(self.schedule)
                .with_activation_recompute(self.engine_options.activation_recompute);
            let memory = mem_model.footprint(estimate.microbatch_size, estimate.num_microbatches);
            let fits_memory = memory.total() <= self.accel.memory_bytes();
            if self.require_memory_fit && !fits_memory {
                if first_failure.is_none() {
                    first_failure = Some(memory.capacity_failure(self.accel.memory_bytes()));
                }
                continue;
            }
            let better = match &best {
                None => true,
                // Prefer fitting candidates, then faster ones.
                Some(b) => {
                    (fits_memory, std::cmp::Reverse(estimate.total_time.get()))
                        > (b.fits_memory, std::cmp::Reverse(b.estimate.total_time.get()))
                }
            };
            if better {
                let energy =
                    EnergyEstimate::from_estimate(&estimate, &self.power, training.num_batches());
                best = Some(Candidate {
                    parallelism: variant,
                    estimate,
                    memory,
                    energy,
                    fits_memory,
                    refined: None,
                    resilience: None,
                });
            }
        }
        let Some(mut candidate) = best else {
            return Ok(Err(first_failure
                .expect("a mapping with no retained variant had a rejected one")));
        };
        if let Some(goodput) = &self.goodput {
            candidate.resilience = Some(self.resilience_report(goodput, &candidate)?);
        }
        Ok(Ok(Box::new(candidate)))
    }

    /// Evaluate one mapping through the configured path: batched when
    /// batching is active, the scalar per-variant loop otherwise. The
    /// sweep grid evaluates through this dispatcher.
    pub(crate) fn evaluate_cell(
        &self,
        cache: &mut EstimateCache,
        p: &Parallelism,
        training: &TrainingConfig,
    ) -> Result<Scored> {
        if self.batching_active() {
            self.evaluate_mapping_batched(cache, p, training)
        } else {
            self.evaluate(cache, p, training)
        }
    }

    /// Evaluate one mapping's microbatch variants through the batch
    /// evaluator — [`SearchEngine::evaluate`] semantics, bit-identical
    /// results, one `estimate_many` call instead of a per-variant loop.
    fn evaluate_mapping_batched(
        &self,
        cache: &mut EstimateCache,
        p: &Parallelism,
        training: &TrainingConfig,
    ) -> Result<Scored> {
        let mem_model = self.memory_model(p);
        let mut variants = Vec::new();
        let (_, solved) = self.plan_variants(&mem_model, p, training, &mut variants);
        let estimates = self.batch_evaluator().estimate_many(cache, &variants, training);
        self.score_mapping(&mem_model, &solved, &variants, &estimates, training)
    }

    /// This mapping's per-device memory model under the engine's
    /// precision, optimizer, schedule and recompute policy.
    fn memory_model<'m>(&'m self, p: &'m Parallelism) -> MemoryModel<'m> {
        MemoryModel::new(self.model, p)
            .with_precision(self.precision)
            .with_optimizer(self.optimizer.clone())
            .with_schedule(self.schedule)
            .with_activation_recompute(self.engine_options.activation_recompute)
    }

    /// The microbatch variants worth pricing for `p`, with the closed-form
    /// memory solve that justifies any truncation. The tuning ladder is
    /// exactly the solver's (trial microbatch `2^k`), and feasibility is a
    /// prefix of the ladder, so:
    ///
    /// * when some rung fits, rungs past `ladder_index` can never win the
    ///   `(fits, time)` fold — a fitting variant always beats a non-fitting
    ///   one — and are not worth pricing;
    /// * when nothing fits and the memory filter is on, the mapping will be
    ///   rejected whatever the estimates say — one variant is still priced
    ///   so engine-level validation errors propagate exactly as the scalar
    ///   path propagates them (estimate errors depend only on the mapping
    ///   and engine configuration, never on the microbatch count).
    ///
    /// Without tuning the single variant carries its own policy, which
    /// need not be a ladder point — no solve, direct footprints instead.
    ///
    /// Variants are appended to `out` (the caller's shared batch buffer —
    /// one allocation per chunk instead of one per mapping); the returned
    /// count is the appended span's length.
    fn plan_variants(
        &self,
        mem_model: &MemoryModel<'_>,
        p: &Parallelism,
        training: &TrainingConfig,
        out: &mut Vec<Parallelism>,
    ) -> (usize, Option<SolveOutcome>) {
        if !self.tune_microbatches {
            out.push(*p);
            return (1, None);
        }
        let replica = (training.global_batch() / p.dp()).max(1);
        let solved = mem_model.solve_max_microbatch(
            replica,
            p.replica_batch(training.global_batch()),
            self.accel.memory_bytes(),
        );
        let limit = match &solved {
            Ok(fit) => Some(fit.ladder_index as usize),
            Err(_) if self.require_memory_fit => Some(0),
            Err(_) => None,
        };
        let mut len = 0usize;
        let mut ub = 1usize;
        while ub <= replica && limit.is_none_or(|l| len <= l) {
            out.push(p.with_microbatches(MicrobatchPolicy::Explicit(replica.div_ceil(ub))));
            len += 1;
            ub *= 2;
        }
        (len, Some(solved))
    }

    /// Fold one mapping's already-priced microbatch variants into its
    /// winning candidate, replicating the scalar [`SearchEngine::evaluate`]
    /// fold exactly. Memory feasibility comes from the closed-form
    /// max-microbatch solve done by [`SearchEngine::plan_variants`] — one
    /// solve per mapping instead of one footprint per variant (variant `k`
    /// of the tuning ladder fits iff `k <= MicrobatchFit::ladder_index`,
    /// since feasibility is a prefix of the ladder; the winner's stored
    /// footprint is computed once at the end).
    fn score_mapping(
        &self,
        mem_model: &MemoryModel<'_>,
        solved: &Option<SolveOutcome>,
        variants: &[Parallelism],
        estimates: &[Result<Estimate>],
        training: &TrainingConfig,
    ) -> Result<Scored> {
        let capacity = self.accel.memory_bytes();
        // (index, fits, total_time) of the incumbent — estimates stay
        // borrowed, only the winner is cloned at the end.
        let mut best: Option<(usize, bool, f64)> = None;
        let mut first_failure: Option<CapacityFailure> = None;
        debug_assert_eq!(variants.len(), estimates.len());
        for (k, priced) in estimates.iter().enumerate() {
            let estimate = match priced {
                Ok(e) => e,
                Err(e) => return Err(e.clone()),
            };
            let fits_memory = match &solved {
                Some(Ok(fit)) => k as u32 <= fit.ladder_index,
                Some(Err(failure)) => {
                    if first_failure.is_none() {
                        first_failure = Some(*failure);
                    }
                    false
                }
                None => {
                    let memory =
                        mem_model.footprint(estimate.microbatch_size, estimate.num_microbatches);
                    let fits = memory.total() <= capacity;
                    if !fits && first_failure.is_none() {
                        first_failure = Some(memory.capacity_failure(capacity));
                    }
                    fits
                }
            };
            if self.require_memory_fit && !fits_memory {
                continue;
            }
            let time = estimate.total_time.get();
            let better = match &best {
                None => true,
                // Prefer fitting candidates, then faster ones.
                Some((_, b_fits, b_time)) => {
                    (fits_memory, std::cmp::Reverse(time))
                        > (*b_fits, std::cmp::Reverse(*b_time))
                }
            };
            if better {
                best = Some((k, fits_memory, time));
            }
        }
        let Some((k, fits_memory, _)) = best else {
            return Ok(Err(first_failure
                .expect("a mapping with no retained variant had a rejected one")));
        };
        let estimate = estimates[k]
            .as_ref()
            .expect("the retained winner priced cleanly")
            .clone();
        let variant = variants[k];
        let memory = mem_model.footprint(estimate.microbatch_size, estimate.num_microbatches);
        let energy = EnergyEstimate::from_estimate(&estimate, &self.power, training.num_batches());
        let mut candidate = Candidate {
            parallelism: variant,
            estimate,
            memory,
            energy,
            fits_memory,
            refined: None,
            resilience: None,
        };
        if let Some(goodput) = &self.goodput {
            candidate.resilience = Some(self.resilience_report(goodput, &candidate)?);
        }
        Ok(Ok(Box::new(candidate)))
    }

    /// The checkpoint/restart expected-time report for one candidate: its
    /// per-device weight + optimizer shard priced at the configured write
    /// bandwidth, against a system MTBF scaled to this engine's node count.
    /// With failure domains configured, the candidate is first placed on
    /// the tree (see [`placement_for`]) and the correlated model prices
    /// the outage tiers its placement is exposed to; the degenerate tree
    /// (one domain, no tier rates) reproduces the independent-exponential
    /// report bit for bit.
    fn resilience_report(
        &self,
        goodput: &GoodputOptions,
        candidate: &Candidate,
    ) -> Result<ResilienceReport> {
        let ckpt_write_s = candidate.memory.checkpoint_bytes() / goodput.ckpt_write_bytes_per_s;
        let mut params = ResilienceParams::new(goodput.node_mtbf_s, self.system.num_nodes())?
            .with_checkpoint_cost(ckpt_write_s)
            .with_restart(goodput.restart_s);
        if let Some(interval) = goodput.interval_s {
            params = params.with_interval(interval);
        }
        let total = candidate.estimate.total_time.get();
        match &goodput.failure_domains {
            None => params.report(total),
            Some(fd) => {
                let placed = placement_for(
                    &candidate.parallelism,
                    self.system,
                    &fd.tree,
                    fd.placement,
                );
                let mut corr = CorrelatedResilience::new(params, fd.tree.clone(), placed)?;
                if let Some(elastic) = &fd.elastic {
                    corr = corr.with_elastic(elastic.clone());
                }
                Ok(corr.report(total)?.flat_report())
            }
        }
    }

    /// The fastest candidate, or `None` when every mapping was filtered out.
    ///
    /// Since only the optimum is returned — and the lower bound never
    /// prunes the optimum — pruning is forced on whenever the memoized path
    /// (whose totals the bound is exact against) is in use anyway.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn best(&self, training: &TrainingConfig) -> Result<Option<Candidate>> {
        let engine = self.clone().with_pruning(self.prune || self.memoize);
        Ok(engine.search(training)?.into_iter().next())
    }

    /// Co-optimize the mapping *and* the global batch size: search each
    /// batch in `batches` for a fixed token budget and return the fastest
    /// `(batch, candidate)` end to end. Larger batches raise efficiency but
    /// may harm convergence — the caller owns that judgement (the paper
    /// assumes "minimal impact" up to 16384).
    ///
    /// The batch × mapping grid is evaluated by one worker pool with a
    /// single incumbent best time shared across batches, so with pruning a
    /// strong early batch cheapens every later one. Ties go to the earlier
    /// batch, then the parallelism degrees (a total order — the winner is
    /// deterministic for every worker count).
    ///
    /// # Errors
    ///
    /// Propagates estimator errors; batches that divide into no feasible
    /// mapping are skipped.
    pub fn best_over_batches(
        &self,
        batches: &[usize],
        seq_len: usize,
        token_budget: f64,
    ) -> Result<Option<(usize, Candidate)>> {
        let engine = self.clone().with_pruning(self.prune || self.memoize);
        let mut trainings = Vec::with_capacity(batches.len());
        for &batch in batches {
            trainings.push((batch, TrainingConfig::from_tokens(batch, seq_len, token_budget)?));
        }
        let mappings = enumerate_mappings(engine.system, engine.model, &engine.enumeration);
        if trainings.is_empty() || mappings.is_empty() {
            return Ok(None);
        }
        let best_bits = AtomicU64::new(f64::INFINITY.to_bits());
        let outcomes = engine.run_parallel(trainings.len() * mappings.len(), |cache, i| {
            let (batch_idx, map_idx) = (i / mappings.len(), i % mappings.len());
            engine.explore(cache, &mappings[map_idx], &trainings[batch_idx].1, &best_bits)
        });
        let mut best: Option<(usize, Candidate)> = None; // (batch index, candidate)
        let mut counts = [0u64; 3]; // pruned, memory-rejected, kept
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let candidate = match outcome? {
                Outcome::Pruned => {
                    counts[0] += 1;
                    continue;
                }
                Outcome::Filtered(_) => {
                    counts[1] += 1;
                    continue;
                }
                Outcome::Kept { candidate, .. } => {
                    counts[2] += 1;
                    candidate
                }
            };
            let batch_idx = i / mappings.len();
            let better = match &best {
                None => true,
                Some((best_idx, b)) => {
                    candidate
                        .objective_time()
                        .total_cmp(&b.objective_time())
                        .then(batch_idx.cmp(best_idx))
                        .then_with(|| {
                            parallelism_key(&candidate.parallelism)
                                .cmp(&parallelism_key(&b.parallelism))
                        })
                        .is_lt()
                }
            };
            if better {
                best = Some((batch_idx, *candidate));
            }
        }
        if let Some(obs) = &engine.observer {
            obs.add(
                "search.candidates.generated",
                (trainings.len() * mappings.len()) as u64,
            );
            obs.add("search.candidates.pruned", counts[0]);
            obs.add("search.candidates.memory_rejected", counts[1]);
            obs.add("search.candidates.kept", counts[2]);
            obs.add("search.candidates.evaluated", counts[1] + counts[2]);
        }
        Ok(best.map(|(batch_idx, c)| (trainings[batch_idx].0, c)))
    }
}

/// Indices of the Pareto-optimal candidates under
/// (total time, total energy, peak memory) — lower is better on every axis.
pub fn pareto_front(candidates: &[Candidate]) -> Vec<usize> {
    let key = |c: &Candidate| {
        (
            c.estimate.total_time.get(),
            c.energy.total_joules(),
            c.memory.total(),
        )
    };
    let dominates = |a: (f64, f64, f64), b: (f64, f64, f64)| {
        a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
    };
    (0..candidates.len())
        .filter(|&i| {
            let ki = key(&candidates[i]);
            !candidates
                .iter()
                .enumerate()
                .any(|(j, c)| j != i && dominates(key(c), ki))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use amped_core::Link;

    fn system(nodes: usize, per_node: usize) -> SystemSpec {
        SystemSpec::new(
            nodes,
            per_node,
            Link::new(5e-6, 2.4e12),
            Link::new(1e-5, 2e11),
            per_node,
        )
        .unwrap()
    }

    fn model() -> TransformerModel {
        TransformerModel::builder("m")
            .layers(32)
            .hidden_size(4096)
            .heads(32)
            .seq_len(2048)
            .vocab_size(51200)
            .build()
            .unwrap()
    }

    fn accel() -> AcceleratorSpec {
        AcceleratorSpec::builder("A100")
            .frequency_hz(1.41e9)
            .cores(108)
            .mac_units(4, 512, 8)
            .nonlin_units(192, 4, 32)
            .memory(80e9, 2.0e12)
            .power(400.0, 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn factor_triples_multiply_back() {
        for n in [1usize, 2, 8, 12, 16] {
            for (a, b, c) in factor_triples(n) {
                assert_eq!(a * b * c, n);
            }
        }
        assert_eq!(factor_triples(1), vec![(1, 1, 1)]);
        // d(8): triples of divisors with product 8 = 10 compositions.
        assert_eq!(factor_triples(8).len(), 10);
    }

    #[test]
    fn enumeration_covers_and_respects_constraints() {
        let sys = system(4, 8);
        let m = model();
        let all = enumerate_mappings(&sys, &m, &EnumerationOptions::default());
        assert!(!all.is_empty());
        for p in &all {
            assert_eq!(p.total_workers(), 32);
            assert!(p.validate_against(&sys, &m).is_ok());
        }
        let no_tp_inter = enumerate_mappings(
            &sys,
            &m,
            &EnumerationOptions {
                allow_tp_inter: false,
                ..Default::default()
            },
        );
        assert!(no_tp_inter.iter().all(|p| p.tp_inter() == 1));
        assert!(no_tp_inter.len() < all.len());
    }

    #[test]
    fn max_tp_prunes() {
        let sys = system(4, 8);
        let m = model();
        let pruned = enumerate_mappings(
            &sys,
            &m,
            &EnumerationOptions {
                max_tp: Some(4),
                ..Default::default()
            },
        );
        assert!(pruned.iter().all(|p| p.tp() <= 4));
    }

    #[test]
    fn search_ranks_fastest_first() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let engine = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let training = TrainingConfig::new(512, 10).unwrap();
        let results = engine.search(&training).unwrap();
        assert!(results.len() > 10);
        for w in results.windows(2) {
            assert!(w[0].estimate.total_time.get() <= w[1].estimate.total_time.get());
        }
        let best = engine.best(&training).unwrap().unwrap();
        assert_eq!(
            best.estimate.total_time.get(),
            results[0].estimate.total_time.get()
        );
    }

    #[test]
    fn tp_intra_beats_tp_inter_on_slow_networks() {
        // Case-study-I conclusion 2, as a search property: the best mapping
        // never puts TP across nodes when the node fabric is 12x faster.
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let engine = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let best = engine
            .best(&TrainingConfig::new(1024, 1).unwrap())
            .unwrap()
            .unwrap();
        assert_eq!(best.parallelism.tp_inter(), 1, "best = {:?}", best.parallelism);
    }

    #[test]
    fn memory_filter_drops_oversized() {
        let m = model();
        let a = accel();
        let sys = system(1, 2);
        let training = TrainingConfig::new(64, 1).unwrap();
        let all = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .search(&training)
            .unwrap();
        let fitting = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_memory_filter(true)
            .search(&training)
            .unwrap();
        assert!(fitting.len() <= all.len());
        assert!(fitting.iter().all(|c| c.fits_memory));
    }

    #[test]
    fn batch_co_optimization_prefers_larger_batches_for_fixed_tokens() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let engine = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 16.0, 0.05, 0.9));
        let (batch, c) = engine
            .best_over_batches(&[256, 1024, 4096], 2048, 1e9)
            .unwrap()
            .expect("found");
        // With a saturating efficiency, the bigger batch amortizes better.
        assert_eq!(batch, 4096);
        assert!(c.estimate.total_time.get() > 0.0);
    }

    #[test]
    fn pareto_front_is_nondominated() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let results = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .search(&TrainingConfig::new(512, 10).unwrap())
            .unwrap();
        let front = pareto_front(&results);
        assert!(!front.is_empty());
        // The fastest candidate is always on the front.
        assert!(front.contains(&0));
        for &i in &front {
            for (j, c) in results.iter().enumerate() {
                if j == i {
                    continue;
                }
                let better_everywhere = c.estimate.total_time.get()
                    < results[i].estimate.total_time.get()
                    && c.energy.total_joules() < results[i].energy.total_joules()
                    && c.memory.total() < results[i].memory.total();
                assert!(!better_everywhere);
            }
        }
    }

    /// Rankings must be byte-identical across worker counts: same
    /// candidates, same order, same times to the bit.
    fn assert_identical_rankings(a: &[Candidate], b: &[Candidate]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(parallelism_key(&x.parallelism), parallelism_key(&y.parallelism));
            assert_eq!(
                x.estimate.total_time.get().to_bits(),
                y.estimate.total_time.get().to_bits()
            );
            assert_eq!(
                x.estimate.time_per_iteration.get().to_bits(),
                y.estimate.time_per_iteration.get().to_bits()
            );
            assert_eq!(x.fits_memory, y.fits_memory);
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_to_serial() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9));
        let serial = base.clone().with_parallelism(1).search(&training).unwrap();
        for jobs in [2, 4, 7] {
            let parallel = base
                .clone()
                .with_parallelism(jobs)
                .search(&training)
                .unwrap();
            assert_identical_rankings(&serial, &parallel);
        }
    }

    #[test]
    fn pruned_search_is_an_ordered_subset_of_the_full_ranking() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9));
        let full = base.clone().search(&training).unwrap();
        let pruned_serial = base
            .clone()
            .with_pruning(true)
            .with_parallelism(1)
            .search(&training)
            .unwrap();
        let pruned_parallel = base
            .clone()
            .with_pruning(true)
            .with_parallelism(4)
            .search(&training)
            .unwrap();
        // Pruning is deterministic regardless of worker count...
        assert_identical_rankings(&pruned_serial, &pruned_parallel);
        // ...keeps the same winner as the full search...
        assert!(!pruned_serial.is_empty());
        assert_eq!(
            pruned_serial[0].estimate.total_time.get().to_bits(),
            full[0].estimate.total_time.get().to_bits()
        );
        assert!(pruned_serial.len() <= full.len());
        // ...and every retained candidate is in the full ranking, in order.
        let keys: Vec<_> = full.iter().map(|c| parallelism_key(&c.parallelism)).collect();
        let mut cursor = 0;
        for c in &pruned_serial {
            let k = parallelism_key(&c.parallelism);
            let pos = keys[cursor..]
                .iter()
                .position(|x| *x == k)
                .expect("pruned candidate missing from full ranking");
            cursor += pos + 1;
        }
    }

    #[test]
    fn memoized_search_matches_unmemoized_reference() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let fast = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .search(&training)
            .unwrap();
        let reference = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_memoization(false)
            .with_parallelism(1)
            .search(&training)
            .unwrap();
        assert_eq!(fast.len(), reference.len());
        for (x, y) in fast.iter().zip(&reference) {
            assert_eq!(parallelism_key(&x.parallelism), parallelism_key(&y.parallelism));
            let (tx, ty) = (x.estimate.total_time.get(), y.estimate.total_time.get());
            assert!(
                (tx - ty).abs() <= 1e-9 * ty.abs(),
                "cached {tx} vs plain {ty} for {:?}",
                x.parallelism
            );
        }
    }

    #[test]
    fn best_over_batches_parallel_matches_serial() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 16.0, 0.05, 0.9));
        let (b1, c1) = base
            .clone()
            .with_parallelism(1)
            .best_over_batches(&[256, 1024, 4096], 2048, 1e9)
            .unwrap()
            .unwrap();
        let (b4, c4) = base
            .clone()
            .with_parallelism(4)
            .best_over_batches(&[256, 1024, 4096], 2048, 1e9)
            .unwrap()
            .unwrap();
        assert_eq!(b1, b4);
        assert_eq!(parallelism_key(&c1.parallelism), parallelism_key(&c4.parallelism));
        assert_eq!(
            c1.estimate.total_time.get().to_bits(),
            c4.estimate.total_time.get().to_bits()
        );
    }

    /// A model small enough that top-ranked mappings fit device memory, so
    /// simulator refinement accepts them (the big fixture model needs the
    /// memory filter to produce feasible candidates).
    fn small_model() -> TransformerModel {
        TransformerModel::builder("s")
            .layers(8)
            .hidden_size(1024)
            .heads(16)
            .seq_len(512)
            .vocab_size(32000)
            .build()
            .unwrap()
    }

    #[test]
    fn refine_sim_reprices_the_top_block_and_leaves_the_tail_analytical() {
        let m = small_model();
        let a = accel();
        let sys = system(2, 4);
        let training = TrainingConfig::new(64, 1).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5));
        let plain = base.clone().search(&training).unwrap();
        let k = 4;
        let refined = base.clone().with_refine_sim(k).search(&training).unwrap();
        assert_eq!(plain.len(), refined.len());
        // The refined block holds exactly the analytical top-k candidates
        // (re-ordered by simulated time), the tail is untouched.
        let mut plain_top: Vec<_> = plain[..k].iter().map(|c| parallelism_key(&c.parallelism)).collect();
        let mut refined_top: Vec<_> =
            refined[..k].iter().map(|c| parallelism_key(&c.parallelism)).collect();
        plain_top.sort();
        refined_top.sort();
        assert_eq!(plain_top, refined_top);
        for (x, y) in plain[k..].iter().zip(&refined[k..]) {
            assert_eq!(parallelism_key(&x.parallelism), parallelism_key(&y.parallelism));
            assert!(y.refined.is_none());
        }
        // The block is ordered by the refined estimate, simulator-accepted
        // candidates first; ranking_estimate picks the refined time there.
        assert!(refined[..k].iter().any(|c| c.refined.is_some()));
        for w in refined[..k].windows(2) {
            match (&w[0].refined, &w[1].refined) {
                (Some(x), Some(y)) => {
                    assert!(x.total_time.get() <= y.total_time.get());
                    assert_eq!(
                        w[0].ranking_estimate().total_time.get().to_bits(),
                        x.total_time.get().to_bits()
                    );
                }
                (None, Some(_)) => panic!("rejected candidate ranked above a refined one"),
                _ => {}
            }
        }
    }

    #[test]
    fn goodput_search_ranks_by_expected_time_and_annotates_candidates() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let results = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_goodput(GoodputOptions::new(4380.0 * 3600.0))
            .search(&training)
            .unwrap();
        assert!(!results.is_empty());
        for c in &results {
            let r = c.resilience.as_ref().expect("goodput annotates every candidate");
            assert_eq!(r.fault_free_s, c.estimate.total_time.get());
            assert!(r.expected_s >= r.fault_free_s);
            assert_eq!(c.objective_time(), r.expected_s);
        }
        for w in results.windows(2) {
            assert!(w[0].objective_time() <= w[1].objective_time());
        }
    }

    #[test]
    fn goodput_pruned_search_keeps_the_expected_time_winner() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9))
            .with_goodput(GoodputOptions::new(1000.0 * 3600.0));
        let full = base.clone().search(&training).unwrap();
        for jobs in [1, 4] {
            let pruned = base
                .clone()
                .with_pruning(true)
                .with_parallelism(jobs)
                .search(&training)
                .unwrap();
            assert!(!pruned.is_empty());
            assert_eq!(
                pruned[0].objective_time().to_bits(),
                full[0].objective_time().to_bits()
            );
            assert_eq!(
                parallelism_key(&pruned[0].parallelism),
                parallelism_key(&full[0].parallelism)
            );
        }
    }

    #[test]
    fn fault_plan_slows_refined_candidates() {
        let m = small_model();
        let a = accel();
        let sys = system(2, 4);
        let training = TrainingConfig::new(64, 1).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_refine_sim(4);
        let clean = base.clone().search(&training).unwrap();
        let faulty = base
            .clone()
            .with_fault_plan(amped_sim::FaultPlan::seeded(7).with_straggler(0, 3.0))
            .search(&training)
            .unwrap();
        // Compare per-mapping: the straggler can only slow a refined run.
        let mut slower = 0;
        for c in faulty.iter().filter(|c| c.refined.is_some()) {
            let twin = clean
                .iter()
                .find(|x| parallelism_key(&x.parallelism) == parallelism_key(&c.parallelism))
                .expect("same candidate set");
            let (Some(rf), Some(rc)) = (&c.refined, &twin.refined) else {
                continue;
            };
            assert!(rf.total_time.get() >= rc.total_time.get());
            if rf.total_time.get() > rc.total_time.get() {
                slower += 1;
            }
        }
        assert!(slower > 0, "a 3x straggler must slow at least one refined run");
    }

    #[test]
    fn observed_search_is_bit_identical_and_counters_reconcile() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9))
            .with_pruning(true);
        let bare = base.clone().with_parallelism(1).search(&training).unwrap();
        for jobs in [1, 2, 4] {
            let obs = Arc::new(Observer::new());
            let observed = base
                .clone()
                .with_parallelism(jobs)
                .with_observer(obs.clone())
                .search(&training)
                .unwrap();
            // Instrumentation must never perturb the ranking.
            assert_identical_rankings(&bare, &observed);
            // Reconciliation identities hold exactly at any worker count,
            // even though the pruned/evaluated split is timing-dependent.
            let c = obs.counters();
            assert_eq!(
                c["search.candidates.generated"],
                c["search.candidates.pruned"] + c["search.candidates.evaluated"],
                "generated must equal pruned + evaluated: {c:?}"
            );
            assert_eq!(
                c["search.candidates.evaluated"],
                c["search.candidates.kept"] + c["search.candidates.memory_rejected"],
                "evaluated must equal kept + memory-rejected: {c:?}"
            );
            assert_eq!(
                c["search.cache.lookups"],
                c["search.cache.hits"] + c["search.cache.misses"]
            );
            assert!(c["search.cache.hits"] > 0, "memoization must pay off");
            assert!(c["search.candidates.generated"] > 0);
            // The report carries the search phases in execution order.
            let report = obs.report("search");
            let phases: Vec<&str> = report.phases.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(phases, ["search.enumerate", "search.explore", "search.rank"]);
        }
    }

    #[test]
    fn observed_refine_counts_and_stays_bit_identical() {
        let m = small_model();
        let a = accel();
        let sys = system(2, 4);
        let training = TrainingConfig::new(64, 1).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_refine_sim(4);
        let bare = base.clone().with_parallelism(1).search(&training).unwrap();
        let obs = Arc::new(Observer::new());
        let observed = base
            .clone()
            .with_parallelism(4)
            .with_observer(obs.clone())
            .search(&training)
            .unwrap();
        assert_identical_rankings(&bare, &observed);
        for (x, y) in bare.iter().zip(&observed) {
            match (&x.refined, &y.refined) {
                (Some(rx), Some(ry)) => assert_eq!(
                    rx.total_time.get().to_bits(),
                    ry.total_time.get().to_bits()
                ),
                (None, None) => {}
                _ => panic!("refinement outcome differs with observation"),
            }
        }
        let c = obs.counters();
        assert_eq!(c["search.refine.attempted"], 4);
        assert_eq!(
            c["search.refine.attempted"],
            c["search.refine.accepted"] + c["search.refine.rejected"]
        );
        // The refinement backend reports through the same observer.
        assert_eq!(c["backend.sim.evaluations"], c["search.refine.attempted"]);
        assert!(c["sim.des.runs"] >= c["search.refine.accepted"]);
        // Parallel refinement must not record nondeterministic per-device
        // samples.
        assert!(obs.report("search").devices.is_empty());
        let phases: Vec<String> = obs
            .report("search")
            .phases
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert!(phases.contains(&"search.refine".to_string()));
    }

    #[test]
    fn refined_search_is_bit_identical_across_worker_counts() {
        let m = small_model();
        let a = accel();
        let sys = system(2, 4);
        let training = TrainingConfig::new(64, 1).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_refine_sim(4);
        let serial = base.clone().with_parallelism(1).search(&training).unwrap();
        let parallel = base.clone().with_parallelism(4).search(&training).unwrap();
        assert_identical_rankings(&serial, &parallel);
        for (x, y) in serial.iter().zip(&parallel) {
            match (&x.refined, &y.refined) {
                (Some(rx), Some(ry)) => assert_eq!(
                    rx.total_time.get().to_bits(),
                    ry.total_time.get().to_bits()
                ),
                (None, None) => {}
                _ => panic!("refinement outcome differs across worker counts"),
            }
        }
    }

    /// Every candidate field the batched path assembles, compared bitwise
    /// against the scalar reference — stricter than
    /// `assert_identical_rankings`.
    fn assert_identical_candidates(a: &[Candidate], b: &[Candidate]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(parallelism_key(&x.parallelism), parallelism_key(&y.parallelism));
            assert_eq!(
                x.estimate.total_time.get().to_bits(),
                y.estimate.total_time.get().to_bits()
            );
            assert_eq!(
                x.estimate.time_per_iteration.get().to_bits(),
                y.estimate.time_per_iteration.get().to_bits()
            );
            assert_eq!(x.estimate.num_microbatches, y.estimate.num_microbatches);
            assert_eq!(
                x.estimate.microbatch_size.to_bits(),
                y.estimate.microbatch_size.to_bits()
            );
            assert_eq!(x.fits_memory, y.fits_memory);
            assert_eq!(x.memory.total().to_bits(), y.memory.total().to_bits());
            assert_eq!(
                x.energy.total_joules().to_bits(),
                y.energy.total_joules().to_bits()
            );
            match (&x.resilience, &y.resilience) {
                (Some(rx), Some(ry)) => {
                    assert_eq!(rx.expected_s.to_bits(), ry.expected_s.to_bits());
                }
                (None, None) => {}
                _ => panic!("resilience attachment differs between paths"),
            }
        }
    }

    #[test]
    fn batched_search_is_bit_identical_to_scalar_at_any_worker_count() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::saturating(0.9, 4.0, 0.1, 0.9));
        let scalar = base
            .clone()
            .with_batching(false)
            .with_parallelism(1)
            .search(&training)
            .unwrap();
        for jobs in [1, 4] {
            let batched = base
                .clone()
                .with_parallelism(jobs)
                .search(&training)
                .unwrap();
            assert_identical_candidates(&scalar, &batched);
        }
    }

    #[test]
    fn batched_search_matches_scalar_under_memory_filter_and_goodput() {
        let m = model();
        let a = accel();
        let sys = system(1, 2); // tight memory: the filter really rejects
        let training = TrainingConfig::new(64, 100).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_memory_filter(true)
            .with_goodput(GoodputOptions::new(1e6));
        let scalar = base
            .clone()
            .with_batching(false)
            .with_parallelism(1)
            .search(&training)
            .unwrap();
        for jobs in [1, 4] {
            let batched = base
                .clone()
                .with_parallelism(jobs)
                .search(&training)
                .unwrap();
            assert_identical_candidates(&scalar, &batched);
        }
        assert!(scalar.iter().all(|c| c.resilience.is_some()));
    }

    #[test]
    fn batched_pruned_search_matches_scalar_pruned() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_pruning(true);
        let scalar = base
            .clone()
            .with_batching(false)
            .with_parallelism(1)
            .search(&training)
            .unwrap();
        for jobs in [1, 4] {
            let batched = base
                .clone()
                .with_parallelism(jobs)
                .search(&training)
                .unwrap();
            assert_identical_candidates(&scalar, &batched);
        }
    }

    #[test]
    fn batched_search_through_a_cache_pool_stays_bit_identical() {
        let m = model();
        let a = accel();
        let sys = system(4, 8);
        let training = TrainingConfig::new(512, 10).unwrap();
        let scalar = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_batching(false)
            .with_parallelism(1)
            .search(&training)
            .unwrap();
        let pool = Arc::new(CachePool::new());
        let pooled = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_cache_pool(pool.clone())
            .with_parallelism(4);
        // Cold pool, then warm pool: both bit-identical to the scalar
        // reference — batch fills caches with the same entries scalar would.
        let cold = pooled.search(&training).unwrap();
        assert_identical_candidates(&scalar, &cold);
        let warm = pooled.search(&training).unwrap();
        assert_identical_candidates(&scalar, &warm);
    }

    #[test]
    fn search_stats_reconcile_and_classify_memory_rejections() {
        let m = model();
        let a = accel();
        let sys = system(1, 2); // tight memory: rejections occur
        let training = TrainingConfig::new(64, 1).unwrap();
        let base = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .with_memory_filter(true);
        let (results, stats) = base.clone().search_with_stats(&training).unwrap();
        assert_eq!(stats.kept, results.len() as u64);
        assert_eq!(
            stats.generated,
            stats.pruned + stats.kept + stats.memory_rejected.total()
        );
        assert!(
            stats.memory_rejected.total() > 0,
            "a 2-device cluster cannot fit every mapping of a 4096-hidden model"
        );
        // The scalar path classifies rejections identically.
        let (_, scalar_stats) = base
            .with_batching(false)
            .search_with_stats(&training)
            .unwrap();
        assert_eq!(stats, scalar_stats);
        // Without the filter nothing is memory-rejected.
        let (_, open) = SearchEngine::new(&m, &a, &sys)
            .with_efficiency(EfficiencyModel::Constant(0.5))
            .search_with_stats(&training)
            .unwrap();
        assert_eq!(open.memory_rejected.total(), 0);
        assert_eq!(open.generated, open.kept);
    }
}
