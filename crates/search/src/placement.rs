//! Deterministic placement of a mapping onto a failure-domain tree.
//!
//! A correlated outage's cost depends on *where* pipeline stages and DP
//! replicas sit relative to the failing domain: a layout that packs each
//! replica into its own rack loses one replica per rack outage (elastic
//! mode can absorb it), while one that stripes a stage of every replica
//! across the same rack loses them all (always fatal). The enumerator
//! below scores the two canonical layouts and picks the one with the
//! smallest blast radius — deterministically, so rankings that depend on
//! it stay bit-identical at any worker count.

use amped_core::{DomainPlacement, FailureDomainTree, Parallelism, SystemSpec};
use serde::{Deserialize, Serialize};

/// Which layout assigns devices to failure domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementChoice {
    /// Score replica-major and stage-major, keep the smaller blast radius
    /// (ties prefer replica-major).
    #[default]
    Auto,
    /// Consecutive devices belong to one DP replica (`d = r·pp + s`).
    ReplicaMajor,
    /// Consecutive devices belong to one pipeline stage (`d = s·dp + r`).
    StageMajor,
}

impl PlacementChoice {
    /// Parse a scenario/CLI spelling. Accepts `auto`, `replica-major`
    /// (or `replica`), `stage-major` (or `stage`).
    pub fn parse(s: &str) -> Option<PlacementChoice> {
        match s {
            "auto" => Some(PlacementChoice::Auto),
            "replica-major" | "replica" => Some(PlacementChoice::ReplicaMajor),
            "stage-major" | "stage" => Some(PlacementChoice::StageMajor),
            _ => None,
        }
    }
}

/// The blast-radius sort key: worst-case broken replicas per rack outage,
/// then per node, then per pod. Rack outages dominate the key because they
/// are the tier real clusters actually lose (PDU/ToR), and the node tier
/// breaks ties for preemption-heavy scenarios.
fn blast_key(p: &DomainPlacement) -> [usize; 3] {
    [p.replicas_per_rack, p.replicas_per_node, p.replicas_per_pod]
}

/// The placement used to price `parallelism` on `tree`: the explicitly
/// requested layout, or the blast-radius-minimizing one under `Auto`.
/// A pure function of its arguments — the deterministic placement
/// enumerator behind `search --goodput` and `recommend`.
pub fn placement_for(
    parallelism: &Parallelism,
    system: &SystemSpec,
    tree: &FailureDomainTree,
    choice: PlacementChoice,
) -> DomainPlacement {
    let dp = parallelism.dp();
    let pp = parallelism.pp();
    let tp = parallelism.tp();
    let apn = system.accels_per_node();
    let replica = DomainPlacement::replica_major(dp, pp, tp, apn, tree);
    match choice {
        PlacementChoice::ReplicaMajor => replica,
        PlacementChoice::StageMajor => DomainPlacement::stage_major(dp, pp, tp, apn, tree),
        PlacementChoice::Auto => {
            let stage = DomainPlacement::stage_major(dp, pp, tp, apn, tree);
            if blast_key(&stage) < blast_key(&replica) {
                stage
            } else {
                replica
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_spellings() {
        assert_eq!(PlacementChoice::parse("auto"), Some(PlacementChoice::Auto));
        assert_eq!(
            PlacementChoice::parse("replica-major"),
            Some(PlacementChoice::ReplicaMajor)
        );
        assert_eq!(PlacementChoice::parse("stage"), Some(PlacementChoice::StageMajor));
        assert_eq!(PlacementChoice::parse("diagonal"), None);
    }

    #[test]
    fn auto_prefers_the_smaller_blast_radius_and_breaks_ties_replica_major() {
        use amped_core::Link;
        // 16 single-accel nodes, racks of 4: dp 4 × pp 4 replica-major puts
        // one replica per rack (blast radius 1); stage-major stripes a
        // stage of every replica through each rack (blast radius 4).
        let sys =
            SystemSpec::new(16, 1, Link::new(5e-6, 2.4e12), Link::new(1e-5, 1e11), 1).unwrap();
        let p = Parallelism::builder().dp(1, 4).pp(1, 4).build().unwrap();
        let tree = FailureDomainTree::new(16, 4, 2).unwrap();
        let auto = placement_for(&p, &sys, &tree, PlacementChoice::Auto);
        assert_eq!(auto.strategy, "replica-major");
        assert_eq!(auto.replicas_per_rack, 1);
        let forced = placement_for(&p, &sys, &tree, PlacementChoice::StageMajor);
        assert_eq!(forced.strategy, "stage-major");
        assert_eq!(forced.replicas_per_rack, 4);
        // Pure dp (pp = 1): both layouts coincide, the tie goes replica-major.
        let flat = Parallelism::builder().dp(1, 16).build().unwrap();
        let tied = placement_for(&flat, &sys, &tree, PlacementChoice::Auto);
        assert_eq!(tied.strategy, "replica-major");
    }
}
