//! # amped-energy — first-order training energy model
//!
//! Case study II of the AMPeD paper observes that a pipeline-parallel
//! configuration that trains ~4 % *slower* can still be more
//! *energy-efficient*, because accelerators idle (at reduced power) inside
//! pipeline bubbles; the paper leaves power modeling to future work. This
//! crate implements the first-order model that argument sketches: each
//! accelerator draws
//!
//! * full TDP while computing,
//! * a configurable fraction of TDP while communicating, and
//! * the idle fraction of TDP while waiting in bubbles,
//!
//! and energy is power × time summed over the breakdown components.
//!
//! # Example
//!
//! ```
//! use amped_core::Breakdown;
//! use amped_energy::{EnergyEstimate, PowerModel};
//!
//! let b = Breakdown {
//!     compute_forward: 1.0,
//!     compute_backward: 2.0,
//!     bubble: 0.5,
//!     ..Default::default()
//! };
//! let power = PowerModel::new(400.0, 0.3, 0.6);
//! let e = EnergyEstimate::from_breakdown(&b, 8, &power);
//! assert!(e.total_joules() > 0.0);
//! assert!(e.idle_joules < e.compute_joules);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use amped_core::{Breakdown, Estimate};
use serde::{Deserialize, Serialize};

/// Per-accelerator power states.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power while computing, in watts (TDP).
    pub tdp_watts: f64,
    /// Idle power as a fraction of TDP (the paper argues PP beats DP on
    /// energy when this is below ~0.3 in its scenario).
    pub idle_fraction: f64,
    /// Power while communicating, as a fraction of TDP.
    pub comm_fraction: f64,
}

impl PowerModel {
    /// A power model with the given TDP and state fractions.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are outside `[0, 1]` or TDP is negative.
    pub fn new(tdp_watts: f64, idle_fraction: f64, comm_fraction: f64) -> Self {
        assert!(tdp_watts >= 0.0, "tdp must be non-negative");
        assert!(
            (0.0..=1.0).contains(&idle_fraction) && (0.0..=1.0).contains(&comm_fraction),
            "power fractions must be in [0, 1]"
        );
        PowerModel {
            tdp_watts,
            idle_fraction,
            comm_fraction,
        }
    }

    /// A model drawn from an accelerator spec's TDP and idle fraction, with
    /// communication at 60 % of TDP.
    pub fn from_accelerator(accel: &amped_core::AcceleratorSpec) -> Self {
        Self::new(accel.tdp_watts(), accel.idle_power_fraction(), 0.6)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::new(400.0, 0.3, 0.6)
    }
}

/// Energy for one iteration across all accelerators, split by activity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyEstimate {
    /// Joules spent computing (fwd + bwd + weight update).
    pub compute_joules: f64,
    /// Joules spent communicating (all parallelism kinds).
    pub comm_joules: f64,
    /// Joules spent idling in pipeline bubbles.
    pub idle_joules: f64,
}

impl EnergyEstimate {
    /// Energy of one iteration of `breakdown` on `workers` accelerators.
    ///
    /// Every accelerator is assumed to follow the same activity profile —
    /// the same homogeneity assumption the time model makes.
    pub fn from_breakdown(breakdown: &Breakdown, workers: usize, power: &PowerModel) -> Self {
        let w = workers as f64;
        EnergyEstimate {
            compute_joules: breakdown.compute_total() * power.tdp_watts * w,
            comm_joules: breakdown.comm_total() * power.tdp_watts * power.comm_fraction * w,
            idle_joules: breakdown.bubble * power.tdp_watts * power.idle_fraction * w,
        }
    }

    /// Energy of a full training run described by `estimate`.
    pub fn from_estimate(estimate: &Estimate, power: &PowerModel, num_batches: u64) -> Self {
        let per_iter =
            Self::from_breakdown(&estimate.breakdown, estimate.total_workers, power);
        EnergyEstimate {
            compute_joules: per_iter.compute_joules * num_batches as f64,
            comm_joules: per_iter.comm_joules * num_batches as f64,
            idle_joules: per_iter.idle_joules * num_batches as f64,
        }
    }

    /// Total joules.
    pub fn total_joules(&self) -> f64 {
        self.compute_joules + self.comm_joules + self.idle_joules
    }

    /// Total in megawatt-hours (how datacenter budgets are quoted).
    pub fn megawatt_hours(&self) -> f64 {
        self.total_joules() / 3.6e9
    }
}

impl std::fmt::Display for EnergyEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compute {:.2} MWh + comm {:.2} MWh + idle {:.2} MWh = {:.2} MWh",
            self.compute_joules / 3.6e9,
            self.comm_joules / 3.6e9,
            self.idle_joules / 3.6e9,
            self.megawatt_hours()
        )
    }
}

/// Converts energy and wall-clock into money and emissions — the
/// "acceptable amount of time, budget, and energy" framing of the paper's
/// introduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Electricity price in USD per megawatt-hour.
    pub usd_per_mwh: f64,
    /// Accelerator rental in USD per GPU-hour (0 for owned hardware).
    pub usd_per_gpu_hour: f64,
    /// Grid carbon intensity in kgCO₂e per megawatt-hour.
    pub kg_co2_per_mwh: f64,
}

impl CostModel {
    /// A cost model from explicit rates.
    pub fn new(usd_per_mwh: f64, usd_per_gpu_hour: f64, kg_co2_per_mwh: f64) -> Self {
        CostModel {
            usd_per_mwh,
            usd_per_gpu_hour,
            kg_co2_per_mwh,
        }
    }

    /// Typical cloud rates circa the paper: ~$2.5/GPU-hour on-demand
    /// A100s, ~$100/MWh industrial electricity, ~400 kgCO₂e/MWh grid mix.
    pub fn cloud_a100() -> Self {
        Self::new(100.0, 2.5, 400.0)
    }

    /// Owned-hardware rates: electricity and carbon only.
    pub fn owned() -> Self {
        Self::new(100.0, 0.0, 400.0)
    }

    /// Total dollars for a run: rental (workers × hours) plus electricity.
    pub fn usd(&self, energy: &EnergyEstimate, workers: usize, wall_clock_s: f64) -> f64 {
        let rental = self.usd_per_gpu_hour * workers as f64 * wall_clock_s / 3600.0;
        let electricity = self.usd_per_mwh * energy.megawatt_hours();
        rental + electricity
    }

    /// Kilograms of CO₂-equivalent for a run's electricity.
    pub fn kg_co2(&self, energy: &EnergyEstimate) -> f64 {
        self.kg_co2_per_mwh * energy.megawatt_hours()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::cloud_a100()
    }
}

/// The break-even idle-power fraction between two configurations: the idle
/// fraction below which the slower-but-bubblier configuration `b` consumes
/// less energy than `a`.
///
/// Returns `None` when `b` has no more bubble time than `a` (then the
/// comparison never flips with idle power) — this mirrors the paper's
/// “lower power state should use less than ~30 % of full power” argument.
pub fn break_even_idle_fraction(
    a: &Breakdown,
    b: &Breakdown,
    workers: usize,
    power: &PowerModel,
) -> Option<f64> {
    let w = workers as f64;
    let active = |x: &Breakdown| {
        (x.compute_total() + x.comm_total() * power.comm_fraction) * power.tdp_watts * w
    };
    let bubble_delta = (b.bubble - a.bubble) * power.tdp_watts * w;
    if bubble_delta <= 0.0 {
        return None;
    }
    // energy_b(f) = active_b + f * bubble_b * P; equal when
    // f = (active_a + f*bubble_a*P - active_b) / (bubble_b*P) — with a's
    // bubble typically 0 this reduces to the simple ratio below.
    let f = (active(a) + a.bubble * power.tdp_watts * w - active(b)) / bubble_delta;
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(compute: f64, comm: f64, bubble: f64) -> Breakdown {
        Breakdown {
            compute_forward: compute,
            tp_comm_intra: comm,
            bubble,
            ..Default::default()
        }
    }

    #[test]
    fn energy_sums_components() {
        let b = breakdown(10.0, 2.0, 1.0);
        let p = PowerModel::new(100.0, 0.2, 0.5);
        let e = EnergyEstimate::from_breakdown(&b, 4, &p);
        assert!((e.compute_joules - 10.0 * 100.0 * 4.0).abs() < 1e-9);
        assert!((e.comm_joules - 2.0 * 100.0 * 0.5 * 4.0).abs() < 1e-9);
        assert!((e.idle_joules - 1.0 * 100.0 * 0.2 * 4.0).abs() < 1e-9);
        assert!((e.total_joules() - (4000.0 + 400.0 + 80.0)).abs() < 1e-9);
    }

    #[test]
    fn mwh_conversion() {
        let e = EnergyEstimate {
            compute_joules: 3.6e9,
            comm_joules: 0.0,
            idle_joules: 0.0,
        };
        assert!((e.megawatt_hours() - 1.0).abs() < 1e-12);
        assert!(e.to_string().contains("MWh"));
    }

    #[test]
    fn idle_power_decides_pp_vs_dp() {
        // The case study II situation: PP takes 4 % longer but idles 11 % of
        // the time; DP is all-active. Below the break-even idle fraction PP
        // wins on energy.
        let dp = breakdown(100.0, 8.0, 0.0);
        let pp = breakdown(100.0, 0.5, 12.0);
        let p = PowerModel::new(400.0, 0.3, 0.6);
        let be = break_even_idle_fraction(&dp, &pp, 1024, &p).unwrap();
        assert!(be > 0.0 && be < 1.0, "break-even = {be}");
        // At idle below break-even PP uses less energy.
        let p_low = PowerModel::new(400.0, (be - 0.05).max(0.0), 0.6);
        let p_high = PowerModel::new(400.0, (be + 0.05).min(1.0), 0.6);
        let e_dp_low = EnergyEstimate::from_breakdown(&dp, 1024, &p_low).total_joules();
        let e_pp_low = EnergyEstimate::from_breakdown(&pp, 1024, &p_low).total_joules();
        assert!(e_pp_low < e_dp_low);
        let e_dp_high = EnergyEstimate::from_breakdown(&dp, 1024, &p_high).total_joules();
        let e_pp_high = EnergyEstimate::from_breakdown(&pp, 1024, &p_high).total_joules();
        assert!(e_pp_high > e_dp_high);
    }

    #[test]
    fn no_break_even_without_extra_bubble() {
        let a = breakdown(10.0, 1.0, 5.0);
        let b = breakdown(10.0, 1.0, 5.0);
        assert!(break_even_idle_fraction(&a, &b, 8, &PowerModel::default()).is_none());
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn bad_fraction_panics() {
        PowerModel::new(100.0, 1.5, 0.5);
    }

    #[test]
    fn cost_model_decomposes_rental_and_electricity() {
        let energy = EnergyEstimate {
            compute_joules: 7.2e9, // 2 MWh
            comm_joules: 0.0,
            idle_joules: 0.0,
        };
        let cost = CostModel::new(100.0, 2.0, 400.0);
        // 1024 GPUs for 1 hour at $2 + 2 MWh at $100.
        let usd = cost.usd(&energy, 1024, 3600.0);
        assert!((usd - (1024.0 * 2.0 + 200.0)).abs() < 1e-9);
        assert!((cost.kg_co2(&energy) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn owned_hardware_has_no_rental() {
        let energy = EnergyEstimate {
            compute_joules: 3.6e9,
            comm_joules: 0.0,
            idle_joules: 0.0,
        };
        let owned = CostModel::owned();
        assert!((owned.usd(&energy, 512, 7200.0) - 100.0).abs() < 1e-9);
    }
}
